"""Exp-1 / Fig 3(b): scalability with |S| on xref8, single CFD.

Same shape as Fig 3(a) on the genome workload: decreasing in |S|,
CTRDETECT slowest, the pattern-based algorithms ahead.
"""

from repro.datagen import xref_priority_cfd
from repro.detect import pat_detect_rt
from repro.experiments import fig3b
from repro.experiments.figures import _xref8
from repro.partition import partition_uniform


def test_fig3b(benchmark, record_table):
    result = fig3b()
    record_table(result)

    ctr = result.series_by_label("CTRDETECT")
    pat_rt = result.series_by_label("PATDETECTRT")
    for series in (ctr, pat_rt):
        assert series[-1] < series[0]
    assert all(c > p for c, p in zip(ctr, pat_rt))

    cluster = partition_uniform(_xref8(), 8)
    cfd = xref_priority_cfd()
    benchmark.pedantic(
        lambda: pat_detect_rt(cluster, cfd), rounds=3, iterations=1
    )
