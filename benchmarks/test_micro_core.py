"""Micro-benchmarks of the core primitives (throughput sanity checks)."""

from repro.core import PatternIndex, detect_violations, normalize
from repro.datagen import cust_street_cfd, generate_cust
from repro.experiments import scaled
from repro.relational import Eq


def test_centralized_detection_throughput(benchmark):
    data = generate_cust(scaled(400_000))
    cfd = cust_street_cfd(255)
    report = benchmark.pedantic(
        lambda: detect_violations(data, cfd, collect_tuples=False),
        rounds=3,
        iterations=1,
    )
    assert report is not None


def test_pattern_index_lookup(benchmark):
    cfd = cust_street_cfd(255)
    (variable,) = normalize(cfd).variables
    index = PatternIndex(variable.patterns)
    data = generate_cust(scaled(200_000))
    positions = data.schema.positions(variable.lhs)
    rows = data.rows

    def lookup_all():
        return sum(
            1
            for row in rows
            if index.first_match(tuple(row[p] for p in positions)) is not None
        )

    matched = benchmark.pedantic(lookup_all, rounds=3, iterations=1)
    assert matched > 0


def test_group_by_throughput(benchmark):
    data = generate_cust(scaled(400_000))
    groups = benchmark.pedantic(
        lambda: data.group_by(["CC", "AC", "zip"]), rounds=3, iterations=1
    )
    assert groups


def test_selection_throughput(benchmark):
    data = generate_cust(scaled(400_000))
    selected = benchmark.pedantic(
        lambda: data.select(Eq("CC", 44)), rounds=3, iterations=1
    )
    assert len(selected) > 0
