"""Exp-2 / Fig 3(c): scalability with |D| on cust16, 8 sites.

Paper shape: both CTRDETECT and PATDETECTRT grow (near-)linearly with the
data size; at the largest size PATDETECTRT is more than two times faster.
"""

from repro.datagen import cust_street_cfd
from repro.detect import ctr_detect
from repro.experiments import fig3c
from repro.experiments.figures import _cust16
from repro.partition import partition_uniform


def test_fig3c(benchmark, record_table):
    result = fig3c()
    record_table(result)

    ctr = result.series_by_label("CTRDETECT")
    pat_rt = result.series_by_label("PATDETECTRT")
    # monotone growth with |D|
    assert ctr == sorted(ctr)
    assert pat_rt == sorted(pat_rt)
    # roughly linear: doubling the data at most ~2.5x the time
    assert ctr[-1] / ctr[4] < 2.5
    # PATDETECTRT more than twice as fast at the largest dataset
    assert ctr[-1] / pat_rt[-1] > 2.0

    cluster = partition_uniform(_cust16(), 8)
    cfd = cust_street_cfd(255)
    benchmark.pedantic(
        lambda: ctr_detect(cluster, cfd), rounds=3, iterations=1
    )
