"""Exp-5 / Fig 3(h): response time vs |S|, two overlapping CFDs (cust8)."""

from repro.datagen import cust_overlapping_cfds
from repro.detect import clust_detect
from repro.experiments import fig3h
from repro.experiments.figures import _cust8
from repro.partition import partition_uniform


def test_fig3h(benchmark, record_table):
    result = fig3h()
    record_table(result)

    seq = result.series_by_label("SEQDETECT")
    clust = result.series_by_label("CLUSTDETECT")
    assert all(c < s for c, s in zip(clust, seq))
    assert clust[-1] < clust[0]

    cluster = partition_uniform(_cust8(), 8)
    cfds = cust_overlapping_cfds()
    benchmark.pedantic(
        lambda: clust_detect(cluster, cfds, strategy="rt"),
        rounds=3,
        iterations=1,
    )
