"""Exp-5 / Fig 3(f): shipment vs |S|, two overlapping CFDs (xref8).

Paper shape: CLUSTDETECT constantly ships fewer tuples than SEQDETECT
(merged CFDs ship shared tuples once), and the gap widens with |S|.
"""

from repro.datagen import xref_overlapping_cfds
from repro.detect import clust_detect
from repro.experiments import fig3f
from repro.experiments.figures import _xref8
from repro.partition import partition_uniform


def test_fig3f(benchmark, record_table):
    result = fig3f()
    record_table(result)

    seq = result.series_by_label("SEQDETECT")
    clust = result.series_by_label("CLUSTDETECT")
    assert all(c < s for c, s in zip(clust, seq))
    # the gap widens as the number of sites increases
    assert (seq[-1] - clust[-1]) > (seq[0] - clust[0])

    cluster = partition_uniform(_xref8(), 8)
    cfds = xref_overlapping_cfds()
    benchmark.pedantic(
        lambda: clust_detect(cluster, cfds, strategy="rt"),
        rounds=3,
        iterations=1,
    )
