"""Ablation benches for the design choices of Section IV (DESIGN.md §4).

Each test isolates one ingredient of the detection algorithms and
quantifies its contribution against a degraded variant:

* coordinator selection (max-stat vs random vs worst-case min-stat);
* the generality ordering of the σ partition function;
* the ``F_i ∧ F_φ`` pruning rule for predicate-defined fragments;
* the naive ship-everything baseline of Section III-A.
"""

from repro.core import WILDCARD, normalize
from repro.datagen import (
    cust_street_cfd,
    generate_cust,
    xref_priority_cfd,
)
from repro.detect import (
    ctr_detect,
    naive_detect,
    pat_detect_s,
    pat_detect_with_strategy,
    select_min_stat,
    select_random,
)
from repro.detect.base import partition_cluster
from repro.experiments import scaled
from repro.experiments.figures import _cust8, _xref8
from repro.partition import partition_by_attribute, partition_uniform


def test_coordinator_choice_ablation(benchmark, record_table):
    """Max-stat coordinators ship the least; worst-case choice the most."""
    from repro.experiments import ExperimentResult

    cluster = partition_uniform(_cust8(), 8)
    cfd = cust_street_cfd(255)

    best = pat_detect_s(cluster, cfd)
    rand = pat_detect_with_strategy(
        cluster, cfd, select_random(seed=1), name="PATDETECT-RANDOM"
    )
    worst = pat_detect_with_strategy(
        cluster, cfd, select_min_stat, name="PATDETECT-WORST"
    )
    result = ExperimentResult(
        "ablation_coordinator",
        "Coordinator selection ablation (cust8, 8 sites)",
        "strategy",
        "tuples shipped",
    )
    result.add_point("max-stat", {"shipped": float(best.tuples_shipped)})
    result.add_point("random", {"shipped": float(rand.tuples_shipped)})
    result.add_point("min-stat", {"shipped": float(worst.tuples_shipped)})
    record_table(result)

    assert best.tuples_shipped <= rand.tuples_shipped <= worst.tuples_shipped
    assert best.report.violations == worst.report.violations

    benchmark.pedantic(lambda: pat_detect_s(cluster, cfd), rounds=3, iterations=1)


def test_generality_ordering_keeps_sigma_deterministic(benchmark):
    """σ assigns by first *most specific* match; a reversed tableau would
    send every tuple to the catch-all bucket and lose the distribution."""
    cluster = partition_uniform(_xref8(), 4)
    cfd = xref_priority_cfd()
    (variable,) = normalize(cfd).variables

    partitions, _ = partition_cluster(cluster, variable)
    sizes = [sum(part.lstat) for part in partitions]
    spread = [
        sum(1 for count in part.lstat if count) for part in partitions
    ]
    assert all(s > 0 for s in sizes)
    assert all(s > 1 for s in spread)  # tuples split across many patterns

    # With an artificial all-wildcard pattern *first*, everything collapses
    # into one bucket — the degeneration the mining step exists to fix.
    degenerate = variable.patterns + ((WILDCARD,) * len(variable.lhs),)
    from repro.core import PatternIndex

    index = PatternIndex(((WILDCARD,) * len(variable.lhs),))
    lhs_pos = cluster.schema.positions(variable.lhs)
    rows = cluster.fragment(0).rows
    assert all(
        index.first_match(tuple(r[p] for p in lhs_pos)) == 0 for r in rows
    )

    benchmark.pedantic(
        lambda: partition_cluster(cluster, variable), rounds=3, iterations=1
    )


def test_pruning_skips_inapplicable_sites(benchmark, record_table):
    """F_i ∧ F_φ pruning: fragments whose predicate contradicts every
    pattern do not participate (no scan, no shipment)."""
    from repro.experiments import ExperimentResult

    data = generate_cust(scaled(200_000))
    cluster = partition_by_attribute(data, "CC")  # F_i: CC = value
    cfd = cust_street_cfd(60)  # patterns bind CC to the frequent countries
    (variable,) = normalize(cfd).variables

    partitions, _ = partition_cluster(cluster, variable)
    participating = [p for p in partitions if p.participated]
    pruned = [p for p in partitions if not p.participated]

    pattern_ccs = {row[0] for row in variable.patterns}
    result = ExperimentResult(
        "ablation_pruning",
        "F_i ∧ F_φ pruning (CUST fragmented by CC)",
        "metric",
        "sites",
    )
    result.add_point("participating", {"count": float(len(participating))})
    result.add_point("pruned", {"count": float(len(pruned))})
    record_table(result)

    assert pruned, "some CC fragment must fall outside the tableau"
    for part in pruned:
        cc = part.site.fragment.rows[0][data.schema.position("CC")]
        assert cc not in pattern_ccs
    outcome = pat_detect_s(cluster, cfd)
    benchmark.pedantic(lambda: pat_detect_s(cluster, cfd), rounds=3, iterations=1)
    assert outcome.tuples_shipped >= 0


def test_naive_baseline_ships_most(benchmark, record_table):
    """Section III-A: the ship-everything baseline incurs the most traffic."""
    from repro.experiments import ExperimentResult

    cluster = partition_uniform(_cust8(), 8)
    cfd = cust_street_cfd(255)

    naive = naive_detect(cluster, cfd)
    ctr = ctr_detect(cluster, cfd)
    pat = pat_detect_s(cluster, cfd)
    result = ExperimentResult(
        "ablation_baseline",
        "Naive vs detection algorithms (cust8, 8 sites)",
        "algorithm",
        "tuples shipped",
    )
    result.add_point("NAIVE", {"shipped": float(naive.tuples_shipped)})
    result.add_point("CTRDETECT", {"shipped": float(ctr.tuples_shipped)})
    result.add_point("PATDETECTS", {"shipped": float(pat.tuples_shipped)})
    record_table(result)

    assert naive.tuples_shipped >= ctr.tuples_shipped >= pat.tuples_shipped
    assert naive.report.violations == pat.report.violations

    benchmark.pedantic(lambda: naive_detect(cluster, cfd), rounds=3, iterations=1)
