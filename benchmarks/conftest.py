"""Shared fixtures for the benchmark harness.

Every ``test_fig3*`` benchmark regenerates one subfigure of the paper's
Figure 3: it runs the parameter sweep once (printing and persisting the
series under ``results/``), asserts the paper's qualitative shape, and
times one representative configuration with pytest-benchmark.

Dataset sizes follow ``REPRO_SCALE`` (default 0.1 of the paper's sizes).
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture()
def record_table():
    """Print a sweep result and persist it under ``results/``."""

    def _record(result):
        path = result.save(RESULTS_DIR)
        print("\n" + result.table())
        print(f"[saved to {path}]")
        return path

    return _record
