"""Exp-6 / Fig 3(i): response time vs |D|, two overlapping CFDs (cust16).

Paper shape: near-linear growth in |D| for both; CLUSTDETECT outperforms
SEQDETECT, and the gap grows with the local fragment size (SEQDETECT
gathers statistics once per CFD, CLUSTDETECT once per cluster).
"""

from repro.datagen import cust_overlapping_cfds
from repro.detect import seq_detect
from repro.experiments import fig3i
from repro.experiments.figures import _cust16
from repro.partition import partition_uniform


def test_fig3i(benchmark, record_table):
    result = fig3i()
    record_table(result)

    seq = result.series_by_label("SEQDETECT")
    clust = result.series_by_label("CLUSTDETECT")
    assert all(c < s for c, s in zip(clust, seq))
    assert seq == sorted(seq)
    assert clust == sorted(clust)
    # the gap grows with the data size
    assert (seq[-1] - clust[-1]) > (seq[0] - clust[0])

    cluster = partition_uniform(_cust16(), 8)
    cfds = cust_overlapping_cfds()
    benchmark.pedantic(
        lambda: seq_detect(cluster, cfds, single="rt"),
        rounds=3,
        iterations=1,
    )
