"""Perf regression gate: the four detection engines on the Fig. 3c/3i data.

Runs the same measurement as ``repro bench`` — the Fig. 3c data-size
configuration at ``REPRO_SCALE`` (deterministically seeded, so timings
compare like-for-like across runs), single-CFD (Fig. 3c) and multi-CFD
(Fig. 3i) workloads — and asserts:

* the fused engine, the sql engine (on every available backend) and, when
  numpy is active, the fused-numpy engine match the reference oracle
  (violations and tuple keys) on every workload;
* the steady-state speedups stay above conservative floors.  The floors
  sit well below what the engines deliver on an idle machine (fused ≥ 4x
  over the per-CFD-scan plan, fused-numpy ≥ 2x again over fused) so a
  loaded CI host does not flake the gate.

The machine-readable trajectory is written to ``BENCH_detect.json`` at the
repo root **only when ``REPRO_BENCH=1``** — a plain ``pytest`` run must not
dirty the working tree; export the variable when you intend to re-record
the trajectory.
"""

import json
import os
from pathlib import Path

from repro.experiments import bench_detection

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_detect.json"

#: conservative CI floors; the recorded steady-state targets are >= 4x for
#: fused over reference and >= 2x for fused-numpy over fused.  Override
#: (e.g. to 0 on a heavily loaded host) via the environment.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "1.8"))
NUMPY_VS_FUSED_FLOOR = float(
    os.environ.get("REPRO_BENCH_NUMPY_FLOOR", "1.3")
)
#: floor for incremental maintenance vs full recompute at the 1% batch
#: size; the recorded steady-state target is >= 10x (see docs/benchmarks.md)
INCREMENTAL_FLOOR = float(
    os.environ.get("REPRO_BENCH_INCREMENTAL_FLOOR", "3.0")
)
#: floor for the 10% batch — the crossover leg the vectorized delta folds
#: push past recompute; the recorded steady-state target is >= 5x
INCREMENTAL_10_FLOOR = float(
    os.environ.get("REPRO_BENCH_INCREMENTAL_10_FLOOR", "2.0")
)
#: overload-leg gates: accepted p99 (the governed enqueue→settle span)
#: may stretch to at most this multiple of the uncontended p99, and
#: goodput under 2× queue-capacity load must stay within this fraction
#: of the uncontended serve leg's throughput
OVERLOAD_P99_FACTOR = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_P99_FACTOR", "5.0")
)
OVERLOAD_GOODPUT_FRACTION = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_GOODPUT_FRACTION", "0.8")
)


def test_engine_speedups_and_equivalence():
    record = os.environ.get("REPRO_BENCH") == "1"
    summary = bench_detection(out=BENCH_PATH if record else None, repeats=3)

    # the parallel fragment-detection legs gate on *equivalence* only:
    # their speedups depend on the host's core count (recorded as
    # cpu_count in the summary), so timing floors would flake anywhere
    # from a laptop to a single-core CI container
    parallel = summary.get("parallel")
    assert parallel is not None and parallel["matches_serial"], (
        "parallel fragment detection diverged from serial"
    )

    # incremental maintenance gates on equivalence always and on
    # conservative timing floors at the 1% and 10% batch sizes
    incremental = summary["incremental"]
    assert incremental["matches_full_recompute"], (
        "incremental maintenance diverged from full recompute: "
        f"{incremental['legs']}"
    )
    assert incremental["legs"]["0.01"]["speedup"] >= INCREMENTAL_FLOOR, (
        "incremental speedup at the 1% batch regressed to "
        f"{incremental['legs']['0.01']['speedup']:.2f}x "
        f"(floor {INCREMENTAL_FLOOR}x)"
    )
    assert incremental["legs"]["0.1"]["speedup"] >= INCREMENTAL_10_FLOOR, (
        "incremental speedup at the 10% batch regressed to "
        f"{incremental['legs']['0.1']['speedup']:.2f}x "
        f"(floor {INCREMENTAL_10_FLOOR}x)"
    )
    # the pure-insert / pure-delete kinds and the resident clust /
    # vertical / hybrid session legs gate on equivalence (their timing
    # depends on deployment shape, so no floors beyond the matches flags)
    for kind, leg in incremental["kinds"].items():
        assert leg["matches_full_recompute"], (
            f"incremental {kind} batch diverged from full recompute"
        )
    sessions = incremental["sessions"]
    assert sessions["matches_full_recompute"], sessions
    for name in ("clust", "vertical", "hybrid"):
        assert sessions[name]["matches_full_recompute"], (
            f"incremental {name} session diverged from a fresh one-shot "
            f"run: {sessions[name]}"
        )

    # robustness gates on *equivalence* only — degraded-mode runs measure
    # survival, not speed, so no timing floor may apply to them (they run
    # with injected faults and a serial fallback by design)
    robustness = summary.get("robustness")
    assert robustness is not None and robustness["matches_serial"], (
        f"fault-recovered detection diverged from serial: {robustness}"
    )
    assert robustness["crash_recovery"]["respawns"] >= 1, (
        "the crash_recovery leg never exercised a respawn"
    )
    assert robustness["degraded_throughput"]["degraded_runs"] >= 1, (
        "the degraded_throughput leg never fell back to serial"
    )

    # the sql engine gates on *equivalence* only: a database round trip
    # is not expected to beat the in-memory tiers, so no timing floor —
    # but every backend leg must be bit-identical to the reference
    sql = summary["sql"]
    assert sql["matches_reference"], (
        f"sql engine diverged from reference: {sql['backends']}"
    )
    assert "sqlite" in sql["backends"], "the sqlite backend leg is mandatory"
    for backend, legs in sql["backends"].items():
        for name, leg in legs.items():
            assert leg["matches_reference"], (
                f"sql[{backend}] {name}: != reference"
            )

    # the serve leg gates on *equivalence* only (like parallel and
    # robustness): the report a multi-writer HTTP load leaves behind must
    # equal a serial replay of the same updates, and the session's own
    # invariant check must hold — its latency numbers depend on the
    # host's thread scheduling, so no timing floor
    serve = summary.get("serve")
    assert serve is not None and serve["matches_serial_replay"], (
        f"served detection diverged from serial replay: {serve}"
    )
    assert serve["verify_ok"], (
        f"the served session failed its invariant check: {serve}"
    )
    assert serve["writers"] >= 4 and serve["folds"] <= serve["updates"], serve

    # the overload leg gates on the governor's contract: equivalence on
    # exactly the accepted set, Retry-After on every shed request, the
    # accepted (governed) p99 bounded relative to uncontended, and
    # goodput within a fraction of the uncontended serve leg despite the
    # 2× queue-capacity offered load
    overload = summary.get("overload")
    assert overload is not None and overload["matches_serial_replay"], (
        f"overloaded service diverged from the accepted-set replay: "
        f"{overload}"
    )
    assert overload["all_shed_carry_retry_after"], (
        f"a shed request went out without Retry-After: {overload}"
    )
    assert overload["shed"] > 0, (
        f"the overload leg shed nothing — the governor was never "
        f"exercised: {overload}"
    )
    assert overload["p99_ratio"] <= OVERLOAD_P99_FACTOR, (
        f"accepted p99 stretched to {overload['p99_ratio']:.1f}x the "
        f"uncontended p99 (gate {OVERLOAD_P99_FACTOR}x): {overload}"
    )
    goodput_floor = OVERLOAD_GOODPUT_FRACTION * serve["requests_per_sec"]
    assert overload["goodput_per_sec"] >= goodput_floor, (
        f"goodput under overload fell to "
        f"{overload['goodput_per_sec']:,.0f}/s (floor "
        f"{goodput_floor:,.0f}/s = {OVERLOAD_GOODPUT_FRACTION:.0%} of the "
        f"serve leg): {overload}"
    )

    # the durability leg gates on *equivalence* only: every fsync-policy
    # deployment's final report — and its recovered-after-restart report —
    # must equal the reference oracle over the serially-replayed rows, and
    # the 10k-record recovery leg must replay to the pre-crash report.
    # WAL overhead and recovery time are recorded, not floored: both are
    # dominated by the host's disk, so a timing gate would flake on CI
    durability = summary.get("durability")
    assert durability is not None and durability["matches_serial_replay"], (
        f"durable detection diverged from serial replay: {durability}"
    )
    for policy in ("off", "batch", "always"):
        assert durability["policies"][policy]["matches_serial_replay"], (
            f"fsync={policy} deployment diverged after restart: "
            f"{durability['policies'][policy]}"
        )
    recovery = durability["recovery"]
    assert recovery["replayed_records"] == recovery["wal_records"], (
        f"recovery replayed {recovery['replayed_records']} of "
        f"{recovery['wal_records']} WAL records: {recovery}"
    )

    # provenance must be present so recorded trajectories self-describe,
    # and the headline timing sections must have run fault-free
    provenance = summary["provenance"]
    assert provenance["python"] and "repro_knobs" in provenance
    assert provenance["faults"] == "none", (
        f"benchmark recorded under an ambient fault plan: {provenance['faults']}"
    )

    for name, entry in summary["workloads"].items():
        assert entry["matches_reference"], f"{name}: fused != reference"
        assert entry["speedup"] >= SPEEDUP_FLOOR, (
            f"{name}: fused speedup regressed to {entry['speedup']:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
        if summary["numpy"]:
            assert entry["fused_numpy_matches_reference"], (
                f"{name}: fused-numpy != reference"
            )
            assert entry["fused_numpy_vs_fused"] >= NUMPY_VS_FUSED_FLOOR, (
                f"{name}: fused-numpy regressed to "
                f"{entry['fused_numpy_vs_fused']:.2f}x over fused "
                f"(floor {NUMPY_VS_FUSED_FLOOR}x)"
            )

    if record:
        persisted = json.loads(BENCH_PATH.read_text())
        assert persisted["speedup"] == summary["speedup"]
        assert persisted["n_tuples"] == summary["n_tuples"]

    def line(name, entry):
        text = (
            f"{name}: {entry['speedup']:.1f}x warm "
            f"({entry['cold_speedup']:.1f}x cold), "
            f"{entry['fused_rows_per_sec']:,.0f} rows/s fused vs "
            f"{entry['baseline_rows_per_sec']:,.0f} rows/s baseline"
        )
        if "fused_numpy_rows_per_sec" in entry:
            text += (
                f"; fused-numpy {entry['fused_numpy_speedup']:.1f}x warm, "
                f"{entry['fused_numpy_rows_per_sec']:,.0f} rows/s "
                f"({entry['fused_numpy_vs_fused']:.1f}x over fused)"
            )
        return text

    incremental_line = "incremental: " + ", ".join(
        f"{float(name):.1%}={leg['incremental_seconds'] * 1000:.1f}ms "
        f"({leg['speedup']:.1f}x)"
        for name, leg in incremental["legs"].items()
    )
    incremental_line += "; kinds: " + ", ".join(
        f"{kind}={leg['speedup']:.1f}x"
        for kind, leg in incremental["kinds"].items()
    )
    incremental_line += "; sessions: " + ", ".join(
        f"{name}={sessions[name]['speedup']:.1f}x"
        for name in ("clust", "vertical", "hybrid")
    )
    sql_line = "sql: " + "; ".join(
        f"{backend} " + ", ".join(
            f"{name}={leg['warm_seconds'] * 1000:.0f}ms warm "
            f"({leg['rows_per_sec']:,.0f} rows/s)"
            for name, leg in legs.items()
        )
        for backend, legs in sql["backends"].items()
    )
    legs = parallel["legs"]
    parallel_line = (
        f"parallel (4 sites, {parallel['cpu_count']} CPUs): "
        + ", ".join(
            f"{name}={leg['warm_seconds'] * 1000:.1f}ms"
            + (
                f" ({leg['speedup_warm']:.2f}x)"
                if "speedup_warm" in leg
                else ""
            )
            for name, leg in legs.items()
        )
    )
    crash = robustness["crash_recovery"]
    degraded = robustness["degraded_throughput"]
    robustness_line = (
        f"robustness: crash recovery "
        f"{crash['recovery_seconds'] * 1000:.1f}ms "
        f"(+{crash['recovery_overhead_seconds'] * 1000:.1f}ms over "
        f"fault-free, {crash['respawns']} respawn(s)); degraded serial "
        f"fallback {degraded['rows_per_sec']:,.0f} rows/s"
    )
    serve_line = (
        f"serve ({serve['writers']} writers, {serve['base_rows']} resident "
        f"rows): p50 {serve['update_p50_seconds'] * 1000:.1f}ms, "
        f"p99 {serve['update_p99_seconds'] * 1000:.1f}ms, "
        f"{serve['requests_per_sec']:,.0f} req/s, coalesced up to "
        f"{serve['coalesced_max']} ({serve['folds']} folds / "
        f"{serve['updates']} updates), churn "
        f"{serve['churn_sessions_per_sec']:,.1f} sessions/s"
    )
    overload_line = (
        f"overload ({overload['tenants']} tenants x "
        f"{overload['writers_per_tenant']} writers, "
        f"{overload['offered_factor']:.0f}x queue capacity): goodput "
        f"{overload['goodput_per_sec']:,.0f}/s, shed "
        f"{overload['shed']}/{overload['offered']} "
        f"({overload['shed_rate']:.0%}), governed p99 "
        f"{overload['p99_accepted_seconds'] * 1000:.1f}ms "
        f"({overload['p99_ratio']:.1f}x uncontended), deadline "
        f"{overload['deadline_seconds'] * 1000:.1f}ms"
    )
    durability_line = (
        "durability: in-memory p50 "
        f"{durability['memory']['update_p50_seconds'] * 1000:.2f}ms; "
        + "; ".join(
            f"fsync={policy} "
            f"{leg['update_p50_seconds'] * 1000:.2f}ms "
            f"({leg['overhead_p50_vs_memory']:.1f}x)"
            for policy, leg in durability["policies"].items()
        )
        + f"; recovery {recovery['wal_records']:,} records in "
        f"{recovery['recovery_seconds']:.2f}s "
        f"({recovery['records_per_sec']:,.0f}/s)"
    )
    print(
        "\n"
        + "\n".join(
            line(name, entry)
            for name, entry in summary["workloads"].items()
        )
        + "\n"
        + incremental_line
        + "\n"
        + sql_line
        + "\n"
        + parallel_line
        + "\n"
        + robustness_line
        + "\n"
        + serve_line
        + "\n"
        + overload_line
        + "\n"
        + durability_line
    )
