"""Perf regression gate: fused single-pass detection vs per-CFD scans.

Runs the same measurement as ``repro bench`` — the Fig. 3c data-size
configuration at ``REPRO_SCALE``, single-CFD (Fig. 3c) and multi-CFD
(Fig. 3i) workloads — writes the machine-readable trajectory to
``BENCH_detect.json`` at the repo root, and asserts:

* the fused engine matches the reference oracle (violations and tuple
  keys) on every workload;
* the steady-state speedup stays above a conservative floor.  The floor is
  set below the ≥3x the engine delivers on an idle machine so a loaded CI
  host does not flake the gate; the JSON records the actual numbers for
  the trajectory.
"""

import json
import os
from pathlib import Path

from repro.experiments import bench_detection

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_detect.json"

#: conservative CI floor; the recorded steady-state speedup target is >= 3x.
#: Override (e.g. to 0 on a heavily loaded host) via the environment.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "1.8"))


def test_fused_engine_speedup_and_equivalence():
    summary = bench_detection(out=BENCH_PATH, repeats=3)

    for name, entry in summary["workloads"].items():
        assert entry["matches_reference"], f"{name}: fused != reference"
        assert entry["speedup"] >= SPEEDUP_FLOOR, (
            f"{name}: fused speedup regressed to {entry['speedup']:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    persisted = json.loads(BENCH_PATH.read_text())
    assert persisted["speedup"] == summary["speedup"]
    assert persisted["n_tuples"] == summary["n_tuples"]
    print(
        "\n"
        + "\n".join(
            f"{name}: {entry['speedup']:.1f}x warm "
            f"({entry['cold_speedup']:.1f}x cold), "
            f"{entry['fused_rows_per_sec']:,.0f} rows/s fused vs "
            f"{entry['baseline_rows_per_sec']:,.0f} rows/s baseline"
            for name, entry in summary["workloads"].items()
        )
    )
