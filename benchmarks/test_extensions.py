"""Benches for the Section VIII extensions: replication and hybrid detection.

Not figures of the paper — they quantify the future-work directions the
paper names: replication should cut both shipment and response time as the
replication degree grows, and hybrid detection should stay within a small
factor of pure-horizontal detection despite the extra vertical gathers.
"""

from repro.datagen import cust_street_cfd
from repro.detect import hybrid_detect, pat_detect_s, replicated_pat_detect
from repro.distributed import HybridCluster, ReplicatedCluster
from repro.experiments import ExperimentResult
from repro.experiments.figures import _cust8
from repro.partition import partition_uniform
from repro.relational import InSet


def test_replication_degree_sweep(benchmark, record_table):
    data = _cust8()
    base = partition_uniform(data, 8)
    cfd = cust_street_cfd(255)
    result = ExperimentResult(
        "ext_replication",
        "Replication-aware detection (cust8, 8 sites)",
        "replication degree",
        "tuples shipped / response (s)",
    )
    shipped, times = [], []
    for degree in (1, 2, 4, 8):
        cluster = ReplicatedCluster.replicate(base, degree)
        outcome = replicated_pat_detect(cluster, cfd)
        shipped.append(outcome.tuples_shipped)
        times.append(outcome.response_time)
        result.add_point(
            degree,
            {
                "shipped": float(outcome.tuples_shipped),
                "response": outcome.response_time,
            },
        )
    record_table(result)

    assert shipped == sorted(shipped, reverse=True)
    assert shipped[-1] == 0  # full replication ships nothing
    assert times[-1] < times[0]  # and is faster

    cluster = ReplicatedCluster.replicate(base, 4)
    benchmark.pedantic(
        lambda: replicated_pat_detect(cluster, cfd), rounds=3, iterations=1
    )


def test_hybrid_vs_horizontal(benchmark, record_table):
    data = _cust8()
    cfd = cust_street_cfd(120)
    horizontal = partition_uniform(data, 6)
    plain = pat_detect_s(horizontal, cfd)

    ccs = sorted({row[2] for row in data.rows})
    split = len(ccs) // 2
    hybrid = HybridCluster.from_partitions(
        data,
        {
            "west": InSet("CC", ccs[:split]),
            "east": InSet("CC", ccs[split:]),
        },
        # street lives apart from the rule's LHS attributes, so every
        # region needs an intra-region vertical gather before the
        # cross-region σ detection
        {
            "address": ["CC", "AC", "city", "zip"],
            "orders": ["name", "phn", "street", "item", "price", "quantity"],
        },
    )
    outcome = hybrid_detect(hybrid, cfd)
    assert outcome.report.violations == plain.report.violations
    assert outcome.tuples_shipped > 0  # the vertical gathers

    result = ExperimentResult(
        "ext_hybrid",
        "Hybrid vs horizontal detection (cust8)",
        "deployment",
        "tuples shipped",
    )
    result.add_point("horizontal(6 sites)", {"shipped": float(plain.tuples_shipped)})
    result.add_point(
        "hybrid(2x4 sites)", {"shipped": float(outcome.tuples_shipped)}
    )
    record_table(result)

    benchmark.pedantic(lambda: hybrid_detect(hybrid, cfd), rounds=3, iterations=1)
