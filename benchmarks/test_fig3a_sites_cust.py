"""Exp-1 / Fig 3(a): scalability with |S| on cust8, single CFD.

Paper shape: response time decreases as |S| grows; CTRDETECT is slowest
(its single coordinator's local database is largest); PATDETECTRT is the
fastest, by a factor of more than two at 8 sites.
"""

from repro.datagen import cust_street_cfd
from repro.detect import pat_detect_rt
from repro.experiments import fig3a
from repro.experiments.figures import _cust8
from repro.partition import partition_uniform


def test_fig3a(benchmark, record_table):
    result = fig3a()
    record_table(result)

    ctr = result.series_by_label("CTRDETECT")
    pat_s = result.series_by_label("PATDETECTS")
    pat_rt = result.series_by_label("PATDETECTRT")
    # response time decreases with |S| for every algorithm
    for series in (ctr, pat_s, pat_rt):
        assert series[-1] < series[0]
    # CTRDETECT is outperformed throughout; PATDETECTRT wins at 8 sites
    assert all(c > p for c, p in zip(ctr, pat_rt))
    assert ctr[-1] / pat_rt[-1] > 2.0  # "by a factor of more than two"

    cluster = partition_uniform(_cust8(), 8)
    cfd = cust_street_cfd(255)
    benchmark.pedantic(
        lambda: pat_detect_rt(cluster, cfd), rounds=3, iterations=1
    )
