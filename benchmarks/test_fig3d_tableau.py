"""Exp-3 / Fig 3(d): scalability with |Tp| on cust8, 8 sites.

Paper shape: response time grows (near-)linearly as the pattern tableau
grows from 50 to 255 pattern tuples — more patterns means more matching
tuples shipped — with PATDETECTRT doing much better than CTRDETECT.
"""

from repro.datagen import cust_street_cfd
from repro.detect import pat_detect_rt
from repro.experiments import fig3d
from repro.experiments.figures import _cust8
from repro.partition import partition_uniform


def test_fig3d(benchmark, record_table):
    result = fig3d()
    record_table(result)

    ctr = result.series_by_label("CTRDETECT")
    pat_rt = result.series_by_label("PATDETECTRT")
    assert ctr == sorted(ctr)  # increasing in |Tp|
    assert pat_rt == sorted(pat_rt)
    assert all(c > p for c, p in zip(ctr, pat_rt))

    cluster = partition_uniform(_cust8(), 8)
    cfd = cust_street_cfd(50)
    benchmark.pedantic(
        lambda: pat_detect_rt(cluster, cfd), rounds=3, iterations=1
    )
