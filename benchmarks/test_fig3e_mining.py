"""Exp-4 / Fig 3(e): impact of pattern mining on shipment (xrefH).

Paper shape: instantiating the FD's wildcards with mined closed frequent
patterns cuts the tuples shipped — up to ~80% at small θ — and the benefit
fades once θ exceeds ~0.6 (fewer patterns survive the threshold).
"""

from repro.datagen import xref_mining_fd
from repro.experiments import fig3e
from repro.experiments.figures import _xrefh
from repro.mining import instantiate_with_frequent_patterns
from repro.partition import partition_by_attribute


def test_fig3e(benchmark, record_table):
    result = fig3e()
    record_table(result)

    baseline = result.series_by_label("PATDETECTS")
    mined = result.series_by_label("PATDETECTS+mining")
    assert all(m <= b for m, b in zip(mined, baseline))
    # strong reduction at the smallest threshold (paper: up to 80%)
    assert mined[0] < 0.5 * baseline[0]
    # the benefit fades for large thresholds
    assert mined[-1] > 0.9 * baseline[-1]
    # reduction fades monotonically in θ, up to small coordinator jitter
    assert all(a <= b * 1.05 for a, b in zip(mined, mined[1:]))

    cluster = partition_by_attribute(_xrefh(), "info_type")
    fd = xref_mining_fd()
    benchmark.pedantic(
        lambda: instantiate_with_frequent_patterns(cluster, fd, theta=0.1),
        rounds=3,
        iterations=1,
    )
