"""Exp-5 / Fig 3(g): response time vs |S|, two overlapping CFDs (xref8).

Paper shape: CLUSTDETECT outperforms SEQDETECT in response time at every
site count (one statistics pass and one shipment per CFD cluster).
"""

from repro.datagen import xref_overlapping_cfds
from repro.detect import seq_detect
from repro.experiments import fig3g
from repro.experiments.figures import _xref8
from repro.partition import partition_uniform


def test_fig3g(benchmark, record_table):
    result = fig3g()
    record_table(result)

    seq = result.series_by_label("SEQDETECT")
    clust = result.series_by_label("CLUSTDETECT")
    assert all(c < s for c, s in zip(clust, seq))
    assert seq[-1] < seq[0]  # still scales with |S|

    cluster = partition_uniform(_xref8(), 8)
    cfds = xref_overlapping_cfds()
    benchmark.pedantic(
        lambda: seq_detect(cluster, cfds, single="rt"),
        rounds=3,
        iterations=1,
    )
