"""Horizontal fragmentation: ``D_i = σ_{F_i}(D)`` (Section II-B).

Fragments are disjoint and their union reconstructs ``D``.  Besides
predicate-defined partitions (the paper's Figure 1(b) groups EMP by
``title``), the module provides the uniform round-robin split used
throughout the paper's experiments ("we distributed the data uniformly
among the sites") plus hash- and attribute-based splits.
"""

from __future__ import annotations

from typing import Sequence

from ..distributed import Cluster, CostModel
from ..relational import Eq, Predicate, Relation


class PartitionError(ValueError):
    """Raised when a requested partition is not well formed."""


def partition_by_predicates(
    relation: Relation,
    predicates: Sequence[Predicate],
    names: Sequence[str] | None = None,
    cost_model: CostModel | None = None,
    strict: bool = True,
) -> Cluster:
    """Fragment by selection predicates, one site per predicate.

    ``strict`` enforces the paper's well-formedness conditions: the
    predicates must be pairwise disjoint on the data and jointly cover it.
    """
    schema = relation.schema
    fragments: list[list[tuple]] = [[] for _ in predicates]
    for row in relation.rows:
        hits = [
            i for i, pred in enumerate(predicates) if pred.evaluate(row, schema)
        ]
        if strict and len(hits) != 1:
            raise PartitionError(
                f"row {row!r} matches {len(hits)} fragment predicates; "
                "a horizontal partition needs exactly one"
            )
        if hits:
            fragments[hits[0]].append(row)
    return Cluster.from_fragments(
        (Relation(schema, rows, copy=False) for rows in fragments),
        predicates=predicates,
        names=names,
        cost_model=cost_model,
    )


def partition_by_attribute(
    relation: Relation,
    attribute: str,
    cost_model: CostModel | None = None,
) -> Cluster:
    """One fragment per distinct value of ``attribute`` (Figure 1(b) style)."""
    groups = relation.group_by([attribute])
    if not groups:
        # An empty relation still deploys as a single (empty) fragment.
        return Cluster.from_fragments([relation], cost_model=cost_model)
    values = sorted(groups, key=repr)
    predicates = [Eq(attribute, value[0]) for value in values]
    names = [f"{attribute}={value[0]}" for value in values]
    return Cluster.from_fragments(
        (
            Relation(relation.schema, groups[value], copy=False)
            for value in values
        ),
        predicates=predicates,
        names=names,
        cost_model=cost_model,
    )


def partition_uniform(
    relation: Relation,
    n_sites: int,
    cost_model: CostModel | None = None,
) -> Cluster:
    """Round-robin split into ``n_sites`` near-equal fragments.

    This is the uniform distribution of the paper's experiments: it does not
    bias the fragmentation toward any detection algorithm.
    """
    if n_sites < 1:
        raise PartitionError("need at least one site")
    buckets: list[list[tuple]] = [[] for _ in range(n_sites)]
    for position, row in enumerate(relation.rows):
        buckets[position % n_sites].append(row)
    return Cluster.from_fragments(
        (Relation(relation.schema, rows, copy=False) for rows in buckets),
        cost_model=cost_model,
    )


def partition_by_hash(
    relation: Relation,
    attributes: Sequence[str],
    n_sites: int,
    cost_model: CostModel | None = None,
) -> Cluster:
    """Hash-partition on ``attributes`` into ``n_sites`` fragments."""
    if n_sites < 1:
        raise PartitionError("need at least one site")
    positions = relation.schema.positions(attributes)
    buckets: list[list[tuple]] = [[] for _ in range(n_sites)]
    for row in relation.rows:
        digest = hash(tuple(row[p] for p in positions))
        buckets[digest % n_sites].append(row)
    return Cluster.from_fragments(
        (Relation(relation.schema, rows, copy=False) for rows in buckets),
        cost_model=cost_model,
    )
