"""Fragmentation of relations, horizontal and vertical (Section II-B, V)."""

from .horizontal import (
    PartitionError,
    partition_by_attribute,
    partition_by_hash,
    partition_by_predicates,
    partition_uniform,
)
from .vertical import VerticalPartition, vertical_partition

__all__ = [
    "PartitionError",
    "partition_by_attribute",
    "partition_by_hash",
    "partition_by_predicates",
    "partition_uniform",
    "VerticalPartition",
    "vertical_partition",
]

from .preservation import (
    is_dependency_preserving,
    preservation_counterexample,
    unpreserved_cfds,
)
from .refinement import (
    augmentation_size,
    greedy_refinement,
    minimum_refinement,
)

__all__ += [
    "is_dependency_preserving",
    "preservation_counterexample",
    "unpreserved_cfds",
    "augmentation_size",
    "greedy_refinement",
    "minimum_refinement",
]
