"""Vertical fragmentation: ``D_i = π_{X_i}(D)`` (Section II-B).

Each fragment projects the relation onto an attribute set that must include
the key (or the system-assigned tuple id); the original relation is the key
join of the fragments.  A :class:`VerticalPartition` is the schema-level
object Section V reasons about (dependency preservation, refinement); it can
be *deployed* onto an instance to obtain a
:class:`~repro.distributed.VerticalCluster`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..distributed import CostModel, Site, VerticalCluster
from ..relational import Relation, Schema
from .horizontal import PartitionError


class VerticalPartition:
    """A named vertical partition ``(R_1, ..., R_n)`` of a schema ``R``.

    ``attribute_sets`` maps fragment name -> attributes; the key attributes
    of ``schema`` are added to every fragment automatically (the paper
    assumes every ``X_i`` contains ``key(R)``).
    """

    def __init__(
        self,
        schema: Schema,
        attribute_sets: Mapping[str, Sequence[str]] | Sequence[Sequence[str]],
    ) -> None:
        if not isinstance(attribute_sets, Mapping):
            attribute_sets = {
                f"R{i + 1}": attrs for i, attrs in enumerate(attribute_sets)
            }
        if not attribute_sets:
            raise PartitionError("a vertical partition needs fragments")
        self.schema = schema
        self.fragments: dict[str, tuple[str, ...]] = {}
        for name, attrs in attribute_sets.items():
            ordered = dict.fromkeys(schema.key)
            for attr in attrs:
                schema.position(attr)  # validates
                ordered[attr] = None
            # preserve original column order inside the fragment
            self.fragments[name] = tuple(
                a for a in schema.attributes if a in ordered
            )
        covered = {a for attrs in self.fragments.values() for a in attrs}
        missing = [a for a in schema.attributes if a not in covered]
        if missing:
            raise PartitionError(
                f"vertical partition misses attributes {missing}"
            )

    # -- schema-level views ----------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.fragments)

    def attributes_of(self, name: str) -> tuple[str, ...]:
        return self.fragments[name]

    def fragment_schemas(self) -> dict[str, Schema]:
        """Schemas ``R_i`` (each keyed by ``key(R)``)."""
        return {
            name: self.schema.project(attrs, name=name)
            for name, attrs in self.fragments.items()
        }

    def covers(self, attributes: Iterable[str]) -> str | None:
        """Name of a fragment containing all ``attributes``, if any.

        A CFD ``φ`` is locally checkable at a fragment iff the fragment
        covers ``attr(φ)`` (Section II-C / V).
        """
        needed = tuple(attributes)
        for name, attrs in self.fragments.items():
            if all(a in attrs for a in needed):
                return name
        return None

    def refine(
        self, augmentation: Mapping[str, Sequence[str]]
    ) -> "VerticalPartition":
        """Refinement by an augmentation ``Z`` (Section V): add attributes."""
        refined = {
            name: tuple(attrs) + tuple(augmentation.get(name, ()))
            for name, attrs in self.fragments.items()
        }
        return VerticalPartition(self.schema, refined)

    # -- deployment ------------------------------------------------------

    def deploy(
        self, relation: Relation, cost_model: CostModel | None = None
    ) -> VerticalCluster:
        """Materialize the fragments of ``relation`` at one site each."""
        if relation.schema.attributes != self.schema.attributes:
            raise PartitionError(
                "instance schema does not match the partitioned schema"
            )
        sites = []
        for index, (name, attrs) in enumerate(self.fragments.items()):
            fragment = relation.project(attrs, name=name)
            sites.append(Site(index, fragment, name=name))
        return VerticalCluster(self.schema, sites, cost_model=cost_model)

    def __repr__(self) -> str:
        parts = "; ".join(
            f"{name}({', '.join(attrs)})" for name, attrs in self.fragments.items()
        )
        return f"VerticalPartition[{parts}]"


def vertical_partition(
    relation: Relation,
    attribute_sets: Mapping[str, Sequence[str]] | Sequence[Sequence[str]],
    cost_model: CostModel | None = None,
) -> VerticalCluster:
    """Shortcut: build a :class:`VerticalPartition` and deploy it."""
    return VerticalPartition(relation.schema, attribute_sets).deploy(
        relation, cost_model=cost_model
    )
