"""Dependency preservation of vertical partitions (Section V, Prop. 7).

A vertical partition ``(R_1, ..., R_n)`` is *dependency preserving* w.r.t. a
set Σ of CFDs iff ``Γ |= Σ``, where ``Γ = ⋃ Γ_i`` and ``Γ_i`` collects the
CFDs implied by Σ whose attributes all lie in fragment ``R_i``.  By
Proposition 7 this holds exactly when all of Σ can be checked locally for
*every* instance.

Materializing Γ is impossible (it is infinite); instead we generalize
Ullman's classical dependency-preservation test for FDs.  For each tested
CFD we maintain the two-tuple chase witness of
:mod:`repro.core.implication` and repeatedly import, fragment by fragment,
every consequence Σ forces on the witness *when only the fragment's
attributes are visible*: project the witness onto the fragment (fresh
variables elsewhere), chase the projection with the full Σ, and copy the
equalities/constant bindings derived on fragment attributes back into the
main witness.  Each import step is justified by a CFD of Γ_i, and
conversely every applicable member of Γ_i is captured because the chase is
complete for implication (infinite-domain semantics).  The CFD is preserved
iff the fixpoint forces its conclusion.

When the test fails, :func:`preservation_counterexample` materializes the
final witness into a concrete two-tuple instance: every fragment of it
satisfies Σ locally, yet the instance violates the tested CFD — a direct
demonstration of Proposition 7.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core import CFD, ChaseState, Inconsistent, chase, is_wildcard, normalize
from ..core.normalize import ConstantCFD, VariableCFD
from ..relational import Relation
from .vertical import VerticalPartition


def _witness_attributes(sigma: Sequence[CFD], phi: CFD) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for cfd in list(sigma) + [phi]:
        for attr in cfd.attributes:
            seen.setdefault(attr)
    return tuple(seen)


def _project_state(
    state: ChaseState, fragment_attrs: Sequence[str]
) -> ChaseState:
    """Copy of ``state`` restricted to ``fragment_attrs``.

    Cells outside the fragment become fresh unconstrained variables;
    within the fragment, shared classes and constant bindings survive.
    """
    sub = ChaseState(state.attributes)
    anchors: dict[tuple, tuple[int, str]] = {}
    for t in range(2):
        for attr in fragment_attrs:
            if attr not in state.cells[t]:
                continue
            root = state.find(state.cells[t][attr])
            if root[0] == "const":
                sub.bind(t, attr, root[2])
            elif root in anchors:
                at, aattr = anchors[root]
                sub.union(sub.cells[t][attr], sub.cells[at][aattr])
            else:
                anchors[root] = (t, attr)
    return sub


def _import_consequences(
    state: ChaseState, sub: ChaseState, fragment_attrs: Sequence[str]
) -> bool:
    """Copy what the fragment-local chase derived back into ``state``."""
    changed = False
    cells = [
        (t, attr)
        for t in range(2)
        for attr in fragment_attrs
        if attr in state.cells[t]
    ]
    for i, (t, attr) in enumerate(cells):
        sub_root = sub.find(sub.cells[t][attr])
        if sub_root[0] == "const":
            changed |= state.bind(t, attr, sub_root[2])
        for t2, attr2 in cells[i + 1 :]:
            if sub.find(sub.cells[t2][attr2]) == sub_root:
                changed |= state.union(
                    state.cells[t][attr], state.cells[t2][attr2]
                )
    return changed


def _local_fixpoint(
    state: ChaseState,
    sigma_normalized,
    fragments: Sequence[Sequence[str]],
) -> None:
    """Drive the witness to fixpoint under fragment-local consequences."""
    changed = True
    while changed:
        changed = False
        for fragment_attrs in fragments:
            sub = _project_state(state, fragment_attrs)
            chase(sub, sigma_normalized)  # may raise Inconsistent
            changed |= _import_consequences(state, sub, fragment_attrs)


def _variable_preserved(
    sigma_normalized,
    attributes: Sequence[str],
    fragments: Sequence[Sequence[str]],
    psi: VariableCFD,
) -> bool:
    for row in psi.patterns:
        state = ChaseState(attributes)
        try:
            for attr, entry in zip(psi.lhs, row):
                state.equate(attr)
                if not is_wildcard(entry):
                    state.bind(0, attr, entry)
            _local_fixpoint(state, sigma_normalized, fragments)
        except Inconsistent:
            continue
        if not all(state.equal(0, 1, attr) for attr in psi.rhs):
            return False
    return True


def _constant_preserved(
    sigma_normalized,
    attributes: Sequence[str],
    fragments: Sequence[Sequence[str]],
    psi: ConstantCFD,
) -> bool:
    state = ChaseState(attributes)
    try:
        for attr, value in zip(psi.lhs, psi.values):
            state.bind(0, attr, value)
        _local_fixpoint(state, sigma_normalized, fragments)
    except Inconsistent:
        return True
    return state.is_bound_to(0, psi.rhs_attr, psi.rhs_value)


def unpreserved_cfds(
    partition: VerticalPartition, sigma: Iterable[CFD]
) -> list[CFD]:
    """The CFDs of Σ that cannot be checked locally under the partition."""
    sigma = list(sigma)
    sigma_normalized = [normalize(cfd) for cfd in sigma]
    fragments = [partition.attributes_of(name) for name in partition.names]
    failing = []
    for cfd in sigma:
        attributes = _witness_attributes(sigma, cfd)
        psi = normalize(cfd)
        ok = all(
            _constant_preserved(sigma_normalized, attributes, fragments, c)
            for c in psi.constants
        ) and all(
            _variable_preserved(sigma_normalized, attributes, fragments, v)
            for v in psi.variables
        )
        if not ok:
            failing.append(cfd)
    return failing


def is_dependency_preserving(
    partition: VerticalPartition, sigma: Iterable[CFD]
) -> bool:
    """Whether the partition is dependency preserving w.r.t. Σ (Prop. 7)."""
    return not unpreserved_cfds(partition, sigma)


def preservation_counterexample(
    partition: VerticalPartition, sigma: Iterable[CFD]
) -> tuple[CFD, Relation] | None:
    """A two-tuple instance whose violation no fragment can see, if any.

    Returns ``(φ, D)`` where ``D ⊭ φ`` but every vertical fragment of ``D``
    satisfies every CFD of Σ expressible over that fragment — the
    Proposition 7 witness.  Returns ``None`` for preserving partitions.
    """
    sigma = list(sigma)
    failing = unpreserved_cfds(partition, sigma)
    if not failing:
        return None
    phi = failing[0]
    sigma_normalized = [normalize(cfd) for cfd in sigma]
    fragments = [partition.attributes_of(name) for name in partition.names]
    attributes = _witness_attributes(sigma, phi)
    psi = normalize(phi)

    for variable in psi.variables:
        for row in variable.patterns:
            state = ChaseState(attributes)
            try:
                for attr, entry in zip(variable.lhs, row):
                    state.equate(attr)
                    if not is_wildcard(entry):
                        state.bind(0, attr, entry)
                _local_fixpoint(state, sigma_normalized, fragments)
            except Inconsistent:
                continue
            if all(state.equal(0, 1, attr) for attr in variable.rhs):
                continue
            return phi, _materialize(partition, state, attributes)

    for constant in psi.constants:
        state = ChaseState(attributes)
        try:
            for attr, value in zip(constant.lhs, constant.values):
                state.bind(0, attr, value)
            _local_fixpoint(state, sigma_normalized, fragments)
        except Inconsistent:
            continue
        if not state.is_bound_to(0, constant.rhs_attr, constant.rhs_value):
            return phi, _materialize(partition, state, attributes)
    return None


def _materialize(
    partition: VerticalPartition,
    state: ChaseState,
    attributes: Sequence[str],
) -> Relation:
    """Generic valuation of the witness as a two-tuple instance of ``R``."""
    schema = partition.schema
    valuation: dict[tuple, object] = {}
    counter = [0]

    def value_of(root: tuple) -> object:
        if root[0] == "const":
            return root[2]
        if root not in valuation:
            counter[0] += 1
            valuation[root] = f"fresh#{counter[0]}"
        return valuation[root]

    rows = []
    for t in range(2):
        row = []
        for attr in schema.attributes:
            if attr in state.cells[t]:
                row.append(value_of(state.find(state.cells[t][attr])))
            elif attr in schema.key:
                row.append(t + 1)  # distinct keys
            else:
                counter[0] += 1
                row.append(f"fresh#{counter[0]}")
        rows.append(tuple(row))
    return Relation(schema, rows)
