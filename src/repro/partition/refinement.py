"""Minimum refinement of vertical partitions (Section V, Theorem 8).

Given Σ and a non-preserving vertical partition, find an augmentation
``Z = (Z_1, ..., Z_n)`` — attributes added to fragments — of minimum total
size whose refinement is dependency preserving.  The paper proves the
decision problem NP-hard (from HITTING SET) and defers algorithms to a
later report; we provide both:

* :func:`minimum_refinement` — an exact search enumerating augmentations by
  increasing size (feasible for the schema/CFD sizes of Section V; the
  greedy solution bounds the search depth);
* :func:`greedy_refinement` — a set-cover-style heuristic: repeatedly make
  one unpreserved CFD fully local at the fragment where that costs the
  fewest attributes, preferring additions shared by many unpreserved CFDs.

Only attributes occurring in Σ are candidates: an attribute no CFD mentions
can never influence dependency preservation.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from ..core import CFD
from .preservation import is_dependency_preserving, unpreserved_cfds
from .vertical import VerticalPartition


def _candidate_moves(
    partition: VerticalPartition, sigma: Sequence[CFD]
) -> list[tuple[str, str]]:
    """All useful (fragment, attribute) additions."""
    sigma_attrs = {attr for cfd in sigma for attr in cfd.attributes}
    moves = []
    for name in partition.names:
        present = set(partition.attributes_of(name))
        moves.extend(
            (name, attr) for attr in sorted(sigma_attrs - present)
        )
    return moves


def _apply_moves(
    partition: VerticalPartition, moves: Iterable[tuple[str, str]]
) -> VerticalPartition:
    augmentation: dict[str, list[str]] = {}
    for name, attr in moves:
        augmentation.setdefault(name, []).append(attr)
    return partition.refine(augmentation)


def augmentation_size(augmentation: Mapping[str, Sequence[str]]) -> int:
    """``|Z|``: the total number of added attributes."""
    return sum(len(attrs) for attrs in augmentation.values())


def greedy_refinement(
    partition: VerticalPartition, sigma: Iterable[CFD]
) -> dict[str, list[str]]:
    """A preserving augmentation via greedy covering (not always minimum).

    Strategy: while some CFD is unpreserved, consider making each
    unpreserved CFD local at each fragment; take the move-set with the best
    (CFDs-made-local / attributes-added) ratio, breaking ties toward fewer
    attributes.  Terminates because covering every CFD somewhere is always
    preserving.
    """
    sigma = list(sigma)
    current = partition
    augmentation: dict[str, list[str]] = {}

    while True:
        failing = unpreserved_cfds(current, sigma)
        if not failing:
            return augmentation
        best_moves: list[tuple[str, str]] | None = None
        best_score = None
        for name in current.names:
            present = set(current.attributes_of(name))
            for cfd in failing:
                needed = [a for a in cfd.attributes if a not in present]
                if not needed:
                    continue
                # How many failing CFDs does this move-set make local here?
                grown = present | set(needed)
                covered = sum(
                    1
                    for other in failing
                    if all(a in grown for a in other.attributes)
                )
                score = (covered / len(needed), -len(needed))
                if best_score is None or score > best_score:
                    best_score = score
                    best_moves = [(name, a) for a in needed]
        if best_moves is None:  # every failing CFD already local somewhere?
            raise AssertionError(
                "no applicable move although CFDs remain unpreserved"
            )
        for name, attr in best_moves:
            augmentation.setdefault(name, []).append(attr)
        current = _apply_moves(partition, [
            (name, attr)
            for name, attrs in augmentation.items()
            for attr in attrs
        ])


def minimum_refinement(
    partition: VerticalPartition,
    sigma: Iterable[CFD],
    max_size: int | None = None,
) -> dict[str, list[str]]:
    """A minimum-size preserving augmentation (exact, exponential search).

    Enumerates candidate move subsets by increasing total size; the greedy
    solution caps the depth, so the search always terminates with a
    certificate of minimality.  ``max_size`` optionally lowers the cap
    (raises ``ValueError`` if no preserving augmentation exists within it).
    """
    sigma = list(sigma)
    if is_dependency_preserving(partition, sigma):
        return {}

    greedy = greedy_refinement(partition, sigma)
    cap = augmentation_size(greedy)
    if max_size is not None:
        cap = min(cap, max_size)

    moves = _candidate_moves(partition, sigma)
    for size in range(1, cap):
        for combo in itertools.combinations(moves, size):
            refined = _apply_moves(partition, combo)
            if is_dependency_preserving(refined, sigma):
                augmentation: dict[str, list[str]] = {}
                for name, attr in combo:
                    augmentation.setdefault(name, []).append(attr)
                return augmentation
    if max_size is not None and cap < augmentation_size(greedy):
        raise ValueError(
            f"no preserving augmentation of size <= {max_size} exists"
        )
    return greedy
