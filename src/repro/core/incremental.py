"""Incremental violation detection: maintain ``Vioπ(Σ, D)`` across updates.

The paper's second headline contribution, next to one-shot distributed
detection, is *incremental* detection: when ``D`` receives a batch of
inserted/deleted tuples, the violations of Σ should be maintained by
inspecting only the delta and the affected σ groups — never by rescanning
``D``.  This module is the centralized half of that claim (the
distributed half lives in :mod:`repro.detect.incremental`):

* a :class:`ViolationDelta` — the violations and violating tuple keys a
  batch *added* and *removed*;
* an :class:`IncrementalDetector`, which wraps a compiled
  :class:`~repro.core.fused.FusedDetector` and caches per-normal-form
  state between updates:

  - **constant forms** keep nothing but the compiled plan: a single tuple
    witnesses (or stops witnessing) a constant violation on its own, so a
    batch folds in O(|ΔD|) — inserted rows count hits in, deleted rows
    count them back out (:class:`ConstantFolds`);
  - **variable forms** keep, per σ-matched ``X`` group, the multiset of
    RHS combinations and of member tuple keys
    (:class:`VariableGroupState`).  A batch touches only the groups its
    rows fall into; a group flips between clean and conflicting exactly
    when its count of distinct RHS combinations crosses two.

  Both feed shared :class:`TransitionCounter`\\ s — multisets of
  violations/keys whose zero crossings *are* the :class:`ViolationDelta`
  (the same violation witnessed by two forms, or the same key by two
  rows, only disappears when the last witness does).

Engine semantics follow the rest of the library: ``reference`` recomputes
the full report per update and diffs it — the executable spec the
property suites compare against; ``fused`` and ``fused-numpy`` run true
delta folds, with the numpy engine vectorizing the constant-form code
tests over the batch.  Updates arrive either as
:class:`~repro.relational.delta.DeltaRelation` versions (``apply``) or as
explicit row batches (``update``, which builds the versions itself).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from ..relational import Relation, column_store, numpy_enabled
from .cfd import CFD
from .detection import ENGINES, detect_violations_reference
from .fused import (
    FusedDetector,
    _compile_constant,
    _constant_hits_numpy,
    _constant_hits_python,
    _project_rows,
)
from .normalize import ConstantCFD, VariableCFD, pattern_index
from .violations import Violation, ViolationReport


class ViolationDelta:
    """What one update batch changed: violations/keys added and removed.

    Both sides are plain :class:`ViolationReport`\\ s, so delta consumers
    (dashboards, downstream repair queues) reuse the ordinary report API.
    """

    __slots__ = ("added", "removed")

    def __init__(
        self,
        added: ViolationReport | None = None,
        removed: ViolationReport | None = None,
    ) -> None:
        self.added = added if added is not None else ViolationReport()
        self.removed = removed if removed is not None else ViolationReport()

    def __bool__(self) -> bool:  # truthiness = "something changed"
        return bool(
            self.added.violations
            or self.removed.violations
            or self.added.tuple_keys
            or self.removed.tuple_keys
        )

    def __repr__(self) -> str:
        return (
            f"ViolationDelta(+{len(self.added)} / -{len(self.removed)} Vioπ, "
            f"+{len(self.added.tuple_keys)} / "
            f"-{len(self.removed.tuple_keys)} keys)"
        )


class TransitionCounter:
    """A multiset that captures zero crossings per update batch.

    Counts are witness counts — how many (form, row) or (form, group)
    facts currently assert an item.  ``begin`` opens a batch; every
    ``add`` snapshots the item's pre-batch positivity the first time the
    batch touches it; ``commit`` reports the items whose positivity
    actually changed (an item bumped up and back down within one batch
    appears in neither list).
    """

    __slots__ = ("counts", "_baseline")

    def __init__(self) -> None:
        self.counts: dict = {}
        self._baseline: dict | None = None

    def begin(self) -> None:
        self._baseline = {}

    def add(self, item, n: int = 1) -> None:
        count = self.counts.get(item, 0)
        if self._baseline is not None and item not in self._baseline:
            self._baseline[item] = count > 0
        count += n
        if count > 0:
            self.counts[item] = count
        elif count == 0:
            self.counts.pop(item, None)
        else:
            raise ValueError(
                f"witness count of {item!r} fell below zero: the update "
                "removed rows that were never inserted"
            )

    def commit(self) -> tuple[list, list]:
        """Close the batch; return (newly positive, newly gone) items."""
        added: list = []
        removed: list = []
        for item, was_positive in self._baseline.items():
            is_positive = item in self.counts
            if is_positive and not was_positive:
                added.append(item)
            elif was_positive and not is_positive:
                removed.append(item)
        self._baseline = None
        return added, removed

    def positive(self):
        """All items with a positive count (counts are never kept at 0)."""
        return self.counts.keys()


def commit_counters(
    violations: TransitionCounter, keys: TransitionCounter
) -> ViolationDelta:
    """Close both counters' batches into one :class:`ViolationDelta`."""
    v_added, v_removed = violations.commit()
    k_added, k_removed = keys.commit()
    return ViolationDelta(
        added=ViolationReport(v_added, k_added),
        removed=ViolationReport(v_removed, k_removed),
    )


def counters_report(
    violations: TransitionCounter, keys: TransitionCounter
) -> ViolationReport:
    """The counters' current positive entries as a fresh report copy."""
    return ViolationReport(violations.positive(), keys.positive())


# -- constant normal forms ----------------------------------------------------


class ConstantFolds:
    """Delta folds for a set of constant normal forms.

    Stateless between batches (a constant violation is a per-row fact):
    folding a batch compiles each form against the *batch's own* columnar
    store — O(|ΔD|), reusing the fused engine's plan compiler and both
    fold implementations — and pushes ``sign``-ed witness counts into the
    shared counters.
    """

    __slots__ = ("constants", "collect_tuples")

    def __init__(
        self, constants: Sequence[ConstantCFD], collect_tuples: bool = True
    ) -> None:
        self.constants = list(constants)
        self.collect_tuples = collect_tuples

    def fold(
        self,
        relation: Relation,
        sign: int,
        violations: TransitionCounter,
        keys: TransitionCounter,
        vectorize: bool = False,
    ) -> None:
        """Fold every row of ``relation`` (a batch) with weight ``sign``."""
        rows = relation.rows
        if not rows or not self.constants:
            return
        store = column_store(relation)
        schema = relation.schema
        key_pos = schema.key_positions()
        for constant in self.constants:
            plan = _compile_constant(store, constant)
            if plan is None:
                continue
            if vectorize:
                hits = _constant_hits_numpy(*plan).tolist()
            else:
                hits = _constant_hits_python(*plan)
            if not hits:
                continue
            report_pos = schema.positions(constant.report_lhs)
            for i in hits:
                row = rows[i]
                violations.add(
                    Violation(
                        cfd=constant.source,
                        lhs_attributes=constant.report_lhs,
                        lhs_values=tuple(row[p] for p in report_pos),
                    ),
                    sign,
                )
                if self.collect_tuples:
                    keys.add(tuple(row[p] for p in key_pos), sign)


# -- variable normal forms ----------------------------------------------------


class _Group:
    """One σ-matched ``X`` group's live state."""

    __slots__ = ("y_counts", "key_counts", "conflicting")

    def __init__(self) -> None:
        self.y_counts: dict[tuple, int] = {}
        self.key_counts: dict[tuple, int] = {}
        self.conflicting = False


def _bump(counts: dict, key, n: int) -> None:
    count = counts.get(key, 0) + n
    if count > 0:
        counts[key] = count
    elif count == 0:
        del counts[key]
    else:
        raise ValueError("deleted a row that is not in the group")


class VariableGroupState:
    """Cached GROUP-BY state of one variable normal form.

    ``groups[x]`` exists for every σ-matched ``X`` combination with at
    least one row and holds the multiset of RHS combinations and member
    keys.  A batch touches only the groups of its own rows; conflict
    status is maintained per row so a group's member keys enter/leave the
    shared key counter exactly when the group flips.
    """

    __slots__ = ("variable", "collect_tuples", "groups", "_match_cache", "_index")

    #: σ-match memo bound — one entry per distinct ``X`` ever seen, so a
    #: session under high-cardinality churn must not grow it forever;
    #: clearing at the cap just re-probes the (cheap, memoized) σ trie.
    MATCH_CACHE_CAP = 65536

    def __init__(self, variable: VariableCFD, collect_tuples: bool = True) -> None:
        self.variable = variable
        self.collect_tuples = collect_tuples
        self.groups: dict[tuple, _Group] = {}
        self._index = pattern_index(variable.patterns)
        self._match_cache: dict[tuple, bool] = {}

    def _violation(self, x: tuple) -> Violation:
        return Violation(
            cfd=self.variable.source,
            lhs_attributes=self.variable.lhs,
            lhs_values=x,
        )

    def fold(
        self,
        schema,
        rows: Sequence[tuple],
        sign: int,
        violations: TransitionCounter,
        keys: TransitionCounter,
    ) -> None:
        """Fold a batch's rows into the group states, row by row.

        Projections run through C-speed ``itemgetter`` maps and σ is
        probed once per *distinct* ``X`` (memoized across batches), so the
        per-row residue is a handful of dictionary bumps — the whole fold
        is proportional to the batch, never to ``D``.
        """
        if not rows:
            return
        ids = range(len(rows))
        xs = _project_rows(rows, ids, schema.positions(self.variable.lhs))
        ys = _project_rows(rows, ids, schema.positions(self.variable.rhs))
        row_keys = _project_rows(rows, ids, schema.key_positions())
        match_cache = self._match_cache
        if len(match_cache) > self.MATCH_CACHE_CAP:
            match_cache.clear()
        matches_any = self._index.matches_any
        handle = self._insert if sign > 0 else self._delete
        for x, y, key in zip(xs, ys, row_keys):
            hit = match_cache.get(x)
            if hit is None:
                hit = match_cache[x] = matches_any(x)
            if hit:
                handle(x, y, key, violations, keys)

    def _insert(self, x, y, key, violations, keys) -> None:
        group = self.groups.get(x)
        if group is None:
            group = self.groups[x] = _Group()
        _bump(group.y_counts, y, 1)
        _bump(group.key_counts, key, 1)
        if group.conflicting:
            if self.collect_tuples:
                keys.add(key, 1)
        elif len(group.y_counts) >= 2:
            group.conflicting = True
            violations.add(self._violation(x), 1)
            if self.collect_tuples:
                for member, count in group.key_counts.items():
                    keys.add(member, count)

    def _delete(self, x, y, key, violations, keys) -> None:
        group = self.groups.get(x)
        if group is None:
            raise ValueError(
                f"deleted a row of X group {x!r} that is not in the state"
            )
        if group.conflicting and self.collect_tuples:
            keys.add(key, -1)
        _bump(group.y_counts, y, -1)
        _bump(group.key_counts, key, -1)
        if group.conflicting and len(group.y_counts) < 2:
            group.conflicting = False
            violations.add(self._violation(x), -1)
            if self.collect_tuples:
                for member, count in group.key_counts.items():
                    keys.add(member, -count)
        if not group.y_counts:
            del self.groups[x]


# -- the detector -------------------------------------------------------------


class IncrementalDetector:
    """``Vioπ(Σ, D)`` maintained across insert/delete batches.

    Compile once, :meth:`attach` to a relation (one full fold building
    the cached state), then :meth:`apply` successive
    :class:`~repro.relational.delta.DeltaRelation` versions — or
    :meth:`update` with explicit batches — each in time proportional to
    the delta and the σ groups it touches.  :attr:`report` is always the
    full current report; every ``apply``/``update`` additionally returns
    the :class:`ViolationDelta` of that batch.

    ``engine`` follows :func:`~repro.core.detection.detect_violations`:
    ``reference`` (full recompute + diff per update — the executable
    spec), ``fused``, ``fused-numpy``, or ``auto``/``None`` (the
    ``REPRO_ENGINE`` environment, then numpy availability, decide —
    resolved at :meth:`attach` time, when the state layout is fixed).
    """

    def __init__(
        self,
        cfds: CFD | Iterable[CFD],
        collect_tuples: bool = True,
        engine: str | None = None,
    ) -> None:
        self._fused = FusedDetector(cfds)
        self.cfds = self._fused.cfds
        self.collect_tuples = collect_tuples
        self._requested_engine = engine
        self.engine: str | None = None
        self.relation: Relation | None = None
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        self._constants = ConstantFolds(self._fused._constants, collect_tuples)
        self._variables: list[VariableGroupState] = []
        self._reference_report: ViolationReport | None = None

    # -- engine resolution ------------------------------------------------

    def _resolve_engine(self) -> str:
        engine = self._requested_engine
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE", "auto")
        if engine == "auto":
            return "fused-numpy" if numpy_enabled() else "fused"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown detection engine {engine!r}; "
                f"use one of {', '.join(ENGINES)} (or 'auto')"
            )
        if engine == "fused-numpy" and not numpy_enabled():
            raise RuntimeError(
                "the fused-numpy engine needs numpy (install the 'fast' "
                "extra); numpy is not importable or was disabled via "
                "REPRO_NUMPY=0"
            )
        return engine

    @property
    def _vectorize(self) -> bool:
        return self.engine == "fused-numpy"

    # -- lifecycle --------------------------------------------------------

    def attach(self, relation: Relation) -> ViolationReport:
        """Build (or rebuild) the cached state with one full fold of ``D``."""
        self.engine = self._resolve_engine()
        self.relation = relation
        if self.engine == "reference":
            self._reference_report = detect_violations_reference(
                relation, self.cfds, self.collect_tuples
            )
            return self.report
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        self._variables = [
            VariableGroupState(variable, self.collect_tuples)
            for variable, _index in self._fused._variables
        ]
        self._fold(relation, 1)
        return self.report

    def _fold(self, batch: Relation, sign: int) -> None:
        self._constants.fold(
            batch, sign, self._violations, self._keys, self._vectorize
        )
        for state in self._variables:
            state.fold(
                batch.schema, batch.rows, sign, self._violations, self._keys
            )

    def apply(self, relation: Relation) -> ViolationDelta:
        """Advance to ``relation``, folding only its recorded delta.

        ``relation`` must be a :class:`~repro.relational.delta.DeltaRelation`
        (or a chain of them) rooted at the currently attached version —
        anything else raises, because the provenance chain is the only
        thing that makes O(|ΔD|) maintenance sound.
        """
        if self.relation is None:
            raise ValueError("attach() a relation before applying updates")
        chain: list[Relation] = []
        version = relation
        while version is not self.relation:
            parent = getattr(version, "delta_parent", None)
            if parent is None:
                raise ValueError(
                    "apply() needs a DeltaRelation chained from the "
                    "attached version; got an unrelated relation "
                    "(use attach() to rebuild from scratch)"
                )
            chain.append(version)
            version = parent
        chain.reverse()
        if self.engine == "reference":
            self.relation = relation
            return self._reference_rediff()
        self._violations.begin()
        self._keys.begin()
        for version in chain:
            if version.delta_deleted:
                self._fold(
                    Relation(
                        version.schema, list(version.delta_deleted), copy=False
                    ),
                    -1,
                )
            if version.delta_inserted:
                self._fold(
                    Relation(
                        version.schema, list(version.delta_inserted), copy=False
                    ),
                    1,
                )
        self.relation = relation
        return self._commit()

    def update(
        self,
        inserted: Iterable[Sequence[object]] = (),
        deleted=(),
    ) -> ViolationDelta:
        """Convenience: build the delta versions and :meth:`apply` them.

        ``deleted`` (keys or a predicate, applied first) then
        ``inserted`` — each step produces a
        :class:`~repro.relational.delta.DeltaRelation`; the new current
        version is :attr:`relation` afterwards.  The versions minted here
        are owned by the detector, so their provenance is pruned once
        folded (:func:`~repro.relational.delta.prune_delta_history`) —
        session memory stays bounded however many batches arrive.  Use
        :meth:`apply` directly to keep ownership of the chain.
        """
        from ..relational.delta import prune_delta_history

        if self.relation is None:
            raise ValueError("attach() a relation before applying updates")
        version = self.relation
        is_predicate = callable(deleted) or hasattr(deleted, "evaluate")
        if not is_predicate:
            deleted = list(deleted)
        if is_predicate or deleted:
            version = version.delete(deleted)
        inserted = list(inserted)
        if inserted:
            version = version.insert(inserted)
        if version is self.relation:
            return ViolationDelta()
        delta = self.apply(version)
        # prune oldest-first so each step can still derive its key array
        # from the (already materialized) link below it
        prune_delta_history(version.delta_parent)
        prune_delta_history(version)
        return delta

    # -- results ----------------------------------------------------------

    def _commit(self) -> ViolationDelta:
        return commit_counters(self._violations, self._keys)

    def _reference_rediff(self) -> ViolationDelta:
        previous = self._reference_report
        current = detect_violations_reference(
            self.relation, self.cfds, self.collect_tuples
        )
        self._reference_report = current
        return ViolationDelta(
            added=ViolationReport(
                current.violations - previous.violations,
                current.tuple_keys - previous.tuple_keys,
            ),
            removed=ViolationReport(
                previous.violations - current.violations,
                previous.tuple_keys - current.tuple_keys,
            ),
        )

    @property
    def report(self) -> ViolationReport:
        """The full current report (a fresh copy, safe to merge/mutate)."""
        if self.engine == "reference":
            source = self._reference_report or ViolationReport()
            return ViolationReport(source.violations, source.tuple_keys)
        return counters_report(self._violations, self._keys)

    def __repr__(self) -> str:
        n = len(self.relation) if self.relation is not None else 0
        return (
            f"IncrementalDetector({len(self.cfds)} CFDs, engine="
            f"{self.engine or 'unresolved'}, {n} tuples attached)"
        )


def incremental_detect(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    engine: str | None = None,
) -> IncrementalDetector:
    """Attach a fresh :class:`IncrementalDetector` to ``relation``."""
    detector = IncrementalDetector(cfds, collect_tuples, engine)
    detector.attach(relation)
    return detector
