"""Incremental violation detection: maintain ``Vioπ(Σ, D)`` across updates.

The paper's second headline contribution, next to one-shot distributed
detection, is *incremental* detection: when ``D`` receives a batch of
inserted/deleted tuples, the violations of Σ should be maintained by
inspecting only the delta and the affected σ groups — never by rescanning
``D``.  This module is the centralized half of that claim (the
distributed half lives in :mod:`repro.detect.incremental`):

* a :class:`ViolationDelta` — the violations and violating tuple keys a
  batch *added* and *removed*;
* an :class:`IncrementalDetector`, which wraps a compiled
  :class:`~repro.core.fused.FusedDetector` and caches per-normal-form
  state between updates:

  - **constant forms** keep nothing but the compiled plan: a single tuple
    witnesses (or stops witnessing) a constant violation on its own, so a
    batch folds in O(|ΔD|) — inserted rows count hits in, deleted rows
    count them back out (:class:`ConstantFolds`);
  - **variable forms** keep, per σ-matched ``X`` group, the multiset of
    RHS combinations and of member tuple keys
    (:class:`VariableGroupState`).  A batch touches only the groups its
    rows fall into; a group flips between clean and conflicting exactly
    when its count of distinct RHS combinations crosses two.

  Both feed shared :class:`TransitionCounter`\\ s — multisets of
  violations/keys whose zero crossings *are* the :class:`ViolationDelta`
  (the same violation witnessed by two forms, or the same key by two
  rows, only disappears when the last witness does).

Engine semantics follow the rest of the library: ``reference`` recomputes
the full report per update and diffs it — the executable spec the
property suites compare against; ``fused`` and ``fused-numpy`` run true
delta folds.  The numpy engine vectorizes both form kinds over the
batch: constant-form code tests become boolean masks, and the
variable-form fold encodes the batch once through its columnar key
columns and scatters signed counts per distinct ``(x_code, y_code)``
combination instead of flipping multisets row by row
(:meth:`VariableGroupState.fold`).  Updates arrive either as
:class:`~repro.relational.delta.DeltaRelation` versions (``apply``) or as
explicit row batches (``update``, which builds the versions itself).
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from operator import itemgetter
from typing import Iterable, Sequence

from ..relational import Relation, column_store, numpy_enabled
from .cfd import CFD
from .detection import ENGINES, detect_violations_reference
from .fused import (
    FusedDetector,
    _compile_constant,
    _constant_hits_numpy,
    _constant_hits_python,
    _np,
    _project_rows,
    group_segments,
)
from .normalize import ConstantCFD, VariableCFD, pattern_index
from .violations import Violation, ViolationReport


class ViolationDelta:
    """What one update batch changed: violations/keys added and removed.

    Both sides are plain :class:`ViolationReport`\\ s, so delta consumers
    (dashboards, downstream repair queues) reuse the ordinary report API.
    Deltas built by the counters (:func:`commit_counters`) materialize
    those reports lazily — a session absorbing batches in a tight loop
    never pays for delta reports nobody reads.
    """

    __slots__ = ("_added", "_removed", "_raw", "_wrap")

    def __init__(
        self,
        added: ViolationReport | None = None,
        removed: ViolationReport | None = None,
    ) -> None:
        self._added = added if added is not None else ViolationReport()
        self._removed = removed if removed is not None else ViolationReport()
        self._raw = None
        self._wrap = False

    @classmethod
    def deferred(cls, v_added, k_added, v_removed, k_removed, wrap_keys):
        """A delta over raw counter output, materialized on first access."""
        delta = cls.__new__(cls)
        delta._added = None
        delta._removed = None
        delta._raw = (v_added, k_added, v_removed, k_removed)
        delta._wrap = wrap_keys
        return delta

    def _materialize(self) -> None:
        v_added, k_added, v_removed, k_removed = self._raw
        self._added = ViolationReport(v_added, _wrap(k_added, self._wrap))
        self._removed = ViolationReport(
            v_removed, _wrap(k_removed, self._wrap)
        )
        self._raw = None

    @property
    def added(self) -> ViolationReport:
        if self._added is None:
            self._materialize()
        return self._added

    @property
    def removed(self) -> ViolationReport:
        if self._removed is None:
            self._materialize()
        return self._removed

    def __bool__(self) -> bool:  # truthiness = "something changed"
        if self._raw is not None:
            return any(self._raw)
        return bool(
            self.added.violations
            or self.removed.violations
            or self.added.tuple_keys
            or self.removed.tuple_keys
        )

    def __repr__(self) -> str:
        return (
            f"ViolationDelta(+{len(self.added)} / -{len(self.removed)} Vioπ, "
            f"+{len(self.added.tuple_keys)} / "
            f"-{len(self.removed.tuple_keys)} keys)"
        )


class TransitionCounter:
    """A multiset that captures zero crossings per update batch.

    Counts are witness counts — how many (form, row) or (form, group)
    facts currently assert an item.  ``begin`` opens a batch; every
    ``add`` toggles the item in a *crossing set* whenever its positivity
    flips, so an item's membership after the batch records whether it
    crossed zero an odd number of times — which is exactly "its
    positivity changed".  ``commit`` splits the set by current sign (an
    item bumped up and back down within one batch appears in neither
    list).  Tracking only actual crossings keeps both ``add`` and
    ``commit`` proportional to what changed, not to what was touched —
    the property the vectorized delta folds lean on.

    Batches are **transactional**: while one is open, the first touch of
    each item records its prior count in an undo log, so
    :meth:`rollback` restores the exact pre-batch multiset in
    O(|touched|) — never a full copy of the counts (which would undo the
    delta engine's complexity claim).
    """

    __slots__ = ("counts", "_went_up", "_went_down", "_undo")

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self._went_up: set | None = None
        self._went_down: set | None = None
        self._undo: dict | None = None

    def begin(self) -> None:
        self._went_up = set()
        self._went_down = set()
        self._undo = {}

    def _cross(self, item, up: bool) -> None:
        if up:
            if item in self._went_down:
                self._went_down.discard(item)
            else:
                self._went_up.add(item)
        else:
            if item in self._went_up:
                self._went_up.discard(item)
            else:
                self._went_down.add(item)

    def add(self, item, n: int = 1) -> None:
        count = self.counts.get(item, 0)
        undo = self._undo
        if undo is not None and item not in undo:
            undo[item] = count
        new = count + n
        if new > 0:
            self.counts[item] = new
        elif new == 0:
            self.counts.pop(item, None)
        else:
            raise ValueError(
                f"witness count of {item!r} fell below zero: the update "
                "removed rows that were never inserted"
            )
        if self._went_up is not None and (count > 0) != (new > 0):
            self._cross(item, new > 0)

    def add_bulk(self, items: Iterable, sign: int) -> None:
        """Bulk single-sign :meth:`add` — the per-row hot path of the
        vectorized folds, built from C-level primitives.

        ``sign > 0``: the crossers are exactly the items absent before
        the bulk (one set comprehension), the counting is one
        :meth:`Counter.update`, and the crossing sets advance with whole-
        set arithmetic.  ``sign < 0`` mirrors it with
        :meth:`Counter.subtract` plus a per-distinct sweep that purges
        zeros (the counts dict never stores non-positive entries) and
        spots underflows.
        """
        counts = self.counts
        undo = self._undo
        if sign > 0:
            crossers = {item for item in items if item not in counts}
            if undo is not None:
                for item in items:
                    if item not in undo:
                        undo[item] = counts.get(item, 0)
            counts.update(items)
        else:
            distinct = set(items)
            if undo is not None:
                for item in distinct:
                    if item not in undo:
                        undo[item] = counts.get(item, 0)
            counts.subtract(items)
            if min(map(counts.__getitem__, distinct), default=1) < 0:
                bad = next(k for k in distinct if counts[k] < 0)
                raise ValueError(
                    f"witness count of {bad!r} fell below zero: the "
                    "update removed rows that were never inserted"
                )
            crossers = {item for item in distinct if not counts[item]}
            for item in crossers:
                del counts[item]
        if self._went_up is None or not crossers:
            return
        if sign > 0:
            returning = crossers & self._went_down
            self._went_down -= returning
            self._went_up |= crossers - returning
        else:
            returning = crossers & self._went_up
            self._went_up -= returning
            self._went_down |= crossers - returning

    def commit(self) -> tuple[list, list]:
        """Close the batch; return (newly positive, newly gone) items."""
        added = list(self._went_up)
        removed = list(self._went_down)
        self._went_up = None
        self._went_down = None
        self._undo = None
        return added, removed

    def rollback(self) -> None:
        """Restore the exact pre-batch multiset; close the batch.

        O(|items touched since begin|).  A no-op when no batch is open,
        so a failed operation can always call it unconditionally.
        """
        undo = self._undo
        self._undo = None
        self._went_up = None
        self._went_down = None
        if undo is None:
            return
        counts = self.counts
        for item, prior in undo.items():
            if prior > 0:
                counts[item] = prior
            else:
                counts.pop(item, None)

    def positive(self):
        """All items with a positive count (counts are never kept at 0)."""
        return self.counts.keys()


def _project_keys(rows: Sequence[tuple], ids, key_pos: tuple[int, ...]):
    """Key projections of the given rows — *raw* values for
    single-attribute keys.

    The key counters run hottest of all the incremental state (every
    violating-row event hashes a key), so for the overwhelmingly common
    single-attribute key they carry the bare value instead of a 1-tuple —
    no per-row tuple allocation, cheaper hashing.  The report boundary
    (:func:`commit_counters` / :func:`counters_report` with
    ``wrap_keys=True``) restores the tuple form the
    :class:`ViolationReport` contract requires.
    """
    if len(key_pos) == 1:
        return map(itemgetter(key_pos[0]), map(rows.__getitem__, ids))
    return _project_rows(rows, ids, key_pos)


def _wrap(keys_iterable, wrap_keys: bool):
    if wrap_keys:
        return [(key,) for key in keys_iterable]
    return keys_iterable


def commit_counters(
    violations: TransitionCounter,
    keys: TransitionCounter,
    wrap_keys: bool = False,
) -> ViolationDelta:
    """Close both counters' batches into one :class:`ViolationDelta`.

    ``wrap_keys`` restores 1-tuple form for key items the folds carried
    raw (single-attribute keys, see :func:`_project_keys`).  The delta's
    reports materialize lazily; the key crossing sets transfer by
    reference, so closing a batch is O(|violation crossings|), not
    O(|key crossings|).
    """
    v_added, v_removed = violations.commit()
    k_added = keys._went_up
    k_removed = keys._went_down
    keys._went_up = None
    keys._went_down = None
    keys._undo = None
    return ViolationDelta.deferred(
        v_added, k_added, v_removed, k_removed, wrap_keys
    )


def counters_report(
    violations: TransitionCounter,
    keys: TransitionCounter,
    wrap_keys: bool = False,
) -> ViolationReport:
    """The counters' current positive entries as a fresh report copy."""
    return ViolationReport(
        violations.positive(), _wrap(keys.positive(), wrap_keys)
    )


# -- constant normal forms ----------------------------------------------------


class ConstantFolds:
    """Delta folds for a set of constant normal forms.

    Stateless between batches (a constant violation is a per-row fact):
    folding a batch compiles each form against the *batch's own* columnar
    store — O(|ΔD|), reusing the fused engine's plan compiler and both
    fold implementations — and pushes ``sign``-ed witness counts into the
    shared counters.
    """

    __slots__ = ("constants", "collect_tuples")

    def __init__(
        self, constants: Sequence[ConstantCFD], collect_tuples: bool = True
    ) -> None:
        self.constants = list(constants)
        self.collect_tuples = collect_tuples

    def fold(
        self,
        relation: Relation,
        sign: int,
        violations: TransitionCounter,
        keys: TransitionCounter,
        vectorize: bool = False,
    ) -> None:
        """Fold every row of ``relation`` (a batch) with weight ``sign``."""
        rows = relation.rows
        if not rows or not self.constants:
            return
        store = column_store(relation)
        schema = relation.schema
        key_pos = schema.key_positions()
        for constant in self.constants:
            plan = _compile_constant(store, constant)
            if plan is None:
                continue
            if vectorize:
                hits = _constant_hits_numpy(*plan).tolist()
            else:
                hits = _constant_hits_python(*plan)
            if not hits:
                continue
            report_pos = schema.positions(constant.report_lhs)
            for values in _project_rows(rows, hits, report_pos):
                violations.add(
                    Violation(
                        cfd=constant.source,
                        lhs_attributes=constant.report_lhs,
                        lhs_values=values,
                    ),
                    sign,
                )
            if self.collect_tuples:
                keys.add_bulk(
                    list(_project_keys(rows, hits, key_pos)), sign
                )


# -- variable normal forms ----------------------------------------------------


class _Group:
    """One σ-matched ``X`` group's live state."""

    __slots__ = ("y_counts", "key_counts", "conflicting")

    def __init__(self) -> None:
        self.y_counts: dict[tuple, int] = {}
        self.key_counts: dict[tuple, int] = {}
        self.conflicting = False


def _bump(counts: dict, key, n: int) -> None:
    count = counts.get(key, 0) + n
    if count > 0:
        counts[key] = count
    elif count == 0:
        del counts[key]
    else:
        raise ValueError("deleted a row that is not in the group")


class _CodeGroup:
    """One σ-matched ``X`` group in the vectorized (code-indexed) state.

    ``y_counts`` maps RHS *codes* to row counts.  Member keys are kept as
    a compacted multiset plus two append-only event logs (``adds`` /
    ``dels``) — the per-row residue of a batch is then a C-level
    ``list.extend``, and the logs fold into the multiset only when a
    conflict flip actually needs the membership (or the logs outgrow it).
    """

    __slots__ = ("y_counts", "key_counts", "adds", "dels", "conflicting")

    def __init__(self) -> None:
        self.y_counts: dict[int, int] = {}
        self.key_counts: dict = {}
        self.adds: list = []
        self.dels: list = []
        self.conflicting = False

    def membership(self) -> dict:
        """The compacted member-key multiset (folds the event logs in)."""
        if self.adds or self.dels:
            counter = Counter(self.key_counts)
            counter.update(self.adds)
            if self.dels:
                counter.subtract(self.dels)
            cleaned: dict = {}
            for key, count in counter.items():
                if count > 0:
                    cleaned[key] = count
                elif count < 0:
                    raise ValueError(
                        "deleted a row that is not in the group"
                    )
            self.key_counts = cleaned
            self.adds = []
            self.dels = []
        return self.key_counts


class VariableGroupState:
    """Cached GROUP-BY state of one variable normal form.

    ``groups[x]`` exists for every σ-matched ``X`` combination with at
    least one row and holds the multiset of RHS combinations and member
    keys.  A batch touches only the groups of its own rows; conflict
    status is maintained per row so a group's member keys enter/leave the
    shared key counter exactly when the group flips.
    """

    __slots__ = (
        "variable",
        "collect_tuples",
        "groups",
        "_match_cache",
        "_index",
        "_x_code_of",
        "_x_values",
        "_x_matched",
        "_x_matched_np",
        "_y_code_of",
        "_y_values",
        "_code_groups",
        "_undo",
    )

    #: σ-match memo bound — one entry per distinct ``X`` ever seen, so a
    #: session under high-cardinality churn must not grow it forever;
    #: clearing at the cap just re-probes the (cheap, memoized) σ trie.
    MATCH_CACHE_CAP = 65536

    def __init__(self, variable: VariableCFD, collect_tuples: bool = True) -> None:
        self.variable = variable
        self.collect_tuples = collect_tuples
        self.groups: dict[tuple, _Group] = {}
        self._index = pattern_index(variable.patterns)
        self._match_cache: dict[tuple, bool] = {}
        # code-indexed state of the vectorized fold (engine fused-numpy):
        # append-only session dictionaries interning every distinct X / Y
        # projection ever seen, the σ verdict per X code, and the group
        # table keyed by (int) X code.  The list fold and the vectorized
        # fold never share a session (the engine is fixed at attach), so
        # only one of the two layouts is ever populated.
        self._x_code_of: dict[tuple, int] = {}
        self._x_values: list[tuple] = []
        self._x_matched: list[bool] = []
        self._x_matched_np = None
        self._y_code_of: dict = {}
        self._y_values: list = []
        self._code_groups: dict[int, _CodeGroup] = {}
        # transactional batches: group key -> pre-batch snapshot (None =
        # the group did not exist), recorded on first touch; see begin()
        self._undo: dict | None = None

    # -- transactional batches --------------------------------------------

    def begin(self) -> None:
        """Open a transactional batch: snapshot groups on first touch.

        A snapshot copies only the touched group's own dictionaries —
        O(|group|) per *touched* group, never a copy of the whole table —
        so a failed fold can :meth:`rollback` to the exact pre-batch
        state.  The session interning dictionaries (``_x_code_of`` …) are
        append-only and stay grown across a rollback: codes assigned
        during a doomed batch are simply never referenced again.
        """
        self._undo = {}

    def commit(self) -> None:
        """Close the batch, discarding its undo log."""
        self._undo = None

    def _snapshot(self, group):
        if group is None:
            return None
        if type(group) is _Group:
            return (
                dict(group.y_counts),
                dict(group.key_counts),
                group.conflicting,
            )
        return (
            dict(group.y_counts),
            dict(group.key_counts),
            list(group.adds),
            list(group.dels),
            group.conflicting,
        )

    def rollback(self) -> None:
        """Restore every touched group to its pre-batch snapshot.

        A no-op when no batch is open.  Groups created during the batch
        disappear; groups deleted during it come back; groups mutated in
        place get their tables swapped back to the snapshot copies.
        """
        undo = self._undo
        self._undo = None
        if undo is None:
            return
        for key, snap in undo.items():
            if snap is None:
                self.groups.pop(key, None)
                self._code_groups.pop(key, None)
            elif len(snap) == 3:
                group = self.groups.get(key)
                if group is None:
                    group = self.groups[key] = _Group()
                group.y_counts, group.key_counts, group.conflicting = snap
            else:
                group = self._code_groups.get(key)
                if group is None:
                    group = self._code_groups[key] = _CodeGroup()
                (
                    group.y_counts,
                    group.key_counts,
                    group.adds,
                    group.dels,
                    group.conflicting,
                ) = snap

    def _violation(self, x: tuple) -> Violation:
        return Violation(
            cfd=self.variable.source,
            lhs_attributes=self.variable.lhs,
            lhs_values=x,
        )

    def _code_violation(self, code: int) -> Violation:
        """The violation of one interned ``X`` code (single-attribute
        projections intern raw, so wrap them back here)."""
        x = self._x_values[code]
        if len(self.variable.lhs) == 1:
            x = (x,)
        return self._violation(x)

    def fold(
        self,
        batch: Relation,
        sign: int,
        violations: TransitionCounter,
        keys: TransitionCounter,
        vectorize: bool = False,
    ) -> None:
        """Fold one update batch into the group states.

        Two implementations of the same fold, selected by ``vectorize``
        exactly like the one-shot engine's folds:

        * the **list fold** (engine ``fused``) walks the batch row by
          row — projections through C-speed ``itemgetter`` maps, σ probed
          once per *distinct* ``X`` (memoized across batches), then a
          handful of dictionary bumps per row;
        * the **vectorized fold** (engine ``fused-numpy``) hands the
          batch to :meth:`fold_signed` as a single-sign stream.

        Either way the fold is proportional to the batch (and the state
        it touches), never to ``D``.
        """
        if not batch.rows:
            return
        if vectorize:
            self.fold_signed(
                batch.schema, [(batch.rows, sign)], violations, keys
            )
            return
        schema = batch.schema
        rows = batch.rows
        ids = range(len(rows))
        xs = _project_rows(rows, ids, schema.positions(self.variable.lhs))
        ys = _project_rows(rows, ids, schema.positions(self.variable.rhs))
        row_keys = _project_keys(rows, ids, schema.key_positions())
        match_cache = self._match_cache
        if len(match_cache) > self.MATCH_CACHE_CAP:
            match_cache.clear()
        matches_any = self._index.matches_any
        handle = self._insert if sign > 0 else self._delete
        for x, y, key in zip(xs, ys, row_keys):
            hit = match_cache.get(x)
            if hit is None:
                hit = match_cache[x] = matches_any(x)
            if hit:
                handle(x, y, key, violations, keys)

    def _intern_projections(self, batches, positions, code_of, values):
        """Code every batch row's projection through a session dictionary.

        The probe runs as one C-level ``map(dict.get)`` per batch
        (single-attribute projections probe the *raw* value — no tuple
        allocation); projections never seen before fall into the (rare,
        steady-state empty) miss loop, which appends them to the
        append-only decode list — codes assigned once stay valid for the
        session's lifetime, which is what lets the group table key by int
        code.  Returns the flat code list across all batches, aligned
        with the concatenated row stream, plus the freshly assigned codes.
        """
        single = len(positions) == 1
        getter = itemgetter(positions[0]) if single else None
        codes: list = []
        fresh: list[int] = []
        for rows, _sign in batches:
            if single:
                projected = map(getter, rows)
            else:
                projected = _project_rows(rows, range(len(rows)), positions)
            offset = len(codes)
            codes.extend(map(code_of.get, projected))
            if None in codes[offset:]:
                # miss loop: re-project lazily only for the gap rows
                gap = [
                    i
                    for i in range(offset, len(codes))
                    if codes[i] is None
                ]
                if single:
                    gap_values = (rows[i - offset][positions[0]] for i in gap)
                else:
                    gap_values = _project_rows(
                        rows, [i - offset for i in gap], positions
                    )
                for i, value in zip(gap, gap_values):
                    code = code_of.get(value)
                    if code is None:
                        code = len(values)
                        code_of[value] = code
                        values.append(value)
                        fresh.append(code)
                    codes[i] = code
        return codes, fresh

    def fold_signed(
        self,
        schema,
        batches: Sequence[tuple[Sequence[tuple], int]],
        violations: TransitionCounter,
        keys: TransitionCounter,
    ) -> None:
        """The vectorized delta fold: signed row streams → group tables.

        ``batches`` is a list of ``(rows, ±1)`` — typically one delete
        stream and one insert stream of the same update.  The whole
        stream is coded **once** through the state's append-only session
        dictionaries (one C-level ``dict.get`` map per projection — no
        per-batch columnar re-encode), σ is answered from the per-code
        verdict array, and one sort-based reduce over the mixed-radix
        ``(x_code, y_code)`` combination collapses the stream to a *net*
        signed count per distinct touched combination — a delete and a
        re-insert of the same combination cancel before they ever reach
        the group table.  The remaining Python work is per distinct
        touched group (conflict transitions from the aggregated counts)
        plus the member-key bookkeeping of those groups, which cannot
        compress below the rows because every row carries its own key.

        Folding a multi-step chain in one call is sound because multiset
        arithmetic commutes and the counters only observe the batch's
        endpoints; the one behavioural difference from replaying the
        steps is that an *invalid* delete cancelled by a matching insert
        in the same batch is no longer detected (the net is zero).
        """
        if _np is None:
            raise RuntimeError("the vectorized delta fold needs numpy")
        batches = [(rows, sign) for rows, sign in batches if rows]
        if not batches:
            return
        x_single = len(self.variable.lhs) == 1
        x_codes, fresh = self._intern_projections(
            batches,
            schema.positions(self.variable.lhs),
            self._x_code_of,
            self._x_values,
        )
        matched_list = self._x_matched
        if fresh:
            matches_any = self._index.matches_any
            x_values = self._x_values
            matched_list.extend(
                matches_any((x_values[code],) if x_single else x_values[code])
                for code in fresh
            )
            self._x_matched_np = None
        y_codes, _fresh_y = self._intern_projections(
            batches,
            schema.positions(self.variable.rhs),
            self._y_code_of,
            self._y_values,
        )

        x_arr = _np.asarray(x_codes, dtype=_np.int64)
        if self._x_matched_np is None:
            self._x_matched_np = _np.asarray(matched_list, dtype=bool)
        matched = self._x_matched_np[x_arr]
        total = len(x_codes)
        if not matched.any():
            return
        signs = _np.empty(total, dtype=_np.int8)
        at = 0
        for rows, sign in batches:
            signs[at:at + len(rows)] = sign
            at += len(rows)
        if matched.all():
            sel = None
            xs = x_arr
            sgns = signs
        else:
            sel = _np.nonzero(matched)[0]
            xs = x_arr[sel]
            sgns = signs[sel]
        ys = _np.asarray(y_codes, dtype=_np.int64)
        if sel is not None:
            ys = ys[sel]

        # net signed count per distinct (x, y): one sparse sort-based
        # reduce (never a dense x × y table)
        n_y = len(self._y_values)
        pair_codes, inverse = _np.unique(
            xs * n_y + ys, return_inverse=True
        )
        net = _np.bincount(inverse, weights=sgns).astype(_np.int64)
        pair_x = (pair_codes // n_y).tolist()
        pair_y = (pair_codes % n_y).tolist()
        net_counts = net.tolist()

        groups = self._code_groups

        # phase A — net (x, y) counts into the y tables; conflict flips
        # are *not* evaluated yet (phase B reads the pre-batch flags)
        touched: list[tuple[int, _CodeGroup]] = []
        undo = self._undo
        n_pairs = len(pair_x)
        at = 0
        while at < n_pairs:
            gx = pair_x[at]
            group = groups.get(gx)
            # every distinct x of the stream appears in pair_x, so this
            # single touch also covers the phase B/C mutations below
            if undo is not None and gx not in undo:
                undo[gx] = self._snapshot(group)
            if group is None:
                group = groups[gx] = _CodeGroup()
            touched.append((gx, group))
            y_counts = group.y_counts
            while at < n_pairs and pair_x[at] == gx:
                count = net_counts[at]
                if count:
                    try:
                        _bump(y_counts, pair_y[at], count)
                    except ValueError:
                        raise ValueError(
                            "deleted a row of X group "
                            f"{self._x_values[gx]!r} that is not in the "
                            "state"
                        ) from None
                at += 1

        # phase B — member-key streams, one per sign, C-level extends
        # into each touched group's event log; rows of a group that was
        # conflicting before the batch also count into the key counter
        # (a flip later settles the difference in phase C)
        collect = self.collect_tuples
        key_pos = schema.key_positions()
        stream_base = (
            _np.arange(total, dtype=_np.int64) if sel is None else sel
        )
        all_rows: Sequence[tuple]
        if len(batches) == 1:
            all_rows = batches[0][0]
        else:
            all_rows = []
            for rows, _sign in batches:
                all_rows.extend(rows)
        # the insert stream folds first: a valid chain can insert a row
        # and delete it again within one batch, and running deletes last
        # means they always subtract from maximal counts — no transient
        # underflow on the key counter, and compaction at any point sees
        # every add the pending dels could refer to
        for sign in (1, -1):
            sign_sel = _np.nonzero(sgns == sign)[0]
            if not len(sign_sel):
                continue
            order, starts, ends = group_segments(xs[sign_sel])
            ordered = sign_sel[order]
            first_codes = xs[ordered[
                _np.asarray(starts, dtype=_np.int64)
            ]].tolist()
            stream_keys = list(
                _project_keys(all_rows, stream_base[ordered].tolist(), key_pos)
            )
            conflict_keys: list = []
            for gx, s, e in zip(first_codes, starts, ends):
                group = groups.get(gx)
                if group is None:
                    group = groups[gx] = _CodeGroup()
                seg = stream_keys[s:e]
                if sign > 0:
                    group.adds.extend(seg)
                else:
                    group.dels.extend(seg)
                if collect and group.conflicting:
                    conflict_keys.extend(seg)
                if len(group.adds) + len(group.dels) > (
                    32 + 2 * len(group.key_counts)
                ):
                    group.membership()  # amortized compaction
            if conflict_keys:
                keys.add_bulk(conflict_keys, sign)

        # phase C — settle conflict flips from the post-batch y tables
        for gx, group in touched:
            was = group.conflicting
            now = len(group.y_counts) >= 2
            if now != was:
                group.conflicting = now
                violations.add(self._code_violation(gx), 1 if now else -1)
                if collect:
                    membership = group.membership()
                    if sum(membership.values()) == len(membership):
                        # all counts are 1 (row keys are usually unique)
                        keys.add_bulk(
                            list(membership), 1 if now else -1
                        )
                    else:
                        ones = [
                            k for k, c in membership.items() if c == 1
                        ]
                        keys.add_bulk(ones, 1 if now else -1)
                        for member, count in membership.items():
                            if count != 1:
                                keys.add(
                                    member, count if now else -count
                                )
            elif len(group.adds) + len(group.dels) > (
                32 + 2 * len(group.key_counts)
            ):
                group.membership()  # keep pure-delete sessions bounded
            if not group.y_counts:
                del groups[gx]

    def _insert(self, x, y, key, violations, keys) -> None:
        group = self.groups.get(x)
        undo = self._undo
        if undo is not None and x not in undo:
            undo[x] = self._snapshot(group)
        if group is None:
            group = self.groups[x] = _Group()
        _bump(group.y_counts, y, 1)
        _bump(group.key_counts, key, 1)
        if group.conflicting:
            if self.collect_tuples:
                keys.add(key, 1)
        elif len(group.y_counts) >= 2:
            group.conflicting = True
            violations.add(self._violation(x), 1)
            if self.collect_tuples:
                for member, count in group.key_counts.items():
                    keys.add(member, count)

    def _delete(self, x, y, key, violations, keys) -> None:
        group = self.groups.get(x)
        if group is None:
            raise ValueError(
                f"deleted a row of X group {x!r} that is not in the state"
            )
        undo = self._undo
        if undo is not None and x not in undo:
            undo[x] = self._snapshot(group)
        if group.conflicting and self.collect_tuples:
            keys.add(key, -1)
        _bump(group.y_counts, y, -1)
        _bump(group.key_counts, key, -1)
        if group.conflicting and len(group.y_counts) < 2:
            group.conflicting = False
            violations.add(self._violation(x), -1)
            if self.collect_tuples:
                for member, count in group.key_counts.items():
                    keys.add(member, -count)
        if not group.y_counts:
            del self.groups[x]


# -- the detector -------------------------------------------------------------


class IncrementalDetector:
    """``Vioπ(Σ, D)`` maintained across insert/delete batches.

    Compile once, :meth:`attach` to a relation (one full fold building
    the cached state), then :meth:`apply` successive
    :class:`~repro.relational.delta.DeltaRelation` versions — or
    :meth:`update` with explicit batches — each in time proportional to
    the delta and the σ groups it touches.  :attr:`report` is always the
    full current report; every ``apply``/``update`` additionally returns
    the :class:`ViolationDelta` of that batch.

    Alongside the fold state the session keeps a **keyed row store** —
    key projection → resident row(s), a DBMS-style heap + primary index.
    A :meth:`update` batch of keys and rows mutates the store in
    O(|ΔD|): no delta-relation version, no O(|D|) row-list copy, no
    tombstone mask.  :attr:`relation` stays available as a lazily
    materialized (and cached) snapshot; predicate deletes and explicit
    :meth:`apply` chains still run through delta-relation versions, which
    the store absorbs at O(|ΔD|) per step.

    ``engine`` follows :func:`~repro.core.detection.detect_violations`:
    ``reference`` (full recompute + diff per update — the executable
    spec), ``fused``, ``fused-numpy``, or ``auto``/``None`` (the
    ``REPRO_ENGINE`` environment, then numpy availability, decide —
    resolved at :meth:`attach` time, when the state layout is fixed).

    **Concurrency contract**: a session is *single-writer* — the keyed
    row store, undo logs and transition counters assume one mutation at
    a time.  Every public entry point (``attach`` / ``apply`` /
    ``update`` / ``verify`` / ``report``) therefore serializes on a
    per-session reentrant lock: concurrent callers (the resident
    service's request threads) are safe, they just take turns.  The lock
    is reentrant because ``update`` can nest into ``apply`` on the
    predicate-delete path.
    """

    def __init__(
        self,
        cfds: CFD | Iterable[CFD],
        collect_tuples: bool = True,
        engine: str | None = None,
    ) -> None:
        self._fused = FusedDetector(cfds)
        self.cfds = self._fused.cfds
        self.collect_tuples = collect_tuples
        #: serializes every public entry point (single-writer contract)
        self._session_lock = threading.RLock()
        self._requested_engine = engine
        self.engine: str | None = None
        self._relation: Relation | None = None
        #: key projection -> row tuple, or a list of rows for bag
        #: duplicates; ``None`` until attach()
        self._store: dict | None = None
        #: open-batch undo log of the store (key -> pre-batch entry copy,
        #: ``None`` for "absent"), plus the pre-batch snapshot cache
        self._store_undo: dict | None = None
        self._relation_snapshot: Relation | None = None
        self.schema = None
        self._wrap_keys = False
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        self._constants = ConstantFolds(self._fused._constants, collect_tuples)
        self._variables: list[VariableGroupState] = []
        self._reference_report: ViolationReport | None = None

    @property
    def relation(self) -> Relation | None:
        """The current relation version (materialized lazily after
        store-level updates; the object is cached until the next update,
        so :meth:`apply` chains can anchor on it)."""
        if self._relation is None and self._store is not None:
            with self._session_lock:
                if self._relation is None:
                    rows: list = []
                    for entry in self._store.values():
                        if type(entry) is list:
                            rows.extend(entry)
                        else:
                            rows.append(entry)
                    self._relation = Relation(self.schema, rows, copy=False)
        return self._relation

    @relation.setter
    def relation(self, value: Relation | None) -> None:
        self._relation = value

    # -- the keyed row store ----------------------------------------------

    def _build_store(self, relation: Relation) -> None:
        key_pos = relation.schema.key_positions()
        store: dict = {}
        for key, row in zip(
            _project_keys(relation.rows, range(len(relation.rows)), key_pos),
            relation.rows,
        ):
            entry = store.get(key)
            if entry is None:
                store[key] = row
            elif type(entry) is list:
                entry.append(row)
            else:
                store[key] = [entry, row]
        self._store = store

    def _store_touch(self, key) -> None:
        """Record ``key``'s pre-batch entry in the open undo log (copying
        list entries, which later store ops mutate in place)."""
        undo = self._store_undo
        if undo is None or key in undo:
            return
        entry = self._store.get(key)
        undo[key] = list(entry) if type(entry) is list else entry

    def _store_add(self, key: tuple, row: tuple) -> None:
        self._store_touch(key)
        entry = self._store.get(key)
        if entry is None:
            self._store[key] = row
        elif type(entry) is list:
            entry.append(row)
        else:
            self._store[key] = [entry, row]

    def _store_remove_row(self, key: tuple, row: tuple) -> None:
        """Remove one specific resident row (delta-version sync path)."""
        self._store_touch(key)
        entry = self._store.get(key)
        if type(entry) is list:
            entry.remove(row)
            if len(entry) == 1:
                self._store[key] = entry[0]
        elif entry is not None:
            del self._store[key]

    # -- engine resolution ------------------------------------------------

    def _resolve_engine(self) -> str:
        engine = self._requested_engine
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE", "auto")
        if engine == "auto":
            return "fused-numpy" if numpy_enabled() else "fused"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown detection engine {engine!r}; "
                f"use one of {', '.join(ENGINES)} (or 'auto')"
            )
        if engine == "fused-numpy" and not numpy_enabled():
            raise RuntimeError(
                "the fused-numpy engine needs numpy (install the 'fast' "
                "extra); numpy is not importable or was disabled via "
                "REPRO_NUMPY=0"
            )
        return engine

    @property
    def _vectorize(self) -> bool:
        return self.engine == "fused-numpy"

    @property
    def _recompute_mode(self) -> bool:
        """Engines maintained by recompute+diff instead of delta folds.

        ``reference`` is the executable spec; ``sql`` delegates detection
        to a database, which has no incremental fold — each update re-runs
        the compiled statement set on the new relation (the per-relation
        handle cache keeps the reload cost bounded) and diffs reports.
        """
        return self.engine in ("reference", "sql")

    def _recompute_report(self, relation: Relation) -> ViolationReport:
        if self.engine == "sql":
            from .sql import detect_violations_sql

            return detect_violations_sql(
                relation, self.cfds, self.collect_tuples
            )
        return detect_violations_reference(
            relation, self.cfds, self.collect_tuples
        )

    # -- lifecycle --------------------------------------------------------

    def attach(self, relation: Relation) -> ViolationReport:
        """Build (or rebuild) the cached state with one full fold of ``D``."""
        with self._session_lock:
            self.engine = self._resolve_engine()
            self.relation = relation
            self.schema = relation.schema
            # single-attribute keys travel raw through the folds and the
            # key counters (no per-row 1-tuple); the report boundary
            # re-wraps them
            self._wrap_keys = len(relation.schema.key_positions()) == 1
            self._build_store(relation)
            if self._recompute_mode:
                self._reference_report = self._recompute_report(relation)
                return self.report
            self._violations = TransitionCounter()
            self._keys = TransitionCounter()
            self._variables = [
                VariableGroupState(variable, self.collect_tuples)
                for variable, _index in self._fused._variables
            ]
            self._fold(relation, 1)
            return self.report

    def _fold(self, batch: Relation, sign: int) -> None:
        self._constants.fold(
            batch, sign, self._violations, self._keys, self._vectorize
        )
        for state in self._variables:
            state.fold(
                batch, sign, self._violations, self._keys, self._vectorize
            )

    def _fold_batches(
        self, schema, batches: list[tuple[list, int]]
    ) -> None:
        """Fold one update's signed row streams through every form state.

        Under the vectorized engine the whole list reaches each variable
        state's :meth:`VariableGroupState.fold_signed` in one fused call
        (a deleted and re-inserted combination cancels before it costs
        anything); the list engine folds per stream.
        """
        if self._vectorize:
            if self._constants.constants:
                for rows, sign in batches:
                    self._constants.fold(
                        Relation(schema, rows, copy=False),
                        sign,
                        self._violations,
                        self._keys,
                        True,
                    )
            for state in self._variables:
                state.fold_signed(
                    schema, batches, self._violations, self._keys
                )
        else:
            for rows, sign in batches:
                self._fold(Relation(schema, rows, copy=False), sign)

    # -- transactional batches --------------------------------------------

    def _begin_batch(self) -> None:
        """Open one all-or-nothing update: arm every undo log."""
        self._store_undo = {}
        self._relation_snapshot = self._relation
        if not self._recompute_mode:
            self._violations.begin()
            self._keys.begin()
            for state in self._variables:
                state.begin()

    def _end_batch(self) -> None:
        """Close a successful update: drop the undo logs."""
        self._store_undo = None
        self._relation_snapshot = None

    def _rollback_batch(self) -> None:
        """Restore the exact pre-batch session state.

        Unwinds, in O(|touched|): the keyed row store (entries popped,
        replaced or appended-to during the batch), every variable form's
        group table, both transition counters, and the cached relation
        snapshot.  After a rollback the session is exactly as if the
        failed ``update``/``apply`` had never been called — the
        transactionality property the chaos suite asserts.
        """
        for state in self._variables:
            state.rollback()
        self._violations.rollback()
        self._keys.rollback()
        undo = self._store_undo
        self._store_undo = None
        if undo:
            store = self._store
            for key, entry in undo.items():
                if entry is None:
                    store.pop(key, None)
                else:
                    store[key] = entry
        self._relation = self._relation_snapshot
        self._relation_snapshot = None

    def apply(self, relation: Relation) -> ViolationDelta:
        """Advance to ``relation``, folding only its recorded delta.

        ``relation`` must be a :class:`~repro.relational.delta.DeltaRelation`
        (or a chain of them) rooted at the currently attached version —
        anything else raises, because the provenance chain is the only
        thing that makes O(|ΔD|) maintenance sound.

        All-or-nothing: if any step of the chain fails mid-fold, the
        session rolls back to the state before this call and the
        exception propagates.
        """
        with self._session_lock:
            return self._apply_locked(relation)

    def _apply_locked(self, relation: Relation) -> ViolationDelta:
        if self.relation is None:
            raise ValueError("attach() a relation before applying updates")
        chain: list[Relation] = []
        version = relation
        while version is not self.relation:
            parent = getattr(version, "delta_parent", None)
            if parent is None:
                raise ValueError(
                    "apply() needs a DeltaRelation chained from the "
                    "attached version; got an unrelated relation "
                    "(use attach() to rebuild from scratch)"
                )
            chain.append(version)
            version = parent
        chain.reverse()
        schema = relation.schema
        key_pos = schema.key_positions()
        self._begin_batch()
        try:
            batches: list[tuple[list, int]] = []
            for version in chain:
                if version.delta_deleted:
                    rows = list(version.delta_deleted)
                    batches.append((rows, -1))
                    for key, row in zip(
                        _project_keys(rows, range(len(rows)), key_pos), rows
                    ):
                        self._store_remove_row(key, row)
                if version.delta_inserted:
                    rows = list(version.delta_inserted)
                    batches.append((rows, 1))
                    for key, row in zip(
                        _project_keys(rows, range(len(rows)), key_pos), rows
                    ):
                        self._store_add(key, row)
            if self._recompute_mode:
                self.relation = relation
                delta = self._reference_rediff()
                self._end_batch()
                return delta
            self._fold_batches(schema, batches)
            self.relation = relation
        except BaseException:
            self._rollback_batch()
            raise
        return self._commit()

    def update(
        self,
        inserted: Iterable[Sequence[object]] = (),
        deleted=(),
    ) -> ViolationDelta:
        """Absorb one explicit batch: ``deleted`` first, then ``inserted``.

        With ``deleted`` an iterable of keys (bare values accepted for
        single-attribute keys; unknown keys are no-ops, matching
        :meth:`Relation.delete`), the batch goes straight through the
        session's keyed row store — O(|ΔD|) dictionary operations, no
        relation version, no O(|D|) row-list copy.  A predicate
        ``deleted`` needs a scan of ``D``, so that path still mints
        :class:`~repro.relational.delta.DeltaRelation` versions and
        :meth:`apply`\\ s them (their provenance is pruned afterwards, so
        session memory stays bounded either way).
        """
        with self._session_lock:
            return self._update_locked(inserted, deleted)

    def _update_locked(self, inserted, deleted) -> ViolationDelta:
        if self._store is None:
            raise ValueError("attach() a relation before applying updates")
        if callable(deleted) or hasattr(deleted, "evaluate"):
            return self._update_via_versions(inserted, deleted)
        from itertools import repeat

        from ..relational.schema import SchemaError

        schema = self.schema
        key_pos = schema.key_positions()
        width = len(schema)
        key_width = len(key_pos)
        batch = [tuple(row) for row in inserted]
        if set(map(len, batch)) - {width}:
            bad = next(row for row in batch if len(row) != width)
            raise SchemaError(
                f"row of width {len(bad)} does not fit schema "
                f"{schema.name!r} of width {width}: {bad!r}"
            )
        doomed = deleted if type(deleted) is list else list(deleted)
        if key_width == 1:
            # raw store keys: unwrap 1-tuples, keep bare values
            if tuple in set(map(type, doomed)):
                doomed = [
                    key[0] if type(key) is tuple and len(key) == 1 else key
                    for key in doomed
                ]
                if any(type(key) is tuple for key in doomed):
                    bad = next(k for k in doomed if type(k) is tuple)
                    raise SchemaError(
                        f"key {bad!r} does not fit key attributes "
                        f"{schema.key}"
                    )
        else:
            doomed = [
                key if isinstance(key, tuple) else (key,) for key in doomed
            ]
            if set(map(len, doomed)) - {key_width}:
                bad = next(k for k in doomed if len(k) != key_width)
                raise SchemaError(
                    f"key {bad!r} does not fit key attributes {schema.key}"
                )
        if not doomed and not batch:
            return ViolationDelta()

        self._begin_batch()
        try:
            store = self._store
            undo = self._store_undo
            removed: list[tuple] = []
            if doomed:
                for key in doomed:
                    self._store_touch(key)
                # unknown keys are no-ops, like Relation.delete
                entries = map(store.pop, doomed, repeat(None))
                removed = [entry for entry in entries if entry is not None]
                if list in set(map(type, removed)):
                    flat: list[tuple] = []
                    for entry in removed:
                        if type(entry) is list:
                            flat.extend(entry)
                        else:
                            flat.append(entry)
                    removed = flat
            if batch:
                fresh_keys = list(
                    _project_keys(batch, range(len(batch)), key_pos)
                )
                if len(set(fresh_keys)) == len(fresh_keys) and store.keys(
                ).isdisjoint(fresh_keys):
                    # the C fast path; keys are absent from the store, so
                    # their undo entries are plain "absent" markers
                    for key in fresh_keys:
                        if key not in undo:
                            undo[key] = None
                    store.update(zip(fresh_keys, batch))
                else:
                    for key, row in zip(fresh_keys, batch):
                        self._store_add(key, row)
            self._relation = None  # invalidate the cached snapshot

            if self._recompute_mode:
                delta = self._reference_rediff()
                self._end_batch()
                return delta
            batches: list[tuple[list, int]] = []
            if removed:
                batches.append((removed, -1))
            if batch:
                batches.append((batch, 1))
            self._fold_batches(schema, batches)
        except BaseException:
            self._rollback_batch()
            raise
        return self._commit()

    def _update_via_versions(self, inserted, deleted) -> ViolationDelta:
        """The predicate-delete path: delta versions, then :meth:`apply`."""
        from ..relational.delta import prune_delta_history

        version = self.relation
        version = version.delete(deleted)
        inserted = list(inserted)
        if inserted:
            version = version.insert(inserted)
        if version is self.relation:
            return ViolationDelta()
        delta = self.apply(version)
        # prune oldest-first so each step can still derive its key array
        # from the (already materialized) link below it
        prune_delta_history(version.delta_parent)
        prune_delta_history(version)
        return delta

    # -- results ----------------------------------------------------------

    def _commit(self) -> ViolationDelta:
        for state in self._variables:
            state.commit()
        self._end_batch()
        return commit_counters(self._violations, self._keys, self._wrap_keys)

    def _reference_rediff(self) -> ViolationDelta:
        previous = self._reference_report
        current = self._recompute_report(self.relation)
        self._reference_report = current
        return ViolationDelta(
            added=ViolationReport(
                current.violations - previous.violations,
                current.tuple_keys - previous.tuple_keys,
            ),
            removed=ViolationReport(
                previous.violations - current.violations,
                previous.tuple_keys - current.tuple_keys,
            ),
        )

    @property
    def report(self) -> ViolationReport:
        """The full current report (a fresh copy, safe to merge/mutate)."""
        with self._session_lock:
            if self._recompute_mode:
                source = self._reference_report or ViolationReport()
                return ViolationReport(source.violations, source.tuple_keys)
            return counters_report(
                self._violations, self._keys, self._wrap_keys
            )

    def verify(self, sample: int | None = None, seed: int = 8) -> bool:
        """Invariant check of the maintained state against ``reference``.

        With ``sample=None`` (the default), recomputes the full report
        with :func:`detect_violations_reference` on the current relation
        and demands exact equality — O(|D|), the strongest check.

        With an integer ``sample``, draws that many resident rows with
        ``random.Random(seed)`` and checks **subset soundness**: both
        violations and violating tuple keys are monotone increasing in
        the rows (a sub-relation's witnesses all survive in the full
        relation), so everything the reference engine finds on the
        sampled sub-relation must already be in the maintained report.
        O(|sample|) — cheap enough to run inside a long-lived session as
        a periodic corruption check; it can miss corruption outside the
        sampled groups, never report a false alarm.
        """
        with self._session_lock:
            return self._verify_locked(sample, seed)

    def _verify_locked(self, sample: int | None, seed: int) -> bool:
        relation = self.relation
        if relation is None:
            raise ValueError("attach() a relation before verifying")
        maintained = self.report
        if sample is None or sample >= len(relation.rows):
            expected = detect_violations_reference(
                relation, self.cfds, self.collect_tuples
            )
            if set(maintained.violations) != set(expected.violations):
                return False
            return not self.collect_tuples or set(
                maintained.tuple_keys
            ) == set(expected.tuple_keys)
        import random

        rows = random.Random(seed).sample(list(relation.rows), sample)
        sampled = detect_violations_reference(
            Relation(self.schema, rows, copy=False),
            self.cfds,
            self.collect_tuples,
        )
        if not set(sampled.violations) <= set(maintained.violations):
            return False
        return not self.collect_tuples or set(sampled.tuple_keys) <= set(
            maintained.tuple_keys
        )

    def __repr__(self) -> str:
        n = len(self.relation) if self.relation is not None else 0
        return (
            f"IncrementalDetector({len(self.cfds)} CFDs, engine="
            f"{self.engine or 'unresolved'}, {n} tuples attached)"
        )


def incremental_detect(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    engine: str | None = None,
) -> IncrementalDetector:
    """Attach a fresh :class:`IncrementalDetector` to ``relation``."""
    detector = IncrementalDetector(cfds, collect_tuples, engine)
    detector.attach(relation)
    return detector
