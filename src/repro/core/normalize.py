"""Normal forms of CFDs (Section IV-A).

A CFD ``(X → Y, Tp)`` converts to an equivalent set of CFDs ``(X → A, tp)``
with a single RHS attribute and a single pattern tuple.  Each such CFD is

* a **constant CFD** when ``tp[A]`` is a constant — equivalent to one whose
  pattern tuple carries no wildcards at all (wildcard LHS entries can be
  dropped), and violated by *single* tuples, hence locally checkable
  (Proposition 5); or
* a **variable CFD** when ``tp[A] = '_'`` — violated only by *pairs* of
  tuples, the case that may force data shipment.

For the distributed algorithms we regroup the variable normal forms of one
CFD back into a single :class:`VariableCFD` per RHS-attribute set: it keeps
one LHS pattern tableau (sorted by generality, ready for the σ partition
function of Section IV-B) and ships each matching tuple once for all its RHS
attributes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .cfd import CFD, PatternTuple, WILDCARD, is_wildcard, matches, tuple_matches
from .epatterns import is_predicate


@dataclass(frozen=True)
class ConstantCFD:
    """A constant normal form ``(X → A, (c̄ ‖ a))`` with no LHS wildcards.

    ``lhs``/``values`` list only the attributes bound to constants (the
    wildcard positions of the original pattern are dropped — an equivalent
    form, as observed in [2]).  ``report_lhs`` keeps the original ``X`` so
    violation reports project onto the attributes of the source CFD.
    """

    source: str
    lhs: tuple[str, ...]
    values: tuple[object, ...]
    rhs_attr: str
    rhs_value: object
    report_lhs: tuple[str, ...]
    pattern_index: int = 0

    def condition(self) -> dict[str, object]:
        """The conjunction ``F_φ`` of ``B = b`` atoms of this pattern.

        Extended predicate entries are omitted (they are not equality
        atoms); the ``F_i ∧ F_φ`` pruning that consumes this stays sound —
        it just prunes less.
        """
        return {
            attr: value
            for attr, value in zip(self.lhs, self.values)
            if not is_predicate(value)
        }

    def violated_by(self, lhs_values: Sequence[object], rhs_value: object) -> bool:
        """Whether a single tuple with these projections violates the CFD."""
        return tuple_matches(lhs_values, self.values) and not matches(
            rhs_value, self.rhs_value
        )


@dataclass(frozen=True)
class VariableCFD:
    """The variable part of a CFD: ``(X → A1..Am, T)`` with all-wildcard RHS.

    ``patterns`` holds LHS-only pattern rows sorted by generality (fewer
    wildcards first), as required by the σ partition function (Lemma 6);
    ``pattern_sources`` maps each row back to the tableau index of the
    source CFD.
    """

    source: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    patterns: tuple[tuple[object, ...], ...]
    pattern_sources: tuple[int, ...] = field(default=(), compare=False)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes a coordinator needs: ``X`` then the RHS attributes."""
        seen = dict.fromkeys(self.lhs)
        seen.update(dict.fromkeys(self.rhs))
        return tuple(seen)

    def matches_some_pattern(self, lhs_values: Sequence[object]) -> bool:
        """Whether the values match the LHS of any pattern row."""
        return any(tuple_matches(lhs_values, p) for p in self.patterns)

    def as_cfd(self) -> CFD:
        """Reconstruct a plain :class:`CFD` (all-wildcard RHS tableau)."""
        rhs_row = (WILDCARD,) * len(self.rhs)
        return CFD(
            self.lhs,
            self.rhs,
            [PatternTuple(p, rhs_row) for p in self.patterns],
            name=self.source,
        )


@dataclass(frozen=True)
class NormalizedCFD:
    """The full normal form of one CFD."""

    source: str
    constants: tuple[ConstantCFD, ...]
    variables: tuple[VariableCFD, ...]


def sort_patterns_by_generality(
    patterns: Iterable[tuple[object, ...]],
) -> list[tuple[object, ...]]:
    """Stable sort with fewer-wildcard (more specific) rows first."""
    return sorted(
        patterns, key=lambda row: sum(1 for v in row if is_wildcard(v))
    )


#: guards the LRU reorder/evict mutations below — the thread scheduler
#: calls these memos from workers, and a hit must never make the entry
#: momentarily invisible to a concurrent reader (which would recompute
#: exactly what the memo exists to remember).  The critical sections are
#: a few dict operations, far from any hot per-row path.
_MEMO_LOCK = threading.Lock()


def _memo_get(memo: dict, key):
    """LRU probe: a hit is re-inserted so it moves to the young end."""
    with _MEMO_LOCK:
        cached = memo.pop(key, None)
        if cached is not None:
            memo[key] = cached
    return cached


def _memo_put(memo: dict, key, value, cap: int) -> None:
    """LRU insert: evict oldest-first at the cap, never the whole memo.

    Wholesale clearing caused a thundering herd — every concurrently hot
    entry re-computed at once the moment the property suites pushed the
    memo over the cap.  Python dicts iterate in insertion order, and
    :func:`_memo_get` reinserts on hit, so the first key is always the
    least recently used.
    """
    with _MEMO_LOCK:
        while len(memo) >= cap:
            del memo[next(iter(memo))]
        memo[key] = value


#: value-keyed memo of :func:`normalize` — CFDs are immutable values and
#: every detection run (and every site of a distributed run) re-normalizes
#: the same Σ, so the split is worth remembering.  Keyed on the name too:
#: ``CFD.__eq__`` deliberately ignores it, but the normal forms carry it
#: as their ``source``.  Bounded LRU: the oldest entry is evicted at the
#: cap (property-based suites mint thousands of CFDs).
_NORMALIZE_MEMO: dict[tuple[str, CFD], NormalizedCFD] = {}
_NORMALIZE_MEMO_CAP = 512


def normalize(cfd: CFD) -> NormalizedCFD:
    """Split ``cfd`` into constant and variable normal forms (memoized).

    The union of violations of the parts equals the violations of the
    original CFD (the standard equivalence of [2], pinned by tests).
    """
    key = (cfd.name, cfd)
    cached = _memo_get(_NORMALIZE_MEMO, key)
    if cached is not None:
        return cached
    normalized = _normalize_uncached(cfd)
    _memo_put(_NORMALIZE_MEMO, key, normalized, _NORMALIZE_MEMO_CAP)
    return normalized


def _normalize_uncached(cfd: CFD) -> NormalizedCFD:
    constants: list[ConstantCFD] = []
    # RHS-attribute subset with wildcard entries -> list of (tableau idx, lhs row)
    variable_rows: dict[tuple[str, ...], list[tuple[int, tuple[object, ...]]]] = {}

    for index, tp in enumerate(cfd.tableau):
        # A constant RHS entry implies pairwise equality on its own, so it
        # needs no variable part.  A *predicate* RHS entry (eCFD) does not:
        # two tuples may both satisfy it yet differ, so the embedded FD
        # still needs the pairwise GROUP BY — alongside the single-tuple
        # predicate check.
        wildcard_rhs = tuple(
            attr
            for attr, v in zip(cfd.rhs, tp.rhs)
            if is_wildcard(v) or is_predicate(v)
        )
        for attr, value in zip(cfd.rhs, tp.rhs):
            if is_wildcard(value):
                continue
            kept = [
                (a, c) for a, c in zip(cfd.lhs, tp.lhs) if not is_wildcard(c)
            ]
            constants.append(
                ConstantCFD(
                    source=cfd.name,
                    lhs=tuple(a for a, _ in kept),
                    values=tuple(c for _, c in kept),
                    rhs_attr=attr,
                    rhs_value=value,
                    report_lhs=cfd.lhs,
                    pattern_index=index,
                )
            )
        if wildcard_rhs:
            variable_rows.setdefault(wildcard_rhs, []).append((index, tp.lhs))

    variables = []
    for rhs_attrs, rows in variable_rows.items():
        # Deduplicate identical LHS rows, keep the first source index.
        seen: dict[tuple[object, ...], int] = {}
        for index, lhs_row in rows:
            seen.setdefault(lhs_row, index)
        ordered = sort_patterns_by_generality(seen)
        variables.append(
            VariableCFD(
                source=cfd.name,
                lhs=cfd.lhs,
                rhs=rhs_attrs,
                patterns=tuple(ordered),
                pattern_sources=tuple(seen[row] for row in ordered),
            )
        )
    return NormalizedCFD(cfd.name, tuple(constants), tuple(variables))


def normalize_all(cfds: Iterable[CFD]) -> list[NormalizedCFD]:
    """Normalize a set Σ of CFDs."""
    return [normalize(cfd) for cfd in cfds]


class PatternIndex:
    """First-match lookup ``σ: t[X] → pattern ordinal`` (Section IV-B).

    Patterns must already be sorted by generality.  Rows are bucketed by
    their wildcard mask; a lookup probes one hash table per distinct mask
    and returns the smallest matching ordinal, so the cost per tuple is
    independent of the tableau size.
    """

    __slots__ = ("_buckets", "_predicate_rows", "n_patterns")

    def __init__(self, patterns: Sequence[tuple[object, ...]]) -> None:
        self.n_patterns = len(patterns)
        buckets: dict[tuple[int, ...], dict[tuple, int]] = {}
        # rows carrying eCFD predicate entries cannot be hashed on their
        # constants; they are probed linearly after the hash lookups
        predicate_rows: list[tuple[int, tuple[object, ...]]] = []
        for ordinal, row in enumerate(patterns):
            if any(is_predicate(v) for v in row):
                predicate_rows.append((ordinal, row))
                continue
            const_positions = tuple(
                i for i, v in enumerate(row) if not is_wildcard(v)
            )
            table = buckets.setdefault(const_positions, {})
            key = tuple(row[i] for i in const_positions)
            table.setdefault(key, ordinal)  # keep the most specific (first)
        self._buckets = [
            (positions, table) for positions, table in buckets.items()
        ]
        self._predicate_rows = predicate_rows

    def first_match(self, values: Sequence[object]) -> int | None:
        """Ordinal of the first pattern whose LHS matches, or ``None``."""
        best: int | None = None
        for positions, table in self._buckets:
            ordinal = table.get(tuple(values[i] for i in positions))
            if ordinal is not None and (best is None or ordinal < best):
                best = ordinal
        for ordinal, row in self._predicate_rows:
            if best is not None and ordinal >= best:
                break
            if tuple_matches(values, row):
                best = ordinal
                break
        return best

    def matches_any(self, values: Sequence[object]) -> bool:
        """Whether any pattern row matches (membership in ``D[Tp[X]]``)."""
        return self.first_match(values) is not None


#: value-keyed memo of :func:`pattern_index` (same rationale and LRU
#: bounding as the :func:`normalize` memo: one trie per distinct tableau,
#: shared by every site, worker and repeat detection that partitions with
#: it).
_INDEX_MEMO: dict[tuple, PatternIndex] = {}
_INDEX_MEMO_CAP = 512


def pattern_index(patterns: tuple[tuple[object, ...], ...]) -> PatternIndex:
    """The (memoized) :class:`PatternIndex` of a pattern tableau.

    Pattern rows are immutable value tuples, so the σ trie is a pure
    function of them; the memo also lets the parallel scheduler's worker
    processes rebuild each trie once and reuse it across work orders.
    """
    cached = _memo_get(_INDEX_MEMO, patterns)
    if cached is not None:
        return cached
    index = PatternIndex(patterns)
    _memo_put(_INDEX_MEMO, patterns, index, _INDEX_MEMO_CAP)
    return index
