"""Fused single-pass detection of a whole CFD set Σ over the columnar backend.

The reference detector (:func:`repro.core.detection.detect_violations_reference`)
replays the SQL plan of [2] literally: one scan of the row tuples per
constant normal form, one scan plus one hash GROUP BY per variable normal
form — O(|Σ| · |D|) passes that re-materialize Python tuples and rebuild
hash tables every time.  This module is the same mathematics restructured
so each row tuple is *touched once*:

1. **One pass over the tuples.**  The relation's cached
   :class:`~repro.relational.columnar.ColumnStore` dictionary-encodes each
   referenced attribute the first time it is needed; that encoding scan is
   the only place raw row tuples are hashed.  Composite
   :class:`~repro.relational.columnar.KeyColumn` views assign every row the
   ordinal of its distinct X (and Y) combination, shared by every normal
   form with the same attribute list — and shared with ``group_by``,
   ``join`` and ``HashIndex``, and across repeated detections, because the
   store is cached on the immutable relation.

2. **Per-form folds over integer codes.**  Each constant normal form
   compiles to per-column *code* tests (a pattern constant missing from a
   column proves no row can match, so the form drops out entirely; an eCFD
   predicate is evaluated once per distinct value, never per row).  Each
   variable normal form probes its :class:`PatternIndex` once per distinct
   X group — the shared σ trie of Section IV-B — and folds rows into
   per-(CFD, X-group) conflict states: first RHS code seen, conflict flag,
   member rows.  Per (row, matching form) the work is a couple of list
   lookups — no tuple construction, no value hashing.

Both folds come in two implementations sharing the compiled plans:

* the **pure-Python** folds above (engine ``"fused"``) — per (row,
  matching form) the work is a couple of list lookups; no dependency
  beyond the standard library;
* the **vectorized** folds (engine ``"fused-numpy"``) — constant-form
  code tests become boolean masks over the store's cached ``int32`` code
  arrays (one lookup table per referenced column), and variable-form
  X-group conflict detection becomes a sort-free group-reduce: a scatter
  elects one representative Y code per σ-matched X group, and a group
  conflicts iff some of its rows disagrees with the representative.  On
  repeat detections violating tuple keys are gathered through the
  relation's key :class:`~repro.relational.columnar.KeyColumn`, whose
  pre-built value tuples make the set-update allocation-free.

``vectorize=None`` (the default everywhere) auto-selects: the vectorized
folds when numpy is active (see
:func:`repro.relational.columnar.numpy_enabled`) and the relation is large
enough to amortize the array overhead, the Python folds otherwise; the
``REPRO_ENGINE`` environment variable (``fused`` / ``fused-numpy``)
overrides the choice, which is how the engine conformance matrix drives
every detector — including the distributed ones, whose local checks land
here — through each backend.

The output is bit-for-bit the reference detector's :class:`ViolationReport`
(violations *and* violating tuple keys), which the property-based suites
assert on random relations and CFD sets across all three engines.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import Iterable, Sequence

from ..relational import Relation
from ..relational import columnar
from ..relational.columnar import ColumnStore, column_store, numpy_enabled
from .cfd import CFD, matches
from .epatterns import is_predicate
from .normalize import (
    ConstantCFD,
    PatternIndex,
    VariableCFD,
    normalize_all,
)
from .violations import Violation, ViolationReport

try:  # the vectorized folds are optional, like the columnar array backend
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None


def _require_numpy() -> bool:
    if not numpy_enabled():
        raise RuntimeError(
            "the fused-numpy engine needs numpy (install the 'fast' extra); "
            "numpy is not importable or was disabled via REPRO_NUMPY=0"
        )
    return True


def _resolve_vectorize(vectorize: bool | None, relation: Relation) -> bool:
    """Decide whether to run the vectorized folds.

    Explicit ``True``/``False`` wins (``True`` verifies numpy is active).
    ``None`` defers to ``REPRO_ENGINE`` (``fused`` — and ``reference``,
    so that matrix leg stays deterministic whether or not numpy is
    installed — force the Python folds, ``fused-numpy`` the vectorized
    ones); with no override the vectorized folds are picked when numpy is
    active and the relation is at least
    :data:`repro.relational.columnar.VECTORIZE_MIN_ROWS` rows, below which
    per-call array overhead outweighs the fold speedup.
    """
    if vectorize is None:
        env = os.environ.get("REPRO_ENGINE")
        if env in ("fused", "reference"):
            return False
        if env == "fused-numpy":
            return _require_numpy()
        return (
            numpy_enabled()
            and len(relation.rows) >= columnar.VECTORIZE_MIN_ROWS
        )
    if vectorize:
        return _require_numpy()
    return False


def _project_rows(
    rows: Sequence[tuple], ids: Sequence[int], positions: tuple[int, ...]
):
    """Iterate ``rows[i][positions]`` tuples for ``i`` in ``ids``, C-speed.

    ``itemgetter`` with several positions yields the projection tuples
    directly; a single position is wrapped through one-iterable ``zip`` to
    get 1-tuples without a Python-level loop.
    """
    fetched = map(rows.__getitem__, ids)
    if len(positions) == 1:
        return zip(map(itemgetter(positions[0]), fetched))
    return map(itemgetter(*positions), fetched)


def _collect_keys(
    report: ViolationReport,
    rows: Sequence[tuple],
    ids: Sequence[int],
    key_pos: tuple[int, ...],
) -> None:
    """Add the key projections of the given violating rows to the report."""
    if ids:
        report.tuple_keys.update(_project_rows(rows, ids, key_pos))


# -- constant normal forms ----------------------------------------------------


def _compile_constant(store: ColumnStore, constant: ConstantCFD):
    """Compile one constant form to code-level tests, or ``None`` if it can
    never fire on this relation (a required constant is absent, or no value
    of the RHS column violates the pattern).

    Each check pairs a column with the set of codes its pattern entry
    accepts; both fold implementations consume the same plan (list codes or
    the cached code array).
    """
    checks = []
    for attr, value in zip(constant.lhs, constant.values):
        column = store.column(attr)
        if is_predicate(value):
            allowed = frozenset(
                code for code, v in enumerate(column.values) if value.matches(v)
            )
        else:
            code = column.code_of.get(value)
            allowed = frozenset((code,)) if code is not None else frozenset()
        if not allowed:
            return None
        checks.append((column, allowed))
    rhs_column = store.column(constant.rhs_attr)
    bad = frozenset(
        code
        for code, v in enumerate(rhs_column.values)
        if not matches(v, constant.rhs_value)
    )
    if not bad:
        return None
    return checks, rhs_column, bad


def _constant_hits_python(checks, rhs_column, bad) -> list[int]:
    """Row ids violating one constant form, by the per-row code-test loop."""
    rhs_codes = rhs_column.codes
    if not checks:  # all-wildcard LHS: the pattern conditions every row
        return [i for i, code in enumerate(rhs_codes) if code in bad]
    hits: list[int] = []
    first_codes, first_allowed = checks[0][0].codes, checks[0][1]
    rest = [(column.codes, allowed) for column, allowed in checks[1:]]
    for i, code in enumerate(first_codes):
        if code not in first_allowed:
            continue
        for codes, allowed in rest:
            if codes[i] not in allowed:
                break
        else:
            if rhs_codes[i] in bad:
                hits.append(i)
    return hits


def _code_mask(column, accepted: frozenset):
    """Boolean row mask "this column's code is in ``accepted``", via a
    per-column lookup table (cheaper than ``np.isin`` for dictionary-sized
    alphabets)."""
    codes = column.codes_array()
    if len(accepted) == 1:
        (code,) = accepted
        return codes == code
    table = _np.zeros(column.n_distinct, dtype=bool)
    table[list(accepted)] = True
    return table[codes]


def _constant_hits_numpy(checks, rhs_column, bad):
    """Row ids violating one constant form, as one boolean-mask conjunction."""
    mask = _code_mask(rhs_column, bad)
    for column, allowed in checks:
        mask &= _code_mask(column, allowed)
    return _np.nonzero(mask)[0]


def _scan_constants(
    relation: Relation,
    constants: Sequence[ConstantCFD],
    collect_tuples: bool,
    vectorize: bool = False,
    keys_hot: bool | None = None,
) -> ViolationReport:
    report = ViolationReport()
    rows = relation.rows
    if not rows or not constants:
        return report
    store = column_store(relation)
    schema = relation.schema
    key_pos = schema.key_positions()
    if keys_hot is None:
        keys_hot = store.scratch.get("keys_collected", False)
    collected = False
    for constant in constants:
        plan = _compile_constant(store, constant)
        if plan is None:
            continue
        if vectorize:
            hits = _constant_hits_numpy(*plan).tolist()
        else:
            hits = _constant_hits_python(*plan)
        if not hits:
            continue
        report_pos = schema.positions(constant.report_lhs)
        for values in set(_project_rows(rows, hits, report_pos)):
            report.add(
                Violation(
                    cfd=constant.source,
                    lhs_attributes=constant.report_lhs,
                    lhs_values=values,
                )
            )
        if collect_tuples:
            if vectorize:
                _collect_keys_vectorized(
                    report, store, rows, key_pos, hits, keys_hot
                )
                collected = True
            else:
                _collect_keys(report, rows, hits, key_pos)
    if collected:
        store.scratch["keys_collected"] = True
    return report


# -- variable normal forms ----------------------------------------------------


def _variable_conflicts_python(x_key, y_key, matched):
    """Conflicting X-group ordinals by the per-row fold over code lists."""
    n_groups = x_key.n_groups
    first_y = [-1] * n_groups
    conflict = bytearray(n_groups)
    y_codes = y_key.codes
    for i, g in enumerate(x_key.codes):
        if not matched[g]:
            continue
        y = y_codes[i]
        f = first_y[g]
        if f < 0:
            first_y[g] = y
        elif f != y:
            conflict[g] = 1
    if not any(conflict):
        return []
    return [g for g in range(n_groups) if conflict[g]]


def _variable_conflicts_numpy(x_key, y_key, matched):
    """Conflicting X-group ordinals by a sort-free group-reduce.

    One scatter (last write wins) elects a representative Y code per
    σ-matched X group; a group takes at least two distinct Y codes iff some
    of its rows disagrees with the representative.  Three passes over the
    code arrays, no sorting, no hashing.
    """
    x = x_key.codes_array()
    y = y_key.codes_array()
    matched_arr = _np.fromiter(matched, dtype=bool, count=x_key.n_groups)
    if matched_arr.all():
        xs, ys = x, y
    else:
        keep = matched_arr[x]
        xs = x[keep]
        ys = y[keep]
    representative = _np.empty(x_key.n_groups, dtype=ys.dtype)
    representative[xs] = ys  # unmatched groups keep garbage, never read
    conflict = _np.zeros(x_key.n_groups, dtype=bool)
    conflict[xs[ys != representative[xs]]] = True
    return _np.nonzero(conflict)[0].tolist()


def group_segments(codes):
    """Segment an ``int`` code array into per-group contiguous runs.

    The shared kernel behind the vectorized delta folds: one stable
    argsort brings equal codes together, then the run boundaries fall out
    of a single vectorized comparison.  Returns ``(order, starts, ends)``
    — ``order[starts[k]:ends[k]]`` are the original positions of the
    ``k``-th distinct code, and because codes are first-seen ordinals
    everywhere in this library, segments come back in first-seen order,
    exactly like a row-at-a-time fold would visit the groups.
    """
    order = _np.argsort(codes, kind="stable")
    ordered = codes[order]
    bounds = _np.nonzero(ordered[1:] != ordered[:-1])[0] + 1
    edges = bounds.tolist()
    return order, [0, *edges], [*edges, len(ordered)]


def _collect_keys_vectorized(
    report: ViolationReport,
    store: ColumnStore,
    rows: Sequence[tuple],
    key_pos: tuple[int, ...],
    ids,
    use_key_column: bool,
) -> None:
    """Key collection for the vectorized folds, adapting to store reuse.

    Decoding through the key :class:`KeyColumn`'s pre-built value tuples
    makes repeat detections allocation-free, but building that column costs
    one pass over the relation — a loss for one-shot runs.  The scans pass
    ``use_key_column=False`` on the first collecting detection over a store
    and leave a breadcrumb in ``store.scratch``; from the second detection
    on (the columnar caches are warm, the store is evidently being reused)
    the key column pays for itself.
    """
    if use_key_column:
        key_column = store.key_column(store.schema.key)
        codes = key_column.codes_array()[ids]
        report.tuple_keys.update(
            map(key_column.values.__getitem__, codes.tolist())
        )
    else:
        _collect_keys(
            report,
            rows,
            ids if isinstance(ids, list) else ids.tolist(),
            key_pos,
        )


def _scan_variables(
    relation: Relation,
    variables: Sequence[tuple[VariableCFD, PatternIndex]],
    collect_tuples: bool,
    vectorize: bool = False,
    keys_hot: bool | None = None,
) -> ViolationReport:
    report = ViolationReport()
    rows = relation.rows
    if not rows or not variables:
        return report
    store = column_store(relation)
    key_pos = relation.schema.key_positions()
    if keys_hot is None:
        keys_hot = store.scratch.get("keys_collected", False)
    collected = False
    for variable, index in variables:
        x_key = store.key_column(variable.lhs)
        y_key = store.key_column(variable.rhs)
        # σ membership once per distinct X combination, not per row
        matched = [index.matches_any(values) for values in x_key.values]
        if vectorize:
            conflicting = _variable_conflicts_numpy(x_key, y_key, matched)
        else:
            conflicting = _variable_conflicts_python(x_key, y_key, matched)
        if not conflicting:
            continue
        for g in conflicting:
            report.add(
                Violation(
                    cfd=variable.source,
                    lhs_attributes=variable.lhs,
                    lhs_values=x_key.values[g],
                )
            )
        if not collect_tuples:
            continue
        # every member of a conflicting group is a violating tuple
        if vectorize:
            mask = _np.zeros(x_key.n_groups, dtype=bool)
            mask[conflicting] = True
            ids = _np.nonzero(mask[x_key.codes_array()])[0]
            _collect_keys_vectorized(
                report, store, rows, key_pos, ids, keys_hot
            )
            collected = True
        else:
            in_conflict = bytearray(x_key.n_groups)
            for g in conflicting:
                in_conflict[g] = 1
            ids = [i for i, g in enumerate(x_key.codes) if in_conflict[g]]
            _collect_keys(report, rows, ids, key_pos)
    if collected:
        store.scratch["keys_collected"] = True
    return report


# -- public API ---------------------------------------------------------------


def detect_constants(
    relation: Relation,
    constants: Sequence[ConstantCFD],
    collect_tuples: bool = True,
    vectorize: bool | None = None,
) -> ViolationReport:
    """Violations of several constant normal forms, over the columnar store.

    ``vectorize`` picks the fold implementation (``None`` auto-selects, see
    :func:`_resolve_vectorize`).
    """
    return _scan_constants(
        relation,
        constants,
        collect_tuples,
        _resolve_vectorize(vectorize, relation),
    )


def detect_variables(
    relation: Relation,
    variables: Sequence[VariableCFD],
    collect_tuples: bool = True,
    vectorize: bool | None = None,
) -> ViolationReport:
    """Violations of several variable normal forms, over the columnar store.

    ``vectorize`` picks the fold implementation (``None`` auto-selects, see
    :func:`_resolve_vectorize`).
    """
    return _scan_variables(
        relation,
        [(variable, PatternIndex(variable.patterns)) for variable in variables],
        collect_tuples,
        _resolve_vectorize(vectorize, relation),
    )


class FusedDetector:
    """Σ compiled once — normal forms and σ pattern indexes — then evaluated
    against any number of relations.

    The per-relation columnar state lives on the relations themselves, so a
    detector instance is stateless across calls and cheap to share.
    """

    __slots__ = ("cfds", "normalized", "_constants", "_variables")

    def __init__(self, cfds: CFD | Iterable[CFD]) -> None:
        if isinstance(cfds, CFD):
            cfds = [cfds]
        self.cfds = list(cfds)
        self.normalized = normalize_all(self.cfds)
        self._constants = [
            constant for nf in self.normalized for constant in nf.constants
        ]
        self._variables = [
            (variable, PatternIndex(variable.patterns))
            for nf in self.normalized
            for variable in nf.variables
        ]

    def detect(
        self,
        relation: Relation,
        collect_tuples: bool = True,
        vectorize: bool | None = None,
        parallel: int | bool | None = None,
    ) -> ViolationReport:
        """``Vioπ(Σ, D)`` plus violating tuple keys, fused over one encoding
        pass of ``relation``.

        ``vectorize`` selects the fold implementation: ``True`` the
        numpy kernels, ``False`` the pure-Python ones, ``None`` (default)
        auto-selects (see :func:`_resolve_vectorize`).  ``parallel``
        (default: the ``REPRO_WORKERS`` environment) fans the per-normal-
        form folds out over a thread pool when there is more than one form;
        the per-form reports merge in form order, so the result is
        bit-identical to a serial run (the folds share the relation's
        columnar caches, which is why this tier always uses threads — see
        :mod:`repro.core.parallel`).
        """
        from .parallel import parallel_enabled, parallel_map

        vectorize = _resolve_vectorize(vectorize, relation)
        # resolve the key-collection breadcrumb once per call: both scans of
        # a first detection must take the one-shot path even if the constant
        # scan collects (and flips the flag) before the variable scan runs
        keys_hot = column_store(relation).scratch.get("keys_collected", False)
        n_forms = len(self._constants) + len(self._variables)
        if relation.rows and n_forms > 1 and parallel_enabled(parallel):
            def scan_form(form):
                if isinstance(form, ConstantCFD):
                    return _scan_constants(
                        relation, [form], collect_tuples, vectorize, keys_hot
                    )
                return _scan_variables(
                    relation, [form], collect_tuples, vectorize, keys_hot
                )

            forms = list(self._constants) + list(self._variables)
            return ViolationReport.union(
                parallel_map(scan_form, forms, workers=parallel)
            )
        report = _scan_constants(
            relation, self._constants, collect_tuples, vectorize, keys_hot
        )
        return report.merge(
            _scan_variables(
                relation, self._variables, collect_tuples, vectorize, keys_hot
            )
        )


def fused_detect(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    vectorize: bool | None = None,
    parallel: int | bool | None = None,
) -> ViolationReport:
    """One-shot fused detection (compile Σ, then :meth:`FusedDetector.detect`)."""
    return FusedDetector(cfds).detect(relation, collect_tuples, vectorize, parallel)
