"""Fused single-pass detection of a whole CFD set Σ over the columnar backend.

The reference detector (:func:`repro.core.detection.detect_violations_reference`)
replays the SQL plan of [2] literally: one scan of the row tuples per
constant normal form, one scan plus one hash GROUP BY per variable normal
form — O(|Σ| · |D|) passes that re-materialize Python tuples and rebuild
hash tables every time.  This module is the same mathematics restructured
so each row tuple is *touched once*:

1. **One pass over the tuples.**  The relation's cached
   :class:`~repro.relational.columnar.ColumnStore` dictionary-encodes each
   referenced attribute the first time it is needed; that encoding scan is
   the only place raw row tuples are hashed.  Composite
   :class:`~repro.relational.columnar.KeyColumn` views assign every row the
   ordinal of its distinct X (and Y) combination, shared by every normal
   form with the same attribute list — and shared with ``group_by``,
   ``join`` and ``HashIndex``, and across repeated detections, because the
   store is cached on the immutable relation.

2. **Per-form folds over integer codes.**  Each constant normal form
   compiles to per-column *code* tests (a pattern constant missing from a
   column proves no row can match, so the form drops out entirely; an eCFD
   predicate is evaluated once per distinct value, never per row).  Each
   variable normal form probes its :class:`PatternIndex` once per distinct
   X group — the shared σ trie of Section IV-B — and folds rows into
   per-(CFD, X-group) conflict states: first RHS code seen, conflict flag,
   member rows.  Per (row, matching form) the work is a couple of list
   lookups — no tuple construction, no value hashing.

The output is bit-for-bit the reference detector's :class:`ViolationReport`
(violations *and* violating tuple keys), which the property-based suite
asserts on random relations and CFD sets.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Sequence

from ..relational import Relation
from ..relational.columnar import ColumnStore, column_store
from .cfd import CFD, matches
from .epatterns import is_predicate
from .normalize import (
    ConstantCFD,
    PatternIndex,
    VariableCFD,
    normalize_all,
)
from .violations import Violation, ViolationReport


def _project_rows(
    rows: Sequence[tuple], ids: Sequence[int], positions: tuple[int, ...]
):
    """Iterate ``rows[i][positions]`` tuples for ``i`` in ``ids``, C-speed.

    ``itemgetter`` with several positions yields the projection tuples
    directly; a single position is wrapped through one-iterable ``zip`` to
    get 1-tuples without a Python-level loop.
    """
    fetched = map(rows.__getitem__, ids)
    if len(positions) == 1:
        return zip(map(itemgetter(positions[0]), fetched))
    return map(itemgetter(*positions), fetched)


def _collect_keys(
    report: ViolationReport,
    rows: Sequence[tuple],
    ids: Sequence[int],
    key_pos: tuple[int, ...],
) -> None:
    """Add the key projections of the given violating rows to the report."""
    if ids:
        report.tuple_keys.update(_project_rows(rows, ids, key_pos))


# -- constant normal forms ----------------------------------------------------


def _compile_constant(store: ColumnStore, constant: ConstantCFD):
    """Compile one constant form to code-level tests, or ``None`` if it can
    never fire on this relation (a required constant is absent, or no value
    of the RHS column violates the pattern)."""
    checks = []
    for attr, value in zip(constant.lhs, constant.values):
        column = store.column(attr)
        if is_predicate(value):
            allowed = frozenset(
                code for code, v in enumerate(column.values) if value.matches(v)
            )
        else:
            code = column.code_of.get(value)
            allowed = frozenset((code,)) if code is not None else frozenset()
        if not allowed:
            return None
        checks.append((column.codes, allowed))
    rhs_column = store.column(constant.rhs_attr)
    bad = frozenset(
        code
        for code, v in enumerate(rhs_column.values)
        if not matches(v, constant.rhs_value)
    )
    if not bad:
        return None
    return checks, rhs_column.codes, bad


def _scan_constants(
    relation: Relation,
    constants: Sequence[ConstantCFD],
    collect_tuples: bool,
) -> ViolationReport:
    report = ViolationReport()
    rows = relation.rows
    if not rows or not constants:
        return report
    store = column_store(relation)
    schema = relation.schema
    key_pos = schema.key_positions()
    for constant in constants:
        plan = _compile_constant(store, constant)
        if plan is None:
            continue
        checks, rhs_codes, bad = plan
        hits: list[int] = []
        if checks:
            first_codes, first_allowed = checks[0]
            rest = checks[1:]
            for i, code in enumerate(first_codes):
                if code not in first_allowed:
                    continue
                for codes, allowed in rest:
                    if codes[i] not in allowed:
                        break
                else:
                    if rhs_codes[i] in bad:
                        hits.append(i)
        else:  # all-wildcard LHS: the pattern conditions every row
            hits = [i for i, code in enumerate(rhs_codes) if code in bad]
        if not hits:
            continue
        report_pos = schema.positions(constant.report_lhs)
        for values in set(_project_rows(rows, hits, report_pos)):
            report.add(
                Violation(
                    cfd=constant.source,
                    lhs_attributes=constant.report_lhs,
                    lhs_values=values,
                )
            )
        if collect_tuples:
            _collect_keys(report, rows, hits, key_pos)
    return report


# -- variable normal forms ----------------------------------------------------


def _scan_variables(
    relation: Relation,
    variables: Sequence[tuple[VariableCFD, PatternIndex]],
    collect_tuples: bool,
) -> ViolationReport:
    report = ViolationReport()
    rows = relation.rows
    if not rows or not variables:
        return report
    store = column_store(relation)
    key_pos = relation.schema.key_positions()
    for variable, index in variables:
        x_key = store.key_column(variable.lhs)
        y_key = store.key_column(variable.rhs)
        # σ membership once per distinct X combination, not per row
        matched = [index.matches_any(values) for values in x_key.values]
        n_groups = x_key.n_groups
        first_y = [-1] * n_groups
        conflict = bytearray(n_groups)
        x_codes = x_key.codes
        y_codes = y_key.codes
        for i, g in enumerate(x_codes):
            if not matched[g]:
                continue
            y = y_codes[i]
            f = first_y[g]
            if f < 0:
                first_y[g] = y
            elif f != y:
                conflict[g] = 1
        if not any(conflict):
            continue
        for g in range(n_groups):
            if conflict[g]:
                report.add(
                    Violation(
                        cfd=variable.source,
                        lhs_attributes=variable.lhs,
                        lhs_values=x_key.values[g],
                    )
                )
        if collect_tuples:
            # every member of a conflicting group is a violating tuple
            ids = [i for i, g in enumerate(x_codes) if conflict[g]]
            _collect_keys(report, rows, ids, key_pos)
    return report


# -- public API ---------------------------------------------------------------


def detect_constants(
    relation: Relation,
    constants: Sequence[ConstantCFD],
    collect_tuples: bool = True,
) -> ViolationReport:
    """Violations of several constant normal forms, over the columnar store."""
    return _scan_constants(relation, constants, collect_tuples)


def detect_variables(
    relation: Relation,
    variables: Sequence[VariableCFD],
    collect_tuples: bool = True,
) -> ViolationReport:
    """Violations of several variable normal forms, over the columnar store."""
    return _scan_variables(
        relation,
        [(variable, PatternIndex(variable.patterns)) for variable in variables],
        collect_tuples,
    )


class FusedDetector:
    """Σ compiled once — normal forms and σ pattern indexes — then evaluated
    against any number of relations.

    The per-relation columnar state lives on the relations themselves, so a
    detector instance is stateless across calls and cheap to share.
    """

    __slots__ = ("cfds", "normalized", "_constants", "_variables")

    def __init__(self, cfds: CFD | Iterable[CFD]) -> None:
        if isinstance(cfds, CFD):
            cfds = [cfds]
        self.cfds = list(cfds)
        self.normalized = normalize_all(self.cfds)
        self._constants = [
            constant for nf in self.normalized for constant in nf.constants
        ]
        self._variables = [
            (variable, PatternIndex(variable.patterns))
            for nf in self.normalized
            for variable in nf.variables
        ]

    def detect(
        self, relation: Relation, collect_tuples: bool = True
    ) -> ViolationReport:
        """``Vioπ(Σ, D)`` plus violating tuple keys, fused over one encoding
        pass of ``relation``."""
        report = _scan_constants(relation, self._constants, collect_tuples)
        return report.merge(
            _scan_variables(relation, self._variables, collect_tuples)
        )


def fused_detect(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
) -> ViolationReport:
    """One-shot fused detection (compile Σ, then :meth:`FusedDetector.detect`)."""
    return FusedDetector(cfds).detect(relation, collect_tuples)
