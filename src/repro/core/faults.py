"""Deterministic fault injection for the distributed scheduler.

The paper's setting — detection over *fragmented, distributed* data —
treats sites and links as real failure domains, yet a simulation is only
honest about that if every failure mode is **reproducible**: a worker
crash that appears once per thousand CI runs is a flake, not a test.
This module makes failures first-class and deterministic:

* a :class:`FaultPlan` maps **order sequence numbers** (a global,
  monotonically increasing counter of work orders the scheduler
  dispatches — every send *attempt* consumes one) to fault kinds:

  - ``crash``  — the worker process serving the order exits hard
    (``os._exit``), exactly like a killed site;
  - ``drop``   — the worker consumes the order but never answers, like a
    lost response payload (the parent's per-order timeout fires);
  - ``corrupt`` — the worker flips the CRC32 checksum on its shipped
    summary, so the coordinator-side verification fails and triggers a
    single re-request;
  - ``slow``   — the worker sleeps ``latency`` seconds before answering,
    a straggler site.

  In *thread* mode (no processes, no wire) every kind degenerates to the
  matching typed :class:`WorkerFailure` raised at the order's position,
  so the supervision ladder — bounded retry, then serial fallback — is
  exercised identically in both modes.  Serial execution never consults
  the plan: the degradation ladder's last rung must always succeed.

* activation via the ``REPRO_FAULTS`` environment variable or the
  :func:`install_fault_plan` / :func:`fault_plan` API.  The spec grammar
  is comma-separated directives::

      REPRO_FAULTS="crash@3,corrupt@7,slow@2,drop@11,latency=0.005"
      REPRO_FAULTS="seed=13,rate=0.05"          # seeded random faults
      REPRO_FAULTS="seed=13,rate=0.05,kinds=crash|drop"
      REPRO_FAULTS="torn-write@2,fsync-fail@5"  # disk faults (WAL appends)

  Explicit ``kind@order`` entries fire **once** (so a retried order
  succeeds and recovery is observable); seeded random faults draw
  per-order from ``random.Random(f"{seed}|{order}")`` — deterministic
  for a given seed whatever the host or interleaving.

* the typed error ladder every scheduler failure resolves to:
  :class:`WorkerCrashError`, :class:`OrderTimeoutError`,
  :class:`PayloadCorruptionError` — all :class:`WorkerFailure`, which is
  what callers (and the graceful-degradation path in
  :func:`repro.core.parallel.map_fragments`) catch.  Application errors
  raised by the task function are *not* wrapped: a detection bug must
  not masquerade as an infrastructure failure.

* :data:`STATS`, a process-wide counter of recoveries (respawns,
  re-requests, timeouts, degraded runs) that the chaos suite and the
  ``robustness`` bench legs assert against — recovery must be visible,
  not just survivable.
"""

from __future__ import annotations

import os
import random
import threading
from collections import Counter
from typing import Iterable, Mapping

#: fault kinds a plan can inject, in priority order when several target
#: the same order.
FAULT_KINDS = ("crash", "drop", "corrupt", "slow")

#: disk fault kinds, keyed by an independent **disk order** counter (one
#: per WAL append) so scheduler chaos and durability chaos compose in one
#: plan without renumbering each other:
#:
#: - ``torn-write``  — the append writes only a prefix of the record
#:   frame, then fails, exactly like a crash mid-``write(2)``;
#: - ``bit-flip``    — the record is written whole but one payload byte
#:   is flipped *after* the CRC was computed: silent corruption that only
#:   recovery's checksum scan can see;
#: - ``fsync-fail``  — the append's ``fsync`` raises, like a dying disk.
DISK_FAULT_KINDS = ("torn-write", "bit-flip", "fsync-fail")

#: resident-service fault kinds, each on its own order counter so serve
#: chaos composes with scheduler and disk chaos in one plan:
#:
#: - ``fold-fail``    — the Nth session fold attempt raises before any
#:   state mutates (one order per fold attempt); drives the per-session
#:   circuit breaker deterministically;
#: - ``verify-drift`` — the Nth *scrubber* integrity check reports drift
#:   (one order per scrub verify); drives the quarantine path without
#:   needing to actually corrupt resident state.
SERVE_FAULT_KINDS = ("fold-fail", "verify-drift")

#: process-wide recovery statistics: ``respawns``, ``re_requests``,
#: ``timeouts``, ``crashes``, ``retries``, ``degraded_runs``.  Tests and
#: the robustness bench snapshot it before/after a run.
STATS: Counter = Counter()


class WorkerFailure(RuntimeError):
    """Base of the scheduler's *infrastructure* failures.

    Raised when a worker process, pipe or payload failed — never when the
    task function itself raised (application errors propagate unwrapped).
    :func:`repro.core.parallel.map_fragments` catches exactly this type
    for its graceful-degradation ladder.
    """


class WorkerCrashError(WorkerFailure):
    """A worker process died (sentinel/exitcode or EOF on its pipe)."""


class OrderTimeoutError(WorkerFailure):
    """A work order's per-order deadline expired without an answer."""


class PayloadCorruptionError(WorkerFailure):
    """A shipped summary failed its CRC32 check (even after re-request)."""


class FaultSpecError(ValueError):
    """An unparsable ``REPRO_FAULTS`` specification."""


class DiskFaultInjected(OSError):
    """An injected disk fault surfaced (torn write / failed fsync).

    Deliberately an :class:`OSError`: the durability layer must treat an
    injected torn write or fsync failure exactly like the real one, so
    chaos tests exercise the same handling path production errors take.
    """


class FoldFaultInjected(RuntimeError):
    """An injected session fold failure (``fold-fail@N``).

    Deliberately a plain :class:`RuntimeError` raised *before* the
    detector mutates: the serve layer must treat it exactly like a real
    mid-fold application error — transactional rollback, per-ticket
    fallback, circuit-breaker accounting — so chaos tests exercise the
    production failure path, not a special injected one.
    """


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by order number.

    ``crash`` / ``drop`` / ``corrupt`` / ``slow`` are iterables of order
    sequence numbers; each explicit entry fires at most once.  ``rate``
    adds seeded random faults on top: every order draws from
    ``random.Random(f"{seed}|{order}")`` and faults with probability
    ``rate``, choosing uniformly among ``kinds``.  ``latency`` is the
    sleep injected by ``slow`` faults.  Thread-safe: the scheduler may
    consult one plan from several threads.
    """

    def __init__(
        self,
        crash=(),
        drop=(),
        corrupt=(),
        slow=(),
        latency: float = 0.002,
        rate: float = 0.0,
        seed: int = 0,
        kinds=FAULT_KINDS,
        disk: Mapping[str, Iterable[int]] | None = None,
        serve: Mapping[str, Iterable[int]] | None = None,
    ) -> None:
        self.crash = frozenset(crash)
        self.drop = frozenset(drop)
        self.corrupt = frozenset(corrupt)
        self.slow = frozenset(slow)
        self.disk = {kind: frozenset() for kind in DISK_FAULT_KINDS}
        for kind, orders in (disk or {}).items():
            if kind not in DISK_FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown disk fault kind {kind!r}; use {DISK_FAULT_KINDS}"
                )
            self.disk[kind] = frozenset(orders)
        self.serve = {kind: frozenset() for kind in SERVE_FAULT_KINDS}
        for kind, orders in (serve or {}).items():
            if kind not in SERVE_FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown serve fault kind {kind!r}; "
                    f"use {SERVE_FAULT_KINDS}"
                )
            self.serve[kind] = frozenset(orders)
        self.latency = float(latency)
        self.rate = float(rate)
        self.seed = seed
        self.kinds = tuple(kinds)
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise FaultSpecError(
                f"unknown fault kinds {sorted(unknown)}; use {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError("fault rate must be in [0, 1]")
        self._next = 0
        self._disk_next = 0
        #: independent serve-side counters: one per session fold attempt
        #: and one per scrubber verify, so ``fold-fail@3`` means the 4th
        #: fold whatever the scheduler or the WAL are doing
        self._fold_next = 0
        self._verify_next = 0
        self._fired: set[tuple[str, int]] = set()
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (see module doc)."""
        orders: dict[str, list[int]] = {kind: [] for kind in FAULT_KINDS}
        disk_orders: dict[str, list[int]] = {
            kind: [] for kind in DISK_FAULT_KINDS
        }
        serve_orders: dict[str, list[int]] = {
            kind: [] for kind in SERVE_FAULT_KINDS
        }
        options: dict[str, object] = {}
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            if "@" in part:
                kind, _, position = part.partition("@")
                kind = kind.strip()
                if (
                    kind not in orders
                    and kind not in disk_orders
                    and kind not in serve_orders
                ):
                    raise FaultSpecError(
                        f"unknown fault kind {kind!r} in REPRO_FAULTS "
                        f"entry {part!r}; use one of "
                        f"{FAULT_KINDS + DISK_FAULT_KINDS + SERVE_FAULT_KINDS}"
                    )
                try:
                    if kind in orders:
                        target = orders
                    elif kind in disk_orders:
                        target = disk_orders
                    else:
                        target = serve_orders
                    target[kind].append(int(position))
                except ValueError:
                    raise FaultSpecError(
                        f"fault order must be an integer in {part!r}"
                    ) from None
            elif "=" in part:
                name, _, value = part.partition("=")
                name = name.strip()
                if name == "kinds":
                    options["kinds"] = tuple(
                        k.strip() for k in value.split("|") if k.strip()
                    )
                elif name in ("latency", "rate"):
                    try:
                        options[name] = float(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"{name} must be a float in {part!r}"
                        ) from None
                elif name == "seed":
                    try:
                        options["seed"] = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"seed must be an integer in {part!r}"
                        ) from None
                else:
                    raise FaultSpecError(
                        f"unknown REPRO_FAULTS option {name!r} in {part!r}"
                    )
            else:
                raise FaultSpecError(
                    f"cannot parse REPRO_FAULTS entry {part!r}; expected "
                    "kind@order or option=value"
                )
        return cls(
            crash=orders["crash"],
            drop=orders["drop"],
            corrupt=orders["corrupt"],
            slow=orders["slow"],
            disk=disk_orders,
            serve=serve_orders,
            **options,
        )

    def next_order(self) -> int:
        """Allot the next global order sequence number (one per attempt)."""
        with self._lock:
            order = self._next
            self._next = order + 1
            return order

    def fault_for(self, order: int) -> tuple[str, float] | None:
        """The fault to inject at ``order`` (one-shot), or ``None``.

        Returns ``(kind, latency)`` so the directive crosses a pipe as
        one small tuple.  Explicit entries take priority over the seeded
        random draw and fire at most once each — a retried order (which
        consumes a *fresh* sequence number anyway) can always succeed.
        """
        with self._lock:
            for kind in FAULT_KINDS:
                if order in getattr(self, kind):
                    if (kind, order) in self._fired:
                        continue
                    self._fired.add((kind, order))
                    return (kind, self.latency)
            if self.rate:
                rng = random.Random(f"{self.seed}|{order}")
                if rng.random() < self.rate:
                    kind = self.kinds[rng.randrange(len(self.kinds))]
                    return (kind, self.latency)
        return None

    def next_disk_order(self) -> int:
        """Allot the next disk order number (one per WAL append attempt).

        An independent counter from :meth:`next_order`: scheduler faults
        and disk faults in one plan target their own sequences, so
        ``crash@3,torn-write@3`` means the 4th work order *and* the 4th
        WAL append, not a collision.
        """
        with self._lock:
            order = self._disk_next
            self._disk_next = order + 1
            return order

    def disk_fault_for(self, order: int) -> str | None:
        """The disk fault kind to inject at disk ``order`` (one-shot)."""
        with self._lock:
            for kind in DISK_FAULT_KINDS:
                if order in self.disk[kind]:
                    if (kind, order) in self._fired:
                        continue
                    self._fired.add((kind, order))
                    return kind
        return None

    def next_fold_order(self) -> int:
        """Allot the next serve fold order number (one per fold attempt)."""
        with self._lock:
            order = self._fold_next
            self._fold_next = order + 1
            return order

    def fold_fault_for(self, order: int) -> bool:
        """Whether the fold at serve ``order`` must fail (one-shot)."""
        with self._lock:
            if order in self.serve["fold-fail"]:
                if ("fold-fail", order) not in self._fired:
                    self._fired.add(("fold-fail", order))
                    return True
        return False

    def next_verify_order(self) -> int:
        """Allot the next scrub verify order number (one per check)."""
        with self._lock:
            order = self._verify_next
            self._verify_next = order + 1
            return order

    def verify_fault_for(self, order: int) -> bool:
        """Whether the scrub check at ``order`` reports drift (one-shot)."""
        with self._lock:
            if order in self.serve["verify-drift"]:
                if ("verify-drift", order) not in self._fired:
                    self._fired.add(("verify-drift", order))
                    return True
        return False

    def reset(self) -> None:
        """Forget fired entries and restart every order counter."""
        with self._lock:
            self._next = 0
            self._disk_next = 0
            self._fold_next = 0
            self._verify_next = 0
            self._fired.clear()

    def __repr__(self) -> str:
        parts = [
            f"{kind}@{order}"
            for kind in FAULT_KINDS
            for order in sorted(getattr(self, kind))
        ]
        parts.extend(
            f"{kind}@{order}"
            for kind in DISK_FAULT_KINDS
            for order in sorted(self.disk[kind])
        )
        parts.extend(
            f"{kind}@{order}"
            for kind in SERVE_FAULT_KINDS
            for order in sorted(self.serve[kind])
        )
        if self.rate:
            parts.append(f"rate={self.rate} seed={self.seed}")
        return f"FaultPlan({', '.join(parts) or 'empty'})"


#: the API-installed plan; takes priority over ``REPRO_FAULTS``.
_ACTIVE: FaultPlan | None = None
#: parse cache for the environment plan: (spec string, plan).  The plan
#: object is stateful (fired set, order counter), so re-parsing per call
#: would silently reset it — the cache keys on the exact spec text.
_ENV_PLAN: tuple[str, FaultPlan] | None = None


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide (``None`` uninstalls); returns it."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


class fault_plan:
    """Context manager: install a plan for a ``with`` block, then restore."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        self._previous = _ACTIVE
        install_fault_plan(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        install_fault_plan(self._previous)


def active_plan() -> FaultPlan | None:
    """The plan in force: the API-installed one, else ``REPRO_FAULTS``."""
    if _ACTIVE is not None:
        return _ACTIVE
    global _ENV_PLAN
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        _ENV_PLAN = None
        return None
    if _ENV_PLAN is None or _ENV_PLAN[0] != spec:
        _ENV_PLAN = (spec, FaultPlan.parse(spec))
    return _ENV_PLAN[1]


def failure_for(kind: str, order: int) -> WorkerFailure:
    """The typed failure a fault ``kind`` resolves to (thread-mode path)."""
    if kind == "crash":
        return WorkerCrashError(f"injected worker crash at order {order}")
    if kind == "drop":
        return OrderTimeoutError(f"injected dropped payload at order {order}")
    return PayloadCorruptionError(
        f"injected payload corruption at order {order}"
    )


def disk_failure_for(kind: str, order: int) -> DiskFaultInjected:
    """The :class:`OSError` an injected disk fault surfaces as."""
    return DiskFaultInjected(f"injected {kind} at disk order {order}")
