"""Centralized CFD violation detection (the SQL technique of [2]).

Given a set Σ of CFDs and a relation ``D`` held at one site, [2] generates a
fixed number of SQL queries that compute ``Vio(Σ, D)``: per CFD, a scan
catches single-tuple violations of the constant normal forms, and a GROUP BY
on ``X`` over the tuples matching the pattern tableau catches pairwise
violations of the variable normal forms.  This module is the same plan on
our relational engine; it is both the baseline detector and the local
checking step every distributed algorithm runs at coordinator sites.

Four engines implement the plan:

* the **reference** engine below — one scan per normal form, row tuples
  and hash tables rebuilt per query.  It is the executable spec every
  other detector (fused, fused-numpy, distributed, SQL) is tested
  against;
* the **fused** engine (:mod:`repro.core.fused`) — a single pass over the
  relation's cached columnar encoding evaluating all of Σ at once, with
  pure-Python per-form folds;
* the **fused-numpy** engine — the same single pass with the folds
  vectorized over the store's ``int32`` code arrays (boolean-mask
  constant tests, sorted group-reduce conflict detection).  Requires the
  optional numpy dependency (the ``fast`` extra);
* the **sql** engine (:mod:`repro.core.sql`) — the paper's technique run
  *literally*: the relation loaded once into a persistent sqlite3 (or
  optional DuckDB, the ``sql`` extra) database and all of normalized Σ
  compiled into one parameterized statement set, result rows decoded back
  into a report.  Backend selection via ``REPRO_SQL_BACKEND``.

:func:`detect_violations` dispatches between them: pass
``engine="reference" | "fused" | "fused-numpy" | "sql"``, or set the
``REPRO_ENGINE`` environment variable to the same values (the engine
conformance matrix in the test suite does exactly that).  With neither
given, detection auto-selects: fused-numpy when numpy is importable (and
not disabled via ``REPRO_NUMPY=0``) and the relation is large enough to
amortize array overhead, fused otherwise.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Sequence

from ..relational import Relation
from .cfd import CFD
from .normalize import (
    ConstantCFD,
    NormalizedCFD,
    PatternIndex,
    VariableCFD,
    normalize_all,
)
from .violations import Violation, ViolationReport


def detect_constant(
    relation: Relation,
    constant: ConstantCFD,
    collect_tuples: bool = True,
) -> ViolationReport:
    """Scan for single-tuple violations of one constant normal form."""
    schema = relation.schema
    cond_pos = schema.positions(constant.lhs)
    rhs_pos = schema.position(constant.rhs_attr)
    report_pos = schema.positions(constant.report_lhs)
    key_pos = schema.key_positions()

    report = ViolationReport()
    for row in relation.rows:
        if not constant.violated_by(
            tuple(row[p] for p in cond_pos), row[rhs_pos]
        ):
            continue
        report.add(
            Violation(
                cfd=constant.source,
                lhs_attributes=constant.report_lhs,
                lhs_values=tuple(row[p] for p in report_pos),
            )
        )
        if collect_tuples:
            report.add_tuple_key(tuple(row[p] for p in key_pos))
    return report


def detect_variable(
    relation: Relation,
    variable: VariableCFD,
    collect_tuples: bool = True,
) -> ViolationReport:
    """GROUP BY ``X`` detection of pairwise violations of a variable CFD.

    A group of tuples agreeing on ``X`` (and matching some pattern row)
    violates iff it takes at least two distinct values on some RHS
    attribute.
    """
    schema = relation.schema
    lhs_pos = schema.positions(variable.lhs)
    rhs_pos = schema.positions(variable.rhs)
    key_pos = schema.key_positions()
    index = PatternIndex(variable.patterns)

    # x-value -> (first rhs tuple, conflicting?)  plus optional member keys
    groups: dict[tuple, list] = {}
    match_cache: dict[tuple, bool] = {}
    for row in relation.rows:
        x = tuple(row[p] for p in lhs_pos)
        matched = match_cache.get(x)
        if matched is None:
            matched = index.matches_any(x)
            match_cache[x] = matched
        if not matched:
            continue
        y = tuple(row[p] for p in rhs_pos)
        state = groups.get(x)
        if state is None:
            groups[x] = [y, False, [tuple(row[p] for p in key_pos)] if collect_tuples else None]
        else:
            if y != state[0]:
                state[1] = True
            if collect_tuples:
                state[2].append(tuple(row[p] for p in key_pos))

    report = ViolationReport()
    for x, (first_y, conflicting, keys) in groups.items():
        if not conflicting:
            continue
        report.add(
            Violation(
                cfd=variable.source,
                lhs_attributes=variable.lhs,
                lhs_values=x,
            )
        )
        if collect_tuples:
            for key in keys:
                report.add_tuple_key(key)
    return report


def detect_normalized(
    relation: Relation,
    normalized: NormalizedCFD,
    collect_tuples: bool = True,
) -> ViolationReport:
    """Violations of one CFD given in normal form."""
    report = ViolationReport()
    for constant in normalized.constants:
        report.merge(detect_constant(relation, constant, collect_tuples))
    for variable in normalized.variables:
        report.merge(detect_variable(relation, variable, collect_tuples))
    return report


def detect_violations_reference(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    parallel: int | bool | None = None,
) -> ViolationReport:
    """``Vioπ(Σ, D)`` by the literal per-normal-form SQL plan of [2].

    This is the reference oracle: the fused engine and every distributed
    algorithm must agree with it bit-for-bit (violations and tuple keys),
    which the test suite asserts both on the paper's running example and
    property-based random instances.  ``parallel`` (default: the
    ``REPRO_WORKERS`` environment) runs the per-CFD scans on a thread
    pool; reports merge in CFD order, so the answer never depends on the
    concurrency.
    """
    from .parallel import parallel_map

    if isinstance(cfds, CFD):
        cfds = [cfds]
    return ViolationReport.union(
        parallel_map(
            lambda normalized: detect_normalized(
                relation, normalized, collect_tuples
            ),
            normalize_all(cfds),
            workers=parallel,
        )
    )


#: engine names :func:`detect_violations` accepts (besides ``"auto"``).
ENGINES = ("reference", "fused", "fused-numpy", "sql")


def detect_violations(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    engine: str | None = None,
    parallel: int | bool | None = None,
) -> ViolationReport:
    """``Vioπ(Σ, D)`` (plus violating tuple keys) on a centralized relation.

    This is the library's central detection entry point: the CLI, the
    experiment harness and every distributed detector's local check land
    here.  Two orthogonal knobs select how the plan executes:

    ``engine``
        The execution backend: ``"fused"`` (single-pass columnar
        evaluation of all of Σ, pure-Python folds), ``"fused-numpy"`` (the
        same pass with vectorized folds; raises ``RuntimeError`` when
        numpy is unavailable), ``"sql"`` (the plan compiled to
        parameterized statements and run inside a persistent sqlite3 or
        DuckDB database — see :mod:`repro.core.sql`), ``"reference"``
        (one scan per normal form — the executable spec) or ``"auto"``.
        When ``None``, the
        ``REPRO_ENGINE`` environment variable decides, defaulting to
        ``"auto"`` — the fused engine with vectorized folds whenever numpy
        is active and the relation is large enough for them to pay off.
    ``parallel``
        Worker count for the per-normal-form folds (a thread pool; see
        :mod:`repro.core.parallel`).  When ``None``, the ``REPRO_WORKERS``
        environment variable decides, defaulting to serial.  Whatever the
        setting, the report is bit-identical to a serial run — the
        conformance suite asserts it per engine.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "auto")
    if engine in ("auto", "fused", "fused-numpy"):
        from .fused import fused_detect

        vectorize = {"auto": None, "fused": False, "fused-numpy": True}[engine]
        return fused_detect(relation, cfds, collect_tuples, vectorize, parallel)
    if engine == "reference":
        return detect_violations_reference(
            relation, cfds, collect_tuples, parallel
        )
    if engine == "sql":
        from .sql import detect_violations_sql

        return detect_violations_sql(
            relation, cfds, collect_tuples, parallel=parallel
        )
    raise ValueError(
        f"unknown detection engine {engine!r}; "
        f"use one of {', '.join(ENGINES)} (or 'auto')"
    )


def check_cost(n_tuples: int, n_cfds: int = 1) -> float:
    """The paper's estimate of local checking cost: ``|D| · log |D|``.

    Used by the Section III-B response-time model; scaled by the number of
    CFDs checked since each runs its own GROUP BY query.
    """
    if n_tuples <= 0:
        return 0.0
    return float(n_cfds) * n_tuples * math.log2(n_tuples + 1)
