"""Textual notation for CFDs, following the paper's examples.

Supported forms (whitespace-insensitive)::

    parse_cfd("([CC=44, zip] -> [street])")                 # cfd1 of Example 1
    parse_cfd("([CC, title] -> [salary])")                  # a plain FD (cfd3)
    parse_cfd("([CC=44, AC=131] -> [city='EDI'])")          # constant RHS (cfd4)
    parse_cfd("([CC, zip] -> [street]) with (44, _ || _), (31, _ || _)")

When ``A=value`` constants appear inside the attribute lists, they define a
single pattern tuple (constants where given, ``_`` elsewhere).  A ``with``
clause instead supplies an explicit tableau; its rows are written
``(lhs values || rhs values)`` as in the paper's Example 2.

Values: quoted tokens stay strings; unquoted all-digit tokens become ``int``;
``_`` is the wildcard.

Extended (eCFD) entries are also accepted, inline or in tableau rows::

    parse_cfd("([CC != 1, zip] -> [street])")            # negation
    parse_cfd("([price >= 100] -> [quantity])")          # range
    parse_cfd("([CC = {44|31}] -> [street])")            # disjunction
    parse_cfd("([a, b] -> [c]) with (!5, {1|2} || _)")   # tableau form
"""

from __future__ import annotations

import re

from .cfd import CFD, CFDError, PatternTuple, WILDCARD
from .epatterns import NotValue, OneOf, Range

_TOKEN = re.compile(
    r"""
    '(?P<sq>[^']*)'        # single-quoted
    | "(?P<dq>[^"]*)"      # double-quoted
    | (?P<bare>[^,()\s|]+) # bare word
    """,
    re.VERBOSE,
)


def _parse_value(token: str) -> object:
    token = token.strip()
    if token == "_":
        return WILDCARD
    if token.startswith("{") and token.endswith("}"):
        options = [t.strip() for t in token[1:-1].split("|") if t.strip()]
        if not options:
            raise CFDError(f"empty disjunction {token!r}")
        return OneOf(_parse_value(t) for t in options)
    for op in ("<=", ">=", "<", ">"):
        if token.startswith(op):
            return Range(op, _parse_value(token[len(op):]))
    if token.startswith("!") and len(token) > 1:
        return NotValue(_parse_value(token[1:]))
    if (token.startswith("'") and token.endswith("'")) or (
        token.startswith('"') and token.endswith('"')
    ):
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def _split_commas(text: str) -> list[str]:
    """Split on top-level commas, respecting quotes."""
    parts, depth, current, quote = [], 0, [], None
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


_ATTR_SPEC = re.compile(
    r"^(?P<attr>[^<>!={}\s]+)\s*(?P<op>!=|<=|>=|<|>|=)\s*(?P<value>.+)$",
    re.DOTALL,
)


def _parse_attr_specs(text: str) -> tuple[list[str], list[object]]:
    """Parse ``CC=44, AC!=1, price>=100, zip`` into names and entries."""
    attributes: list[str] = []
    entries: list[object] = []
    for part in _split_commas(text):
        if not part:
            raise CFDError(f"empty attribute entry in {text!r}")
        match = _ATTR_SPEC.match(part)
        if match:
            attributes.append(match.group("attr"))
            op = match.group("op")
            value = match.group("value").strip()
            if op == "=":
                entries.append(_parse_value(value))
            elif op == "!=":
                entries.append(NotValue(_parse_value(value)))
            else:
                entries.append(Range(op, _parse_value(value)))
        else:
            attributes.append(part.strip())
            entries.append(WILDCARD)
    return attributes, entries


def _parse_pattern_row(text: str, n_lhs: int, n_rhs: int) -> PatternTuple:
    if "||" in text:
        lhs_text, _, rhs_text = text.partition("||")
    else:
        lhs_text, rhs_text = text, ""
    lhs = [_parse_value(t) for t in _split_commas(lhs_text)]
    rhs = [_parse_value(t) for t in _split_commas(rhs_text)] if rhs_text.strip() else []
    if not rhs:
        rhs = [WILDCARD] * n_rhs
    if len(lhs) != n_lhs or len(rhs) != n_rhs:
        raise CFDError(
            f"pattern row {text!r} has {len(lhs)}‖{len(rhs)} entries, "
            f"expected {n_lhs}‖{n_rhs}"
        )
    return PatternTuple(lhs, rhs)


_CFD_RE = re.compile(
    r"""^\s*\(\s*\[(?P<lhs>[^\]]*)\]\s*->\s*\[(?P<rhs>[^\]]*)\]\s*\)
        (?:\s*(?:with|,)\s*(?P<tableau>.*))?\s*$""",
    re.VERBOSE | re.DOTALL,
)


def parse_cfd(text: str, name: str | None = None) -> CFD:
    """Parse the paper's CFD notation into a :class:`CFD`.

    Raises :class:`CFDError` on malformed input.
    """
    match = _CFD_RE.match(text)
    if not match:
        raise CFDError(f"cannot parse CFD: {text!r}")
    lhs_attrs, lhs_entries = _parse_attr_specs(match.group("lhs"))
    rhs_attrs, rhs_entries = _parse_attr_specs(match.group("rhs"))
    tableau_text = match.group("tableau")

    inline_constants = any(
        entry is not WILDCARD for entry in lhs_entries + rhs_entries
    )
    if tableau_text:
        if inline_constants:
            raise CFDError(
                "give constants either inline or in a 'with' tableau, not both: "
                f"{text!r}"
            )
        rows_text = re.findall(r"\(([^()]*)\)", tableau_text)
        if not rows_text:
            raise CFDError(f"no pattern rows found in tableau of {text!r}")
        tableau = [
            _parse_pattern_row(row, len(lhs_attrs), len(rhs_attrs))
            for row in rows_text
        ]
    else:
        tableau = [PatternTuple(lhs_entries, rhs_entries)]
    return CFD(lhs_attrs, rhs_attrs, tableau, name=name)


def format_cfd(cfd: CFD) -> str:
    """Render a CFD back to the paper-style notation."""
    header = f"([{', '.join(cfd.lhs)}] -> [{', '.join(cfd.rhs)}])"

    def fmt(value: object) -> str:
        if value is WILDCARD:
            return "_"
        if isinstance(value, str):
            return f"'{value}'"
        return str(value)

    rows = ", ".join(
        "(" + ", ".join(map(fmt, tp.lhs)) + " || " + ", ".join(map(fmt, tp.rhs)) + ")"
        for tp in cfd.tableau
    )
    return f"{header} with {rows}"
