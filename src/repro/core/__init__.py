"""The paper's primary formalism: CFDs, violations, centralized detection."""

from .cfd import (
    CFD,
    CFDError,
    PatternTuple,
    WILDCARD,
    is_wildcard,
    matches,
    satisfies,
    tuple_matches,
)
from .epatterns import NotValue, OneOf, PatternPredicate, Range, is_predicate
from .detection import (
    ENGINES,
    check_cost,
    detect_constant,
    detect_normalized,
    detect_variable,
    detect_violations,
    detect_violations_reference,
)
from .fused import (
    FusedDetector,
    detect_constants,
    detect_variables,
    fused_detect,
)
from .implication import ChaseState, Inconsistent, chase, implies, implies_all
from .normalize import (
    ConstantCFD,
    NormalizedCFD,
    PatternIndex,
    VariableCFD,
    normalize,
    normalize_all,
    pattern_index,
    sort_patterns_by_generality,
)
from .parallel import (
    FragmentPool,
    map_fragments,
    parallel_enabled,
    parallel_map,
    resolve_mode,
    resolve_workers,
)
from .parser import format_cfd, parse_cfd
from .sql import run_detection_on_sqlite, violation_sql
from .violations import Violation, ViolationReport

__all__ = [
    "CFD",
    "CFDError",
    "PatternTuple",
    "WILDCARD",
    "is_wildcard",
    "matches",
    "satisfies",
    "tuple_matches",
    "NotValue",
    "OneOf",
    "PatternPredicate",
    "Range",
    "is_predicate",
    "ENGINES",
    "check_cost",
    "detect_constant",
    "detect_constants",
    "detect_normalized",
    "detect_variable",
    "detect_variables",
    "detect_violations",
    "detect_violations_reference",
    "FusedDetector",
    "fused_detect",
    "ChaseState",
    "Inconsistent",
    "chase",
    "implies",
    "implies_all",
    "ConstantCFD",
    "NormalizedCFD",
    "PatternIndex",
    "VariableCFD",
    "normalize",
    "normalize_all",
    "pattern_index",
    "sort_patterns_by_generality",
    "FragmentPool",
    "map_fragments",
    "parallel_enabled",
    "parallel_map",
    "resolve_mode",
    "resolve_workers",
    "format_cfd",
    "run_detection_on_sqlite",
    "violation_sql",
    "parse_cfd",
    "Violation",
    "ViolationReport",
]
