"""CFD implication ``Σ |= φ`` via a two-tuple chase.

Section V characterizes locally checkable CFDs through dependency
preservation, which needs an implication test.  For CFDs over attributes
with *infinite domains* (the setting of the paper's Section V examples) the
classical two-tuple chase for FD implication generalizes soundly and
completely:

* Build a symbolic witness — two tuples that match the LHS pattern of the
  tested CFD and are otherwise unconstrained (a single tuple suffices for
  constant CFDs, which one tuple alone can violate).
* Repeatedly apply the CFDs of Σ whose preconditions are *forced* by the
  current state: a constant pattern entry fires only against a cell already
  bound to that constant; a variable CFD fires on the pair only when the
  two tuples provably agree on its whole LHS.
* ``Σ |= φ`` iff the chase forces φ's conclusion or derives a
  contradiction (then no instance satisfying Σ contains a matching
  witness, so φ holds vacuously).

Completeness argument: cells live in a union-find whose classes contain at
most one constant, and constants are canonical nodes — so two cells are
equal under the *generic* valuation (fresh distinct values per class,
avoiding all constants of Σ ∪ {φ}) iff they share a class.  The generic
instance then satisfies Σ but violates φ whenever the chase terminates
without deriving the conclusion.  With finite domains implication is
coNP-complete [2] and this test is only sound; the test suite checks the
infinite-domain behaviour against a brute-force finite-model oracle with a
sufficiently large domain.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from .cfd import CFD, is_wildcard
from .epatterns import is_predicate
from .normalize import ConstantCFD, VariableCFD, normalize


def _reject_predicates(cfds: Sequence["CFD"]) -> None:
    """eCFD predicate entries are outside the chase's scope ([17])."""
    for cfd in cfds:
        for tp in cfd.tableau:
            if any(is_predicate(v) for v in tp.lhs + tp.rhs):
                raise NotImplementedError(
                    "implication with extended (eCFD) pattern entries is "
                    f"not supported: {cfd.name}"
                )

# Union-find nodes: ("var", serial) or ("const", type-name, value)
_Node = tuple


class Inconsistent(Exception):
    """The chase merged two distinct constants: no witness instance exists."""


class ChaseState:
    """Two symbolic tuples over a set of attributes, with a union-find.

    Shared infrastructure of the implication test and the dependency-
    preservation test (:mod:`repro.partition.preservation`).
    """

    def __init__(self, attributes: Sequence[str]) -> None:
        self.attributes = tuple(attributes)
        self._parent: dict[_Node, _Node] = {}
        self._serial = itertools.count()
        self.cells: list[dict[str, _Node]] = [
            {a: self.fresh_var() for a in attributes} for _ in range(2)
        ]

    # -- union-find ------------------------------------------------------

    def fresh_var(self) -> _Node:
        node = ("var", next(self._serial))
        self._parent[node] = node
        return node

    def const_node(self, value: object) -> _Node:
        node = ("const", type(value).__name__, value)
        if node not in self._parent:
            self._parent[node] = node
        return node

    def find(self, node: _Node) -> _Node:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: _Node, b: _Node) -> bool:
        """Merge classes; constants stay roots.  Returns True on change."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        a_const = ra[0] == "const"
        b_const = rb[0] == "const"
        if a_const and b_const:
            raise Inconsistent()
        if a_const:
            self._parent[rb] = ra
        else:
            self._parent[ra] = rb
        return True

    # -- queries ---------------------------------------------------------

    def equal(self, tuple_a: int, tuple_b: int, attribute: str) -> bool:
        return self.find(self.cells[tuple_a][attribute]) == self.find(
            self.cells[tuple_b][attribute]
        )

    def bound_to(self, tuple_index: int, attribute: str) -> object | None:
        """The constant the cell is bound to, if any (as its node)."""
        root = self.find(self.cells[tuple_index][attribute])
        return root if root[0] == "const" else None

    def is_bound_to(self, tuple_index: int, attribute: str, value: object) -> bool:
        return self.bound_to(tuple_index, attribute) == self.const_node(value)

    def bind(self, tuple_index: int, attribute: str, value: object) -> bool:
        return self.union(
            self.cells[tuple_index][attribute], self.const_node(value)
        )

    def equate(self, attribute: str) -> bool:
        return self.union(
            self.cells[0][attribute], self.cells[1][attribute]
        )


def _apply_constant(state: ChaseState, rule: ConstantCFD) -> bool:
    """Fire a constant CFD on every tuple whose LHS is forced; True on change."""
    changed = False
    for t in range(2):
        if all(
            state.is_bound_to(t, attr, value)
            for attr, value in zip(rule.lhs, rule.values)
        ):
            changed |= state.bind(t, rule.rhs_attr, rule.rhs_value)
    return changed


def _apply_variable(state: ChaseState, rule: VariableCFD) -> bool:
    """Fire a variable CFD on the tuple pair when its whole LHS is forced."""
    changed = False
    for row in rule.patterns:
        applies = True
        for attr, entry in zip(rule.lhs, row):
            if not state.equal(0, 1, attr):
                applies = False
                break
            if not is_wildcard(entry) and not (
                state.is_bound_to(0, attr, entry)
            ):
                applies = False
                break
        if applies:
            for attr in rule.rhs:
                changed |= state.equate(attr)
    return changed


def chase(state: ChaseState, sigma_normalized) -> None:
    """Run to fixpoint (raises :class:`Inconsistent` on contradiction)."""
    changed = True
    while changed:
        changed = False
        for normalized in sigma_normalized:
            for constant in normalized.constants:
                changed |= _apply_constant(state, constant)
            for variable in normalized.variables:
                changed |= _apply_variable(state, variable)


def _witness_attributes(
    sigma: Sequence[CFD], phi: CFD, extra: Iterable[str] = ()
) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for cfd in list(sigma) + [phi]:
        for attr in cfd.attributes:
            seen.setdefault(attr)
    for attr in extra:
        seen.setdefault(attr)
    return tuple(seen)


def _implies_variable(
    sigma_normalized, attributes: Sequence[str], psi: VariableCFD
) -> bool:
    for row in psi.patterns:
        state = ChaseState(attributes)
        try:
            for attr, entry in zip(psi.lhs, row):
                state.equate(attr)
                if not is_wildcard(entry):
                    state.bind(0, attr, entry)
            chase(state, sigma_normalized)
        except Inconsistent:
            continue  # no matching witness: this pattern is vacuous
        if not all(state.equal(0, 1, attr) for attr in psi.rhs):
            return False
    return True


def _implies_constant(
    sigma_normalized, attributes: Sequence[str], psi: ConstantCFD
) -> bool:
    state = ChaseState(attributes)
    try:
        for attr, value in zip(psi.lhs, psi.values):
            state.bind(0, attr, value)
        chase(state, sigma_normalized)
    except Inconsistent:
        return True  # vacuous: Σ forbids any tuple matching the LHS
    return state.is_bound_to(0, psi.rhs_attr, psi.rhs_value)


def implies(
    sigma: Iterable[CFD], phi: CFD, attributes: Iterable[str] | None = None
) -> bool:
    """Whether ``Σ |= φ`` (infinite-domain semantics).

    ``attributes`` optionally fixes the witness schema; by default it is the
    union of the attributes of Σ and φ (other attributes are unconstrained
    and cannot affect implication).
    """
    sigma = list(sigma)
    _reject_predicates(sigma + [phi])
    witness_attrs = _witness_attributes(sigma, phi, attributes or ())
    sigma_normalized = [normalize(cfd) for cfd in sigma]
    psi = normalize(phi)
    return all(
        _implies_constant(sigma_normalized, witness_attrs, constant)
        for constant in psi.constants
    ) and all(
        _implies_variable(sigma_normalized, witness_attrs, variable)
        for variable in psi.variables
    )


def implies_all(sigma: Iterable[CFD], gamma: Iterable[CFD]) -> bool:
    """Whether ``Σ |= Γ``."""
    sigma = list(sigma)
    return all(implies(sigma, phi) for phi in gamma)
