"""Conditional functional dependencies (CFDs).

A CFD ``φ = R(X → Y, Tp)`` (Section II-A) pairs an embedded FD ``X → Y``
with a *pattern tableau* ``Tp``.  Each pattern tuple constrains the subset
of tuples whose ``X`` attributes match its LHS: among them the embedded FD
must hold, and their ``Y`` values must match the pattern's RHS constants.

The module defines the wildcard ``'_'`` (:data:`WILDCARD`), the match
operator ``≍`` (:func:`matches`), pattern tuples, the :class:`CFD` container
and the satisfaction test ``D |= φ`` (:func:`satisfies`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational import Relation
from .epatterns import PatternPredicate


class _Wildcard:
    """The unnamed variable ``'_'`` of pattern tuples (a singleton)."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __deepcopy__(self, memo) -> "_Wildcard":
        return self

    def __copy__(self) -> "_Wildcard":
        return self


WILDCARD = _Wildcard()


def is_wildcard(value: object) -> bool:
    """Whether ``value`` is the pattern wildcard ``'_'``."""
    return value is WILDCARD


def matches(value: object, pattern_value: object) -> bool:
    """The match operator ``value ≍ pattern_value``.

    ``η1 ≍ η2`` iff they are equal or the pattern side is ``'_'``.
    (Data values are never wildcards, so the operator is used one-sided.)
    Extended (eCFD) pattern entries match through their predicate
    (:mod:`repro.core.epatterns`).
    """
    if pattern_value is WILDCARD:
        return True
    if isinstance(pattern_value, PatternPredicate):
        return pattern_value.matches(value)
    return value == pattern_value


def tuple_matches(values: Sequence[object], pattern: Sequence[object]) -> bool:
    """Pointwise extension of ``≍`` to tuples of equal width."""
    return all(matches(v, p) for v, p in zip(values, pattern))


class CFDError(ValueError):
    """Raised for malformed CFDs or pattern tableaux."""


class PatternTuple:
    """One row ``(tp[X] ‖ tp[Y])`` of a pattern tableau.

    Entries are constants or :data:`WILDCARD`.  Positions follow the owning
    CFD's ``lhs``/``rhs`` attribute lists.
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Sequence[object], rhs: Sequence[object]) -> None:
        self.lhs = tuple(lhs)
        self.rhs = tuple(rhs)

    def lhs_wildcard_count(self) -> int:
        """Number of wildcards on the LHS — the 'generality' sort key."""
        return sum(1 for v in self.lhs if is_wildcard(v))

    def lhs_constants(self, attributes: Sequence[str]) -> dict[str, object]:
        """Mapping of LHS attribute -> constant for the non-wildcard entries."""
        return {
            a: v for a, v in zip(attributes, self.lhs) if not is_wildcard(v)
        }

    def matches_lhs(self, values: Sequence[object]) -> bool:
        """``values ≍ tp[X]``."""
        return tuple_matches(values, self.lhs)

    def matches_rhs(self, values: Sequence[object]) -> bool:
        """``values ≍ tp[Y]``."""
        return tuple_matches(values, self.rhs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        lhs = ", ".join(map(repr, self.lhs))
        rhs = ", ".join(map(repr, self.rhs))
        return f"({lhs} ‖ {rhs})"


class CFD:
    """A conditional functional dependency ``(X → Y, Tp)``.

    Parameters
    ----------
    lhs, rhs:
        Attribute lists of the embedded FD.  An attribute may appear on both
        sides (the paper's ``t[A_L]``/``t[A_R]``); positions keep them apart.
    tableau:
        Pattern tuples whose widths must equal ``len(lhs)``/``len(rhs)``.
    name:
        Optional identifier used in violation reports; defaults to the
        textual form of the embedded FD.
    """

    __slots__ = ("lhs", "rhs", "tableau", "name")

    def __init__(
        self,
        lhs: Sequence[str],
        rhs: Sequence[str],
        tableau: Iterable[PatternTuple | tuple] | None = None,
        name: str | None = None,
    ) -> None:
        self.lhs = tuple(lhs)
        self.rhs = tuple(rhs)
        if not self.lhs or not self.rhs:
            raise CFDError("a CFD needs non-empty LHS and RHS attribute lists")
        if len(set(self.lhs)) != len(self.lhs) or len(set(self.rhs)) != len(self.rhs):
            raise CFDError("duplicate attribute within one side of a CFD")
        if tableau is None:
            # A traditional FD: single all-wildcard pattern tuple.
            tableau = [
                PatternTuple([WILDCARD] * len(self.lhs), [WILDCARD] * len(self.rhs))
            ]
        rows = []
        for row in tableau:
            if not isinstance(row, PatternTuple):
                lhs_part, rhs_part = row
                row = PatternTuple(lhs_part, rhs_part)
            if len(row.lhs) != len(self.lhs) or len(row.rhs) != len(self.rhs):
                raise CFDError(
                    f"pattern tuple {row!r} does not fit ({self.lhs} -> {self.rhs})"
                )
            rows.append(row)
        if not rows:
            raise CFDError("a CFD needs at least one pattern tuple")
        self.tableau = tuple(rows)
        self.name = name or f"[{','.join(self.lhs)}]->[{','.join(self.rhs)}]"

    # -- derived views ---------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned, LHS first, without duplicates."""
        seen = dict.fromkeys(self.lhs)
        seen.update(dict.fromkeys(self.rhs))
        return tuple(seen)

    def is_fd(self) -> bool:
        """Whether this is a traditional FD (single all-wildcard pattern)."""
        return len(self.tableau) == 1 and all(
            is_wildcard(v) for v in self.tableau[0].lhs + self.tableau[0].rhs
        )

    def with_tableau(self, tableau: Iterable[PatternTuple], name: str | None = None) -> "CFD":
        """Copy of this CFD with a different pattern tableau."""
        return CFD(self.lhs, self.rhs, tableau, name=name or self.name)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.tableau == other.tableau
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.tableau))

    def __repr__(self) -> str:
        return (
            f"CFD([{', '.join(self.lhs)}] -> [{', '.join(self.rhs)}], "
            f"{list(self.tableau)!r})"
        )


def satisfies(relation: Relation, cfd: CFD) -> bool:
    """The satisfaction test ``D |= φ`` (Section II-A).

    For each pattern tuple ``tp`` and each pair ``t1, t2`` with
    ``t1[X] = t2[X] ≍ tp[X]``, require ``t1[Y] = t2[Y] ≍ tp[Y]``.
    Implemented by grouping rather than pairwise enumeration.
    """
    lhs_pos = relation.schema.positions(cfd.lhs)
    rhs_pos = relation.schema.positions(cfd.rhs)
    for tp in cfd.tableau:
        groups: dict[tuple, tuple] = {}
        for row in relation.rows:
            x = tuple(row[p] for p in lhs_pos)
            if not tp.matches_lhs(x):
                continue
            y = tuple(row[p] for p in rhs_pos)
            if not tp.matches_rhs(y):
                return False
            previous = groups.setdefault(x, y)
            if previous != y:
                return False
    return True
