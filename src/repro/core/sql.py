"""SQL generation *and* the ``sql`` detection engine (the technique of [2]).

The paper's centralized baseline: "from a set Σ of CFDs, a fixed number of
SQL queries can be automatically generated that, when evaluated on D,
return all the violations of Σ in D".  This module emits those queries for
any CFD, in the two-query shape of [2]:

* ``Q_C`` — a scan catching *single-tuple* violations of the constant
  pattern entries: tuples matching a pattern's LHS whose RHS disagrees
  with the pattern's RHS constants;
* ``Q_V`` — a GROUP BY on ``X`` over the tuples matching some pattern's
  LHS, keeping groups with more than one distinct value on some RHS
  attribute (*pairwise* violations).

Both return the ``Vioπ`` projection (the ``X`` attributes).  The paper's
original macro encodes the tableau in an auxiliary pattern table; for
self-containedness we inline the tableau as OR-ed match conditions, which
is equivalent and keeps the emitted SQL runnable on any engine.

Two consumers share the query shape:

* the **display path** (``repro sql``, :func:`violation_sql`) renders
  self-contained SQL with inlined literals — meant to be read and pasted
  into any database shell;
* the **engine path** (:func:`detect_violations_sql`, dispatched by
  ``REPRO_ENGINE=sql``) compiles the same plan with **bound parameters**
  (never literals — attribute names may contain quotes and values may
  contain ``'``/``%``), executes it on a persistent per-relation database
  handle (``REPRO_SQL_BACKEND=sqlite|duckdb|auto``) and decodes result
  rows back into a :class:`~repro.core.violations.ViolationReport` that is
  bit-identical to the reference engine on violations *and* tuple keys.

NULL semantics (the ``None`` contract)
--------------------------------------

The in-memory engines treat ``None`` as an ordinary domain value: it is
equal to itself, distinct from everything else, and incomparable under
order predicates.  SQL three-valued logic disagrees on every count, so the
engine compiles *null-safe* comparisons instead of ``=``/``<>``:

* equality uses ``IS`` (sqlite) / ``IS NOT DISTINCT FROM`` (duckdb), so a
  ``None`` cell matches a ``None`` pattern constant and nothing else;
* ``NotValue`` uses ``IS NOT`` / ``IS DISTINCT FROM`` — Python's
  ``None != v`` is true, so a NULL cell must *satisfy* the negation;
* the constant-form RHS test is wrapped as ``(cond) IS NOT TRUE``: a
  predicate over a NULL cell evaluates to NULL in SQL but to "no match"
  (hence *violated*) in Python, and the wrapper folds both to the same
  answer;
* the GROUP BY conflict test counts NULL as one more distinct value:
  ``COUNT(DISTINCT a)`` ignores NULLs, so the engine emits
  ``COUNT(DISTINCT a) + MAX(CASE WHEN a IS NULL THEN 1 ELSE 0 END) > 1``
  per RHS attribute (a ``COALESCE`` sentinel would collide with real
  domain values; the explicit two-term count cannot);
* ``OneOf`` splits a ``None`` member out of the ``IN`` list into an
  ``OR col IS NULL`` branch (``NULL IN (...)`` is never true in SQL, but
  ``None in {None}`` is true in Python);
* ``Range`` never matches ``None`` (Python raises ``TypeError`` → no
  match), which the sqlite ``typeof``-guard and duckdb's NULL propagation
  under ``IS NOT TRUE`` both reproduce.

Mixed-type columns add one more divergence: sqlite orders INTEGER below
TEXT while Python raises ``TypeError`` (→ no match), so sqlite ``Range``
conditions carry a ``typeof(col)`` guard restricting the comparison to the
bound's type class.  Tables are created with *undeclared* column types so
sqlite's type affinity cannot coerce values (``'2'`` must stay distinct
from ``2``).  DuckDB is strictly typed, so it is only selected (under
``auto``) when every column is type-homogeneous; forcing
``REPRO_SQL_BACKEND=duckdb`` on untypeable data raises
:class:`SQLEngineError`.

The conformance suite (``tests/test_engine_conformance.py``) property-tests
all of the above against the reference oracle, including relations with
``None`` cells.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from ..relational import Relation, column_store
from .cfd import CFD, is_wildcard
from .epatterns import NotValue, OneOf, Range, is_predicate
from .normalize import ConstantCFD, VariableCFD, normalize, normalize_all
from .violations import Violation, ViolationReport


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _quote_value(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _entry_condition(attr: str, value: object) -> str:
    if is_predicate(value):
        return value.sql_condition(_quote_ident(attr), _quote_value)
    return f"{_quote_ident(attr)} = {_quote_value(value)}"


def _match_condition(attrs: Iterable[str], row: Iterable[object]) -> str:
    """The SQL condition for ``t[X] ≍ tp[X]`` (wildcards drop out)."""
    parts = [
        _entry_condition(attr, value)
        for attr, value in zip(attrs, row)
        if not is_wildcard(value)
    ]
    return " AND ".join(parts) if parts else "1=1"


def constant_violation_sql(cfd: CFD, table: str) -> str | None:
    """``Q_C``: single-tuple violations of the constant normal forms.

    Returns ``None`` when the CFD has no constant pattern entries.
    """
    normalized = normalize(cfd)
    if not normalized.constants:
        return None
    select_list = ", ".join(_quote_ident(a) for a in cfd.lhs)
    branches = []
    for constant in normalized.constants:
        condition = _match_condition(constant.lhs, constant.values)
        branches.append(
            f"({condition} AND NOT "
            f"({_entry_condition(constant.rhs_attr, constant.rhs_value)}))"
        )
    where = " OR ".join(branches)
    return (
        f"SELECT DISTINCT {select_list} FROM {_quote_ident(table)} "
        f"WHERE {where}"
    )


def variable_violation_sql(cfd: CFD, table: str) -> str | None:
    """``Q_V``: pairwise violations of the variable normal forms.

    Returns ``None`` when every pattern binds every RHS attribute to a
    constant (then ``Q_C`` alone suffices).
    """
    normalized = normalize(cfd)
    if not normalized.variables:
        return None
    queries = []
    for variable in normalized.variables:
        group_list = ", ".join(_quote_ident(a) for a in variable.lhs)
        match = " OR ".join(
            f"({_match_condition(variable.lhs, row)})"
            for row in variable.patterns
        )
        having = " OR ".join(
            f"COUNT(DISTINCT {_quote_ident(attr)}) > 1"
            for attr in variable.rhs
        )
        queries.append(
            f"SELECT {group_list} FROM {_quote_ident(table)} "
            f"WHERE {match} GROUP BY {group_list} HAVING {having}"
        )
    return " UNION ".join(queries)


def violation_sql(cfd: CFD, table: str) -> list[str]:
    """All detection queries for one CFD (one or two, as in [2])."""
    queries = []
    constant = constant_violation_sql(cfd, table)
    if constant:
        queries.append(constant)
    variable = variable_violation_sql(cfd, table)
    if variable:
        queries.append(variable)
    return queries


def create_table_sql(relation: Relation, table: str) -> str:
    """A CREATE TABLE statement matching the relation's schema.

    Columns carry **no declared type**: any affinity would let sqlite
    coerce values on insert (``'2'`` under INTEGER affinity becomes the
    integer ``2``), silently merging values the in-memory engines keep
    distinct.  Undeclared columns have BLOB (none) affinity — values are
    stored exactly as bound.
    """
    columns = ", ".join(
        _quote_ident(attr) for attr in relation.schema.attributes
    )
    return f"CREATE TABLE {_quote_ident(table)} ({columns})"


# ---------------------------------------------------------------------------
# The ``sql`` engine: backend resolution
# ---------------------------------------------------------------------------

class SQLEngineError(RuntimeError):
    """The SQL engine cannot represent this relation or pattern faithfully.

    Raised eagerly (at handle build or statement compile time) with the
    offending attribute or value named, never silently approximated — the
    engine's contract is bit-identical agreement with ``reference``.
    """


#: concrete backends ``REPRO_SQL_BACKEND`` accepts (besides ``"auto"``).
SQL_BACKENDS = ("sqlite", "duckdb")

_DUCKDB_PROBED: bool | None = None


def duckdb_enabled() -> bool:
    """Whether the optional duckdb dependency is importable (memoized)."""
    global _DUCKDB_PROBED
    if _DUCKDB_PROBED is None:
        try:
            import duckdb  # noqa: F401
        except Exception:
            _DUCKDB_PROBED = False
        else:
            _DUCKDB_PROBED = True
    return _DUCKDB_PROBED


def resolve_sql_backend(backend: str | None = None) -> str:
    """Validate the backend choice (explicit argument or environment).

    Returns ``"sqlite"``, ``"duckdb"`` or ``"auto"``.  Unknown names raise
    ``ValueError`` (the CLI maps that to exit 2, like every other knob);
    asking for duckdb without the package importable raises
    ``RuntimeError`` so the failure names the missing extra instead of
    surfacing as an ImportError mid-detection.
    """
    value = backend if backend is not None else os.environ.get(
        "REPRO_SQL_BACKEND", "auto"
    )
    if value not in SQL_BACKENDS + ("auto",):
        raise ValueError(
            f"unknown SQL backend {value!r}; "
            f"use one of {', '.join(SQL_BACKENDS)} (or 'auto')"
        )
    if value == "duckdb" and not duckdb_enabled():
        raise RuntimeError(
            "REPRO_SQL_BACKEND=duckdb but the duckdb package is not "
            "importable; install the 'sql' extra or use sqlite"
        )
    return value


# ---------------------------------------------------------------------------
# Value classes: what the engine can faithfully round-trip
# ---------------------------------------------------------------------------

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_FLOAT_EXACT_INT = 2**53


def _value_class(value: object) -> str:
    """``"null" | "int" | "float" | "text"`` — or :class:`SQLEngineError`.

    Rejects values a database cannot store losslessly: NaN (sqlite stores
    it as NULL, conflating it with ``None``), integers outside 64 bits,
    and non-primitive objects.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "int"
    if isinstance(value, int):
        if not (_INT64_MIN <= value <= _INT64_MAX):
            raise SQLEngineError(
                f"integer {value!r} does not fit in 64 bits; "
                "the sql engine cannot store it losslessly"
            )
        return "int"
    if isinstance(value, float):
        if value != value:
            raise SQLEngineError(
                "NaN is not representable in the sql engine "
                "(sqlite stores it as NULL, conflating it with None)"
            )
        return "float"
    if isinstance(value, str):
        return "text"
    raise SQLEngineError(
        f"value {value!r} of type {type(value).__name__} is not "
        "representable in the sql engine (use int, float, str, bool or None)"
    )


def _is_numeric(value_class: str) -> bool:
    return value_class in ("int", "float")


def _column_classes(relation: Relation) -> dict[str, set[str]]:
    """Distinct value classes per attribute, via the cached ColumnStore.

    Validation walks the store's *distinct* values (cheap even on large
    relations) and raises :class:`SQLEngineError` naming the attribute on
    the first unrepresentable value.
    """
    store = column_store(relation)
    classes: dict[str, set[str]] = {}
    for attr in relation.schema.attributes:
        found: set[str] = set()
        for value in store.column(attr).values:
            try:
                found.add(_value_class(value))
            except SQLEngineError as error:
                raise SQLEngineError(f"attribute {attr!r}: {error}") from None
        classes[attr] = found
    return classes


def _duckdb_column_type(attr: str, classes: set[str]) -> str | None:
    """The duckdb column type for a class set, or ``None`` if untypeable."""
    present = classes - {"null"}
    if not present:
        return "VARCHAR"
    if present == {"int"}:
        return "BIGINT"
    if present <= {"int", "float"}:
        return "DOUBLE"
    if present == {"text"}:
        return "VARCHAR"
    return None


def _duckdb_schema(relation: Relation) -> dict[str, str] | None:
    """Column types for duckdb, or ``None`` when the data needs sqlite.

    DuckDB is strictly typed: a column must be homogeneous (integers,
    floats, or strings — NULLs allowed anywhere) and an int stored in a
    DOUBLE column must survive the float round-trip.
    """
    store = column_store(relation)
    types: dict[str, str] = {}
    for attr, classes in _column_classes(relation).items():
        column_type = _duckdb_column_type(attr, classes)
        if column_type is None:
            return None
        if column_type == "DOUBLE":
            for value in store.column(attr).values:
                if (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and abs(value) > _FLOAT_EXACT_INT
                ):
                    return None
        types[attr] = column_type
    return types


def _class_of_column(classes: set[str]) -> str:
    """The compile-time class of a (duckdb-typeable) column."""
    present = classes - {"null"}
    if not present:
        return "null"
    if present == {"int"}:
        return "int"
    if present <= {"int", "float"}:
        return "float"
    return "text"


# ---------------------------------------------------------------------------
# Dialects: null-safe, parameterized condition rendering
# ---------------------------------------------------------------------------

class _SqliteDialect:
    """sqlite3: untyped storage, ``IS`` null-safety, ``typeof`` guards."""

    name = "sqlite"

    def eq(self, col: str, rhs: str) -> str:
        return f"{col} IS {rhs}"

    def ne(self, col: str, rhs: str) -> str:
        return f"{col} IS NOT {rhs}"

    def entry(self, col: str, col_class: str, value: object, params: list) -> str:
        if isinstance(value, OneOf):
            return self._one_of(col, col_class, value.values, params)
        if isinstance(value, NotValue):
            _value_class(value.value)
            if value.value is None:
                return f"{col} IS NOT NULL"
            params.append(value.value)
            return self.ne(col, "?")
        if isinstance(value, Range):
            return self._range(col, col_class, value, params)
        _value_class(value)
        if value is None:
            return f"{col} IS NULL"
        params.append(value)
        return self.eq(col, "?")

    def _one_of(
        self, col: str, col_class: str, values: frozenset, params: list
    ) -> str:
        rest = sorted(
            (v for v in values if v is not None), key=lambda v: (str(type(v)), repr(v))
        )
        for v in rest:
            _value_class(v)
        branches = []
        if rest:
            params.extend(rest)
            placeholders = ", ".join("?" for _ in rest)
            branches.append(f"{col} IN ({placeholders})")
        if None in values:
            branches.append(f"{col} IS NULL")
        return "(" + " OR ".join(branches) + ")"

    def _range(self, col: str, col_class: str, predicate: Range, params: list) -> str:
        bound_class = _value_class(predicate.bound)
        if bound_class == "null":
            # Python: value < None raises TypeError -> never matches
            return "0=1"
        if _is_numeric(bound_class):
            guard = f"typeof({col}) IN ('integer', 'real')"
        else:
            guard = f"typeof({col}) = 'text'"
        params.append(predicate.bound)
        return f"({guard} AND {col} {predicate.op} ?)"


class _DuckDBDialect:
    """duckdb: strictly typed columns, ``IS [NOT] DISTINCT FROM``.

    Compile-time type classes stand in for sqlite's runtime ``typeof``
    guards: a comparison across type classes can never hold in Python, so
    it folds to ``0=1`` (or ``1=1`` for :class:`NotValue`, which ``None``
    and every cross-class value satisfies).
    """

    name = "duckdb"

    def eq(self, col: str, rhs: str) -> str:
        return f"{col} IS NOT DISTINCT FROM {rhs}"

    def ne(self, col: str, rhs: str) -> str:
        return f"{col} IS DISTINCT FROM {rhs}"

    def _compatible(self, col_class: str, value_class: str) -> bool:
        if col_class == "null":
            return False
        if _is_numeric(value_class):
            return _is_numeric(col_class)
        return col_class == value_class

    def entry(self, col: str, col_class: str, value: object, params: list) -> str:
        if isinstance(value, OneOf):
            return self._one_of(col, col_class, value.values, params)
        if isinstance(value, NotValue):
            target_class = _value_class(value.value)
            if value.value is None:
                return f"{col} IS NOT NULL"
            if not self._compatible(col_class, target_class):
                return "1=1"  # every cell (NULL included) differs in Python
            params.append(value.value)
            return self.ne(col, "?")
        if isinstance(value, Range):
            return self._range(col, col_class, value, params)
        value_class = _value_class(value)
        if value is None:
            return f"{col} IS NULL"
        if not self._compatible(col_class, value_class):
            return "0=1"
        params.append(value)
        return self.eq(col, "?")

    def _one_of(
        self, col: str, col_class: str, values: frozenset, params: list
    ) -> str:
        rest = sorted(
            (v for v in values if v is not None), key=lambda v: (str(type(v)), repr(v))
        )
        compatible = [
            v for v in rest if self._compatible(col_class, _value_class(v))
        ]
        branches = []
        if compatible:
            params.extend(compatible)
            placeholders = ", ".join("?" for _ in compatible)
            branches.append(f"{col} IN ({placeholders})")
        if None in values:
            branches.append(f"{col} IS NULL")
        if not branches:
            return "0=1"
        return "(" + " OR ".join(branches) + ")"

    def _range(self, col: str, col_class: str, predicate: Range, params: list) -> str:
        bound_class = _value_class(predicate.bound)
        if bound_class == "null" or not self._compatible(col_class, bound_class):
            return "0=1"
        params.append(predicate.bound)
        # NULL cells propagate NULL, which the IS NOT TRUE wrapper (RHS)
        # and WHERE falsiness (LHS) both read as "no match", like Python.
        return f"({col} {predicate.op} ?)"


_DIALECTS = {"sqlite": _SqliteDialect(), "duckdb": _DuckDBDialect()}


# ---------------------------------------------------------------------------
# Statement compilation (per normal form, parameters bound)
# ---------------------------------------------------------------------------

class _CompiledQuery:
    """One executable statement plus the recipe to decode its rows."""

    __slots__ = ("sql", "params", "source", "report_attrs", "n_x", "n_key")

    def __init__(self, sql, params, source, report_attrs, n_x, n_key):
        self.sql = sql
        self.params = params
        self.source = source
        self.report_attrs = report_attrs
        self.n_x = n_x
        self.n_key = n_key

    def decode(self, rows: Iterable[Sequence], report: ViolationReport, collect_tuples: bool) -> None:
        for row in rows:
            report.add(
                Violation(
                    cfd=self.source,
                    lhs_attributes=self.report_attrs,
                    lhs_values=tuple(row[: self.n_x]),
                )
            )
            if collect_tuples:
                report.add_tuple_key(
                    tuple(row[self.n_x : self.n_x + self.n_key])
                )


class _Compiler:
    """Compiles normalized Σ into parameterized statements for one handle."""

    def __init__(self, dialect, table: str, schema, col_classes: dict[str, str]):
        self._dialect = dialect
        self._table = _quote_ident(table)
        self._schema = schema
        self._classes = col_classes
        self._key_attrs = tuple(
            schema.attributes[p] for p in schema.key_positions()
        )

    def _col(self, attr: str, qualifier: str = "") -> str:
        return qualifier + _quote_ident(attr)

    def _match(
        self,
        attrs: Sequence[str],
        row: Sequence[object],
        params: list,
        qualifier: str = "",
    ) -> str:
        parts = [
            self._dialect.entry(
                self._col(attr, qualifier), self._classes[attr], value, params
            )
            for attr, value in zip(attrs, row)
            if not is_wildcard(value)
        ]
        return " AND ".join(parts) if parts else "1=1"

    def _select_list(self, attrs: Sequence[str], qualifier: str = "") -> str:
        if not attrs:
            return "1"
        return ", ".join(self._col(a, qualifier) for a in attrs)

    def constant(self, form: ConstantCFD, collect_tuples: bool) -> _CompiledQuery:
        params: list = []
        select_attrs = form.report_lhs + (
            self._key_attrs if collect_tuples else ()
        )
        distinct = "" if collect_tuples else "DISTINCT "
        match = self._match(form.lhs, form.values, params)
        rhs = self._dialect.entry(
            self._col(form.rhs_attr),
            self._classes[form.rhs_attr],
            form.rhs_value,
            params,
        )
        sql = (
            f"SELECT {distinct}{self._select_list(select_attrs)} "
            f"FROM {self._table} "
            f"WHERE ({match}) AND ({rhs}) IS NOT TRUE"
        )
        return _CompiledQuery(
            sql,
            tuple(params),
            form.source,
            form.report_lhs,
            len(form.report_lhs),
            len(self._key_attrs) if collect_tuples else 0,
        )

    def _conflict(self, rhs_attrs: Sequence[str]) -> str:
        # NULL-aware distinct count; see the module docstring.
        return " OR ".join(
            f"(COUNT(DISTINCT {self._col(a)}) + "
            f"MAX(CASE WHEN {self._col(a)} IS NULL THEN 1 ELSE 0 END)) > 1"
            for a in rhs_attrs
        )

    def variable(self, form: VariableCFD, collect_tuples: bool) -> _CompiledQuery:
        params: list = []
        inner_match = " OR ".join(
            f"({self._match(form.lhs, row, params)})" for row in form.patterns
        )
        group_cols = self._select_list(form.lhs)
        group_by = f" GROUP BY {group_cols}" if form.lhs else ""
        # with an empty X the whole match set is one group; selecting an
        # aggregate keeps sqlite happy about HAVING without GROUP BY
        inner_select = group_cols if form.lhs else "COUNT(*)"
        inner = (
            f"SELECT {inner_select} FROM {self._table} "
            f"WHERE {inner_match}{group_by} "
            f"HAVING {self._conflict(form.rhs)}"
        )
        if not collect_tuples:
            return _CompiledQuery(
                inner, tuple(params), form.source, form.lhs, len(form.lhs), 0
            )
        if form.lhs:
            on = " AND ".join(
                self._dialect.eq(self._col(a, "d."), self._col(a, "g."))
                for a in form.lhs
            )
            join = f"JOIN ({inner}) AS g ON {on}"
        else:
            join = f"CROSS JOIN ({inner}) AS g"
        select_attrs = form.lhs + self._key_attrs
        outer_match = " OR ".join(
            f"({self._match(form.lhs, row, params, qualifier='d.')})"
            for row in form.patterns
        )
        sql = (
            f"SELECT {self._select_list(select_attrs, 'd.')} "
            f"FROM {self._table} AS d {join} "
            f"WHERE {outer_match}"
        )
        return _CompiledQuery(
            sql,
            tuple(params),
            form.source,
            form.lhs,
            len(form.lhs),
            len(self._key_attrs),
        )

    def compile(
        self, cfds: Sequence[CFD], collect_tuples: bool
    ) -> tuple[_CompiledQuery, ...]:
        queries: list[_CompiledQuery] = []
        for normalized in normalize_all(cfds):
            for form in normalized.constants:
                queries.append(self.constant(form, collect_tuples))
            for form in normalized.variables:
                queries.append(self.variable(form, collect_tuples))
        return tuple(queries)


# ---------------------------------------------------------------------------
# Persistent per-relation handles
# ---------------------------------------------------------------------------

class SQLRelationHandle:
    """A relation loaded once into a database, ready for repeated detection.

    Holds the connection, the compiled-statement cache and a lock (the
    detection scheduler calls engines from worker threads).  Obtained via
    :func:`sql_handle`, which keeps a small LRU of live handles so repeat
    detections on the same relation skip the load entirely.
    """

    TABLE = "D"

    __slots__ = (
        "relation",
        "backend",
        "_connection",
        "_compiler",
        "_plans",
        "_lock",
    )

    def __init__(self, relation: Relation, backend: str) -> None:
        self.relation = relation
        self.backend = backend
        self._plans: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        classes = _column_classes(relation)
        col_classes = {
            attr: _class_of_column(found) for attr, found in classes.items()
        }
        if backend == "duckdb":
            types = _duckdb_schema(relation)
            if types is None:
                raise SQLEngineError(
                    "relation has mixed-type columns duckdb cannot store "
                    "faithfully; use REPRO_SQL_BACKEND=sqlite (or auto)"
                )
            self._connection = self._connect_duckdb(relation, types)
        else:
            self._connection = self._connect_sqlite(relation)
        self._compiler = _Compiler(
            _DIALECTS[backend], self.TABLE, relation.schema, col_classes
        )

    def _connect_sqlite(self, relation: Relation):
        connection = sqlite3.connect(":memory:", check_same_thread=False)
        connection.execute(create_table_sql(relation, self.TABLE))
        self._load(connection, relation)
        return connection

    def _connect_duckdb(self, relation: Relation, types: dict[str, str]):
        import duckdb

        connection = duckdb.connect(":memory:")
        threads = max(1, os.cpu_count() or 1)
        connection.execute(f"PRAGMA threads={threads}")
        columns = ", ".join(
            f"{_quote_ident(attr)} {column_type}"
            for attr, column_type in types.items()
        )
        connection.execute(
            f"CREATE TABLE {_quote_ident(self.TABLE)} ({columns})"
        )
        self._load(connection, relation)
        return connection

    def _load(self, connection, relation: Relation) -> None:
        if not relation.rows:
            return
        placeholders = ", ".join("?" for _ in relation.schema.attributes)
        connection.executemany(
            f"INSERT INTO {_quote_ident(self.TABLE)} VALUES ({placeholders})",
            relation.rows,
        )

    def _plan(self, cfds: Sequence[CFD], collect_tuples: bool):
        key = (tuple((cfd.name, cfd) for cfd in cfds), collect_tuples)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        plan = self._compiler.compile(cfds, collect_tuples)
        with self._lock:
            while len(self._plans) >= 32:
                self._plans.popitem(last=False)
            self._plans[key] = plan
        return plan

    def detect(
        self, cfds: Sequence[CFD], collect_tuples: bool = True
    ) -> ViolationReport:
        """Run the compiled statement set and decode a ViolationReport."""
        plan = self._plan(cfds, collect_tuples)
        report = ViolationReport()
        with self._lock:
            for query in plan:
                cursor = self._connection.execute(query.sql, query.params)
                rows = cursor.fetchall()
                query.decode(rows, report, collect_tuples)
        return report

    def execute(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Run one ad-hoc statement on the loaded table (for the tests
        that execute the *display-path* SQL against the engine's own
        database, pinning generation helpers and engine together)."""
        with self._lock:
            return [
                tuple(row)
                for row in self._connection.execute(sql, params).fetchall()
            ]

    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except Exception:
                pass


#: live handles, LRU by relation identity.  Entries hold a strong
#: reference to the relation (via the handle), so an id() key can never be
#: reused while its entry is alive; identity is re-checked on probe anyway.
_HANDLES: OrderedDict[tuple[int, str], SQLRelationHandle] = OrderedDict()
_HANDLES_CAP = 8
_HANDLES_LOCK = threading.Lock()


def resolve_handle_cap(override: int | None = None) -> int:
    """The handle-cache bound (``REPRO_SQL_HANDLES``, default 8).

    Each cached entry is a live database connection pinning its relation
    in memory, so the cache is a bounded LRU that *closes* what it
    evicts — this knob sizes it for hosts juggling many relations.
    Malformed values fail loudly (the CLI maps the ValueError to exit
    code 2, like every other knob).
    """
    if override is not None:
        value = override
    else:
        raw = os.environ.get("REPRO_SQL_HANDLES")
        if raw is None or raw == "":
            return _HANDLES_CAP
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SQL_HANDLES must be a positive integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"REPRO_SQL_HANDLES must be >= 1, got {value!r}")
    return value


def _backend_for(relation: Relation, preference: str) -> str:
    if preference == "sqlite":
        return "sqlite"
    if preference == "duckdb":
        return "duckdb"
    if duckdb_enabled() and _duckdb_schema(relation) is not None:
        return "duckdb"
    return "sqlite"


def sql_handle(
    relation: Relation, backend: str | None = None
) -> SQLRelationHandle:
    """The (cached) database handle for a relation.

    ``backend`` follows :func:`resolve_sql_backend` (``None`` → the
    ``REPRO_SQL_BACKEND`` environment, default ``auto``: duckdb when
    importable and the data is cleanly typed, sqlite otherwise).
    """
    preference = resolve_sql_backend(backend)
    resolved = _backend_for(relation, preference)
    cap = resolve_handle_cap()
    key = (id(relation), resolved)
    with _HANDLES_LOCK:
        handle = _HANDLES.get(key)
        if handle is not None and handle.relation is relation:
            _HANDLES.move_to_end(key)
            return handle
    handle = SQLRelationHandle(relation, resolved)
    evicted = []
    with _HANDLES_LOCK:
        racer = _HANDLES.get(key)
        if racer is not None and racer.relation is relation:
            _HANDLES.move_to_end(key)
            handle.close()
            return racer
        while len(_HANDLES) >= cap:
            _, old = _HANDLES.popitem(last=False)
            evicted.append(old)
        _HANDLES[key] = handle
    for old in evicted:
        old.close()
    return handle


def close_sql_handles() -> None:
    """Close and drop every cached handle (tests and long-running hosts)."""
    with _HANDLES_LOCK:
        handles = list(_HANDLES.values())
        _HANDLES.clear()
    for handle in handles:
        handle.close()


def detect_violations_sql(
    relation: Relation,
    cfds: CFD | Iterable[CFD],
    collect_tuples: bool = True,
    backend: str | None = None,
    parallel: int | bool | None = None,
) -> ViolationReport:
    """``Vioπ(Σ, D)`` plus tuple keys, computed inside a SQL database.

    The fourth engine (``REPRO_ENGINE=sql``): loads the relation once into
    a persistent per-relation handle, compiles all of normalized Σ into
    one batched, parameterized statement set (``Q_C`` scans and NULL-aware
    ``Q_V`` GROUP BYs — see the module docstring for the exact NULL and
    typing contract) and decodes result rows back into a
    :class:`ViolationReport` bit-identical to the reference engine.

    ``parallel`` is accepted for dispatcher signature parity; intra-query
    parallelism belongs to the database (duckdb runs with ``PRAGMA
    threads``), and the answer never depends on it.
    """
    del parallel  # the database parallelizes internally
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    handle = sql_handle(relation, backend)
    return handle.detect(cfds, collect_tuples)


def run_detection_on_sqlite(
    relation: Relation, cfds: CFD | Iterable[CFD]
) -> set[tuple[str, tuple]]:
    """Execute the *display-path* SQL on the engine's sqlite handle.

    Returns ``{(cfd_name, x_values), ...}`` — the ``Vioπ`` entries — for
    direct comparison with :func:`repro.core.detect_violations`.  The
    statements are the literal-rendered ones of :func:`violation_sql`
    (the paper's "centralized SQL technique" made runnable); they run on
    the same table :func:`detect_violations_sql` loads, so the generation
    helpers and the engine cannot drift apart.
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    handle = sql_handle(relation, backend="sqlite")
    found: set[tuple[str, tuple]] = set()
    for cfd in cfds:
        for query in violation_sql(cfd, SQLRelationHandle.TABLE):
            for row in handle.execute(query):
                found.add((cfd.name, tuple(row)))
    return found
