"""SQL generation for CFD violation detection (the technique of [2]).

The paper's centralized baseline: "from a set Σ of CFDs, a fixed number of
SQL queries can be automatically generated that, when evaluated on D,
return all the violations of Σ in D".  This module emits those queries for
any CFD, in the two-query shape of [2]:

* ``Q_C`` — a scan catching *single-tuple* violations of the constant
  pattern entries: tuples matching a pattern's LHS whose RHS disagrees
  with the pattern's RHS constants;
* ``Q_V`` — a GROUP BY on ``X`` over the tuples matching some pattern's
  LHS, keeping groups with more than one distinct value on some RHS
  attribute (*pairwise* violations).

Both return the ``Vioπ`` projection (the ``X`` attributes).  The paper's
original macro encodes the tableau in an auxiliary pattern table; for
self-containedness we inline the tableau as OR-ed match conditions, which
is equivalent and keeps the emitted SQL runnable on any engine.  The test
suite executes the generated SQL on sqlite3 and asserts it returns exactly
``Vioπ(φ, D)`` as computed by :func:`repro.core.detect_violations`.
"""

from __future__ import annotations

from typing import Iterable

from ..relational import Relation
from .cfd import CFD, is_wildcard
from .epatterns import is_predicate
from .normalize import normalize


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _quote_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _entry_condition(attr: str, value: object) -> str:
    if is_predicate(value):
        return value.sql_condition(_quote_ident(attr), _quote_value)
    return f"{_quote_ident(attr)} = {_quote_value(value)}"


def _match_condition(attrs: Iterable[str], row: Iterable[object]) -> str:
    """The SQL condition for ``t[X] ≍ tp[X]`` (wildcards drop out)."""
    parts = [
        _entry_condition(attr, value)
        for attr, value in zip(attrs, row)
        if not is_wildcard(value)
    ]
    return " AND ".join(parts) if parts else "1=1"


def constant_violation_sql(cfd: CFD, table: str) -> str | None:
    """``Q_C``: single-tuple violations of the constant normal forms.

    Returns ``None`` when the CFD has no constant pattern entries.
    """
    normalized = normalize(cfd)
    if not normalized.constants:
        return None
    select_list = ", ".join(_quote_ident(a) for a in cfd.lhs)
    branches = []
    for constant in normalized.constants:
        condition = _match_condition(constant.lhs, constant.values)
        branches.append(
            f"({condition} AND NOT "
            f"({_entry_condition(constant.rhs_attr, constant.rhs_value)}))"
        )
    where = " OR ".join(branches)
    return (
        f"SELECT DISTINCT {select_list} FROM {_quote_ident(table)} "
        f"WHERE {where}"
    )


def variable_violation_sql(cfd: CFD, table: str) -> str | None:
    """``Q_V``: pairwise violations of the variable normal forms.

    Returns ``None`` when every pattern binds every RHS attribute to a
    constant (then ``Q_C`` alone suffices).
    """
    normalized = normalize(cfd)
    if not normalized.variables:
        return None
    queries = []
    for variable in normalized.variables:
        group_list = ", ".join(_quote_ident(a) for a in variable.lhs)
        match = " OR ".join(
            f"({_match_condition(variable.lhs, row)})"
            for row in variable.patterns
        )
        having = " OR ".join(
            f"COUNT(DISTINCT {_quote_ident(attr)}) > 1"
            for attr in variable.rhs
        )
        queries.append(
            f"SELECT {group_list} FROM {_quote_ident(table)} "
            f"WHERE {match} GROUP BY {group_list} HAVING {having}"
        )
    return " UNION ".join(queries)


def violation_sql(cfd: CFD, table: str) -> list[str]:
    """All detection queries for one CFD (one or two, as in [2])."""
    queries = []
    constant = constant_violation_sql(cfd, table)
    if constant:
        queries.append(constant)
    variable = variable_violation_sql(cfd, table)
    if variable:
        queries.append(variable)
    return queries


def create_table_sql(relation: Relation, table: str) -> str:
    """A CREATE TABLE statement matching the relation's schema.

    Column affinities are inferred from the first row (INTEGER/REAL for
    numeric columns, TEXT otherwise); sqlite's flexible typing makes this
    adequate for round-tripping generated data.
    """
    sample = relation.rows[0] if relation.rows else None
    columns = []
    for position, attr in enumerate(relation.schema.attributes):
        affinity = "TEXT"
        if sample is not None:
            value = sample[position]
            if isinstance(value, bool):
                affinity = "INTEGER"
            elif isinstance(value, int):
                affinity = "INTEGER"
            elif isinstance(value, float):
                affinity = "REAL"
        columns.append(f"{_quote_ident(attr)} {affinity}")
    return f"CREATE TABLE {_quote_ident(table)} ({', '.join(columns)})"


def run_detection_on_sqlite(
    relation: Relation, cfds: CFD | Iterable[CFD]
) -> set[tuple[str, tuple]]:
    """Execute the generated SQL on an in-memory sqlite3 database.

    Returns ``{(cfd_name, x_values), ...}`` — the ``Vioπ`` entries — for
    direct comparison with :func:`repro.core.detect_violations`.  This is
    the paper's "centralized SQL technique" made runnable.
    """
    import sqlite3

    if isinstance(cfds, CFD):
        cfds = [cfds]
    connection = sqlite3.connect(":memory:")
    try:
        table = "D"
        connection.execute(create_table_sql(relation, table))
        width = len(relation.schema)
        placeholders = ", ".join("?" * width)
        connection.executemany(
            f"INSERT INTO D VALUES ({placeholders})", relation.rows
        )
        found: set[tuple[str, tuple]] = set()
        for cfd in cfds:
            for query in violation_sql(cfd, table):
                for row in connection.execute(query):
                    found.add((cfd.name, tuple(row)))
        return found
    finally:
        connection.close()
