"""Extended pattern entries: the eCFD extension ([17], Bravo et al., ICDE'08).

The paper's related work notes that the SQL detection technique
"generalizes to detect violations of eCFDs, an extension of CFDs by
supporting disjunctions and negations".  This module adds those entry
types to pattern tuples:

* :class:`OneOf` — a disjunction ``A ∈ {a1, ..., ak}``;
* :class:`NotValue` — a negation ``A ≠ a``;
* :class:`Range` — an order constraint ``A < a``, ``A ≤ a``, ``A > a``,
  ``A ≥ a`` (a convenience the eCFD encoding subsumes on ordered domains).

An entry of any of these types may appear wherever a constant may: on the
LHS it restricts which tuples a pattern applies to; on the RHS it is a
single-tuple constraint like a constant (``t[Y] ≍ tp[Y]`` becomes "the
value satisfies the predicate").  The detection algorithms of Section IV
carry over unchanged — only the match operator and the σ index generalize
(tuples with predicate entries are probed linearly, constants stay hashed).

The implication chase of Section V does **not** support predicate entries
(eCFD implication has its own complexity story [17]); it raises
``NotImplementedError`` when it meets one.
"""

from __future__ import annotations

from typing import Iterable


class PatternPredicate:
    """Base class for non-constant, non-wildcard pattern entries."""

    def matches(self, value: object) -> bool:
        raise NotImplementedError

    def sql_condition(self, column_sql: str, quote) -> str:
        """Render ``column <op> ...`` for the generated detection SQL."""
        raise NotImplementedError


class OneOf(PatternPredicate):
    """Disjunction: the attribute takes one of the listed values."""

    __slots__ = ("values",)

    def __init__(self, values: Iterable[object]) -> None:
        self.values = frozenset(values)
        if not self.values:
            raise ValueError("OneOf needs at least one value")

    def matches(self, value: object) -> bool:
        return value in self.values

    def sql_condition(self, column_sql: str, quote) -> str:
        rendered = ", ".join(sorted(quote(v) for v in self.values))
        return f"{column_sql} IN ({rendered})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OneOf) and self.values == other.values

    def __hash__(self) -> int:
        return hash(("oneof", self.values))

    def __repr__(self) -> str:
        return "{" + "|".join(sorted(map(repr, self.values))) + "}"


class NotValue(PatternPredicate):
    """Negation: the attribute differs from the value."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def matches(self, value: object) -> bool:
        return value != self.value

    def sql_condition(self, column_sql: str, quote) -> str:
        return f"{column_sql} <> {quote(self.value)}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NotValue) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("notvalue", self.value))

    def __repr__(self) -> str:
        return f"!{self.value!r}"


_RANGE_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Range(PatternPredicate):
    """Order constraint against a bound (incomparable values never match)."""

    __slots__ = ("op", "bound")

    def __init__(self, op: str, bound: object) -> None:
        if op not in _RANGE_OPS:
            raise ValueError(f"unknown range operator {op!r}")
        self.op = op
        self.bound = bound

    def matches(self, value: object) -> bool:
        try:
            return _RANGE_OPS[self.op](value, self.bound)
        except TypeError:
            return False

    def sql_condition(self, column_sql: str, quote) -> str:
        return f"{column_sql} {self.op} {quote(self.bound)}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Range)
            and self.op == other.op
            and self.bound == other.bound
        )

    def __hash__(self) -> int:
        return hash(("range", self.op, self.bound))

    def __repr__(self) -> str:
        return f"{self.op}{self.bound!r}"


def is_predicate(entry: object) -> bool:
    """Whether a pattern entry is an extended (eCFD) predicate."""
    return isinstance(entry, PatternPredicate)
