"""Parallel fragment execution: the scheduler behind ``REPRO_WORKERS``.

The distributed detectors of :mod:`repro.detect` all follow the paper's
skeleton — every site scans *its own* fragment, then compact statistics and
projections are exchanged.  The scans are embarrassingly parallel in the
paper's model (each runs on a different machine), but the simulation used
to execute them one after another in a single interpreter loop.  This
module supplies the missing scheduler:

* :func:`map_fragments` runs one function per fragment concurrently and
  returns the results in fragment order, so every caller stays
  deterministic — parallel detection is bit-identical to serial (the
  engine conformance suite asserts it);
* :func:`parallel_map` is the generic ordered map used for coarser units
  (per-region gathers, per-CFD plans, per-normal-form folds of the
  centralized engines).

Two execution modes:

* **threads** (the default) — cheap, shares the relations' cached
  :class:`~repro.relational.columnar.ColumnStore` views.  The numpy folds
  release the GIL inside their hot kernels, and even the pure-Python scans
  interleave usefully with them; pure-Python-only workloads stay
  GIL-bound, which the benchmark records honestly.
* **processes** (opt-in via ``REPRO_PARALLEL=process``) — a
  :class:`FragmentPool` of per-site worker *processes* with **fixed
  fragment → worker routing**: each fragment is placed into exactly one
  long-lived worker (with one worker per fragment, a worker *is* one of
  the paper's sites) and every work order for it travels to that worker
  over a dedicated pipe.  Placement (pickling a fragment into its
  worker) happens once per pool; afterwards only small work orders go
  out and compact dictionary-coded summaries come back (see
  :mod:`repro.relational.shareddict`), so warm detections scale with the
  slowest fragment instead of the sum of fragments — and no worker ever
  pays memory or placement cost for another site's data.

Failure model (see also :mod:`repro.core.faults`):

Sites and links are real failure domains in the paper's setting, so the
scheduler *supervises* its workers instead of assuming they are immortal:

* every work order carries a **per-order deadline** (``REPRO_POOL_TIMEOUT``
  seconds, doubled per retry — exponential backoff) and every worker reply
  ships with a **CRC32 checksum** over its pickled summary, verified
  coordinator-side;
* a dead worker (exitcode sentinel, ``EOFError``/broken pipe) or an
  expired order triggers **respawn with fragment re-placement** — the
  fragments routed to that worker are re-placed into a fresh process and
  the order is resent, up to ``REPRO_POOL_RETRIES`` recoveries per order;
* a corrupt payload triggers a single **re-request** from the (healthy)
  resident worker;
* when an order exhausts its retries, the pool raises the matching typed
  :class:`~repro.core.faults.WorkerFailure` — never a bare ``EOFError``,
  never a hang — **evicts itself** from :data:`_POOLS` and its owner's
  cache (so the next detection builds clean pipes), and
  :func:`map_fragments` **degrades gracefully**: unless
  ``REPRO_POOL_DEGRADE=0``, the run falls back to the serial loop, which
  returns bit-identical results.  Application errors raised by the task
  function itself propagate unwrapped and leave the pool usable (the
  reply protocol keeps the pipes in sync).

Configuration
-------------

``REPRO_WORKERS``
    Worker count.  Unset or ``1`` means serial (the default); any larger
    value enables the scheduler.  ``0`` or a negative value means "one per
    CPU".
``REPRO_PARALLEL``
    ``thread`` (default), ``process``, or ``off`` (force serial regardless
    of ``REPRO_WORKERS``).
``REPRO_POOL_TIMEOUT``
    Per-order deadline in seconds (default 120; ``0`` disables deadlines).
``REPRO_POOL_RETRIES``
    Recoveries per order before the typed failure surfaces (default 2).
``REPRO_POOL_DEGRADE``
    ``0`` disables the serial fallback after a typed failure (default on).
``REPRO_FAULTS``
    Deterministic fault injection (:mod:`repro.core.faults`).

All are read lazily at each call, so tests can monkeypatch them; explicit
function arguments override the environment.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import weakref
import zlib
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from .faults import (
    STATS,
    OrderTimeoutError,
    PayloadCorruptionError,
    WorkerCrashError,
    WorkerFailure,
    active_plan,
    failure_for,
)

#: accepted ``REPRO_PARALLEL`` values.
MODES = ("thread", "process", "off")

#: at most this many process pools are kept alive; the least recently used
#: pool beyond it is shut down (pools pin worker processes and a resident
#: copy of their fragments, so unbounded caching would leak both).
MAX_PROCESS_POOLS = 4

#: default per-order deadline (seconds) and recovery budget per order.
ORDER_TIMEOUT = 120.0
ORDER_RETRIES = 2

#: base of the exponential backoff sleep between recoveries (seconds).
_BACKOFF_BASE = 0.01
_BACKOFF_CAP = 0.5


def resolve_workers(workers: int | bool | None = None) -> int:
    """The effective worker count: argument first, then ``REPRO_WORKERS``.

    ``None`` defers to the environment (default 1 = serial); ``True`` means
    "use the environment's count, or one per CPU when unset"; ``False``
    forces serial.  ``0`` or negative counts mean one worker per CPU.
    """
    if workers is False:
        return 1
    if workers is True:
        raw = os.environ.get("REPRO_WORKERS", "0")
    elif workers is None:
        raw = os.environ.get("REPRO_WORKERS", "1")
    else:
        return _normalize_count(workers)
    try:
        return _normalize_count(int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None


def _normalize_count(count: int) -> int:
    if count <= 0:
        return os.cpu_count() or 1
    return count


def resolve_mode(mode: str | None = None) -> str:
    """The effective execution mode: argument first, then ``REPRO_PARALLEL``."""
    if mode is None:
        mode = os.environ.get("REPRO_PARALLEL", "thread")
    if mode in ("0", "none"):
        mode = "off"
    if mode not in MODES:
        raise ValueError(
            f"unknown REPRO_PARALLEL mode {mode!r}; use one of {MODES}"
        )
    return mode


def resolve_order_timeout() -> float:
    """Per-order deadline in seconds (``REPRO_POOL_TIMEOUT``; 0 = none)."""
    raw = os.environ.get("REPRO_POOL_TIMEOUT")
    if raw is None:
        return ORDER_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_POOL_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else float("inf")


def resolve_order_retries() -> int:
    """Recoveries allowed per order (``REPRO_POOL_RETRIES``, default 2)."""
    raw = os.environ.get("REPRO_POOL_RETRIES")
    if raw is None:
        return ORDER_RETRIES
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_POOL_RETRIES must be an integer, got {raw!r}"
        ) from None


def degrade_enabled() -> bool:
    """Whether typed scheduler failures fall back to the serial loop."""
    return os.environ.get("REPRO_POOL_DEGRADE", "1") != "0"


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int | bool | None = None,
) -> list:
    """``[fn(item) for item in items]``, possibly thread-parallel.

    Results come back in input order whatever the completion order, so
    callers remain deterministic.  Serial when the resolved worker count is
    1, the mode is ``off``, or there is at most one item.  Always uses
    threads (never processes): the callers of this generic map close over
    live objects — relations, shipment logs — that must stay shared.

    A fresh, private executor is created per call and torn down with it;
    this keeps nested parallel sections (a per-CFD map whose tasks run the
    parallel fused engine, say) deadlock-free, at the price of a few
    microseconds of thread start-up — noise next to any fragment scan.
    """
    n = resolve_workers(workers)
    if n <= 1 or len(items) <= 1 or resolve_mode() == "off":
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(n, len(items))) as pool:
        return list(pool.map(fn, items))


# -- fragment-resident worker processes ---------------------------------------


#: XOR mask a ``corrupt`` fault applies to the shipped CRC32.
_CORRUPT_MASK = 0x5A5A5A5A


def _site_worker(connection, payload: bytes) -> None:
    """One site process: unpack the *assigned* fragments, serve work orders.

    The worker holds only the fragments routed to it (true
    site-residency, like one machine of the paper's testbed) and rebuilds
    their columnar caches lazily, persisting them across work orders
    exactly like a site's local indexes.  The command loop reads
    ``(seq, fn, index, args, fault)`` tuples off the pipe and answers a
    CRC32-framed pickled ``(seq, ok, result-or-error)``; ``None`` shuts
    the site down.  ``fault`` is an injected directive from the active
    :class:`~repro.core.faults.FaultPlan` (``None`` in production):
    ``crash`` exits hard before executing, ``drop`` consumes the order
    without answering, ``slow`` sleeps, ``corrupt`` flips the checksum so
    the parent's verification fails.
    """
    from ..relational import Relation

    fragments = {
        index: Relation(schema, rows, copy=False)
        for index, (schema, rows) in pickle.loads(payload).items()
    }
    while True:
        try:
            message = connection.recv()
        except EOFError:  # parent went away: shut down quietly
            break
        if message is None:
            break
        seq, fn, index, args, fault = message
        kind = None
        if fault is not None:
            kind, latency = fault
            if kind == "crash":
                os._exit(17)
            if kind == "drop":
                continue  # the order is lost: consume it, never answer
            if kind == "slow":
                time.sleep(latency)
        try:
            result = (seq, True, fn(fragments[index], *args))
        except BaseException as error:  # ship the failure, do not die
            try:
                pickle.dumps(error)
            except Exception:
                error = RuntimeError(repr(error))
            result = (seq, False, error)
        try:
            data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:  # unpicklable *result*: ship the reason
            result = (seq, False, RuntimeError(repr(error)))
            data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        crc = zlib.crc32(data)
        if kind == "corrupt":
            crc ^= _CORRUPT_MASK
        try:
            connection.send_bytes(crc.to_bytes(4, "little") + data)
        except (BrokenPipeError, OSError):  # parent gone mid-reply
            break
    connection.close()


class _Order:
    """One in-flight work order and its supervision state."""

    __slots__ = ("seq", "index", "args", "worker", "attempts", "timeout", "deadline")

    def __init__(self, seq, index, args, worker, timeout) -> None:
        self.seq = seq
        self.index = index
        self.args = args
        self.worker = worker
        self.attempts = 0
        self.timeout = timeout
        self.deadline = float("inf")


class FragmentPool:
    """Per-site worker processes with **fixed fragment → worker routing**.

    Mirrors the paper's deployment one step further than an executor
    pool: each fragment is *placed* into exactly one long-lived worker
    process (fragment ``i`` lives at worker ``i mod n`` — with one worker
    per fragment, a worker *is* a site), and every work order for that
    fragment is routed to its resident worker over a dedicated pipe.  No
    worker ever holds — or pays the placement cost for — another site's
    data, and a fragment's columnar caches warm exactly once, at its own
    site.  Results return in task order whatever the completion order.

    The pool is **supervised**: orders carry deadlines, replies carry
    CRC32 checksums, and dead/wedged workers are respawned with their
    fragments re-placed (see the module docstring's failure model).
    :attr:`stats` counts recoveries; :attr:`poisoned` is set when a run
    gave up and the pool evicted itself from the caches.

    Build through :func:`fragment_pool`, which caches one pool per
    cluster and caps the number of live pools.
    """

    __slots__ = (
        "workers",
        "poisoned",
        "stats",
        "_connections",
        "_processes",
        "_fragments",
        "_n_workers",
        "_context",
        "_owner",
        "__weakref__",
    )

    def __init__(self, fragments: Sequence, workers: int) -> None:
        import multiprocessing

        n_workers = max(1, min(workers, len(fragments)))
        self.workers = workers
        self.poisoned = False
        self.stats: Counter = Counter()
        self._fragments = list(fragments)
        self._n_workers = n_workers
        self._owner = None
        try:
            # fork is cheapest and keeps worker start-up off the placement
            # cost; non-POSIX platforms fall back to spawn
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context("spawn")
        self._connections = []
        self._processes = []
        for w in range(n_workers):
            connection, process = self._spawn(w)
            self._connections.append(connection)
            self._processes.append(process)

    def _spawn(self, worker: int):
        """Start worker ``worker``, (re-)placing its routed fragments."""
        placed = {
            index: (fragment.schema, fragment.rows)
            for index, fragment in enumerate(self._fragments)
            if index % self._n_workers == worker
        }
        payload = pickle.dumps(placed, protocol=pickle.HIGHEST_PROTOCOL)
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_site_worker,
            args=(child_end, payload),
            daemon=True,
        )
        process.start()
        child_end.close()
        return parent_end, process

    def _worker_of(self, index: int) -> int:
        """The fixed worker holding fragment ``index``."""
        return index % len(self._connections)

    def _respawn(self, worker: int) -> None:
        """Replace a dead/wedged worker; its fragments are re-placed."""
        process = self._processes[worker]
        if process.is_alive():
            process.terminate()
            process.join(timeout=1)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=1)
        try:
            self._connections[worker].close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.stats["respawns"] += 1
        STATS["respawns"] += 1
        connection, process = self._spawn(worker)
        self._connections[worker] = connection
        self._processes[worker] = process

    def _recover(
        self, order: _Order, retries: int, reason: WorkerFailure,
        respawn: bool = True,
    ) -> None:
        """Book one failed attempt; respawn and back off, or give up."""
        order.attempts += 1
        self.stats["retries"] += 1
        STATS["retries"] += 1
        if order.attempts > retries:
            raise reason
        if respawn:
            self._respawn(order.worker)
        # exponential backoff: sleep briefly and double the deadline, so
        # a genuinely slow site gets room instead of a respawn loop
        time.sleep(min(_BACKOFF_BASE * (2 ** (order.attempts - 1)), _BACKOFF_CAP))
        order.timeout *= 2

    def _dispatch(self, fn, order: _Order, plan, retries, outstanding) -> None:
        """Send one order to its resident worker (recovering as needed)."""
        while True:
            fault = None
            if plan is not None:
                fault = plan.fault_for(plan.next_order())
            process = self._processes[order.worker]
            connection = self._connections[order.worker]
            if not process.is_alive():  # sentinel: died between orders
                self.stats["crashes"] += 1
                STATS["crashes"] += 1
                self._recover(
                    order,
                    retries,
                    WorkerCrashError(
                        f"worker {order.worker} found dead (exitcode "
                        f"{process.exitcode}) before serving fragment "
                        f"{order.index}"
                    ),
                )
                continue
            try:
                connection.send(
                    (order.seq, fn, order.index, order.args, fault)
                )
            except (BrokenPipeError, OSError):
                self.stats["crashes"] += 1
                STATS["crashes"] += 1
                self._recover(
                    order,
                    retries,
                    WorkerCrashError(
                        f"worker {order.worker} pipe broke sending the "
                        f"order for fragment {order.index}"
                    ),
                )
                continue
            order.deadline = time.monotonic() + order.timeout
            outstanding[self._connections[order.worker]] = order
            return

    def run(self, fn: Callable, tasks: Sequence[tuple[int, tuple]]) -> list:
        """Run ``fn(fragment_i, *args)`` for each ``(i, args)`` task, ordered.

        Each task goes to its fragment's resident worker; tasks for
        distinct workers execute concurrently, tasks for one worker in
        FIFO order with **one order in flight per worker**: the next
        order for a worker goes out only after its previous result came
        back.  A worker processes serially anyway, so this costs one
        pipe round-trip of latency — and it keeps both pipe directions
        from filling at once, which is how an eager send-everything loop
        deadlocks on large payloads (the parent blocked sending order 2
        into a full OS buffer while the worker blocks sending order 1's
        result to a parent that is not reading).  ``fn`` must be a
        module-level function (it crosses the process boundary by
        qualified name) and its arguments and results must pickle.

        Supervision: crashed workers are respawned (fragments re-placed)
        and their orders resent, expired orders likewise, corrupt
        payloads re-requested — each order up to the retry budget, after
        which the typed :class:`~repro.core.faults.WorkerFailure`
        propagates and the pool evicts itself from the caches.  A worker
        *application* error (``fn`` raised) is shipped home in-protocol,
        re-raised here once all results are in, and leaves the pool
        healthy and cached.
        """
        if not tasks:
            return []
        from collections import deque
        from multiprocessing.connection import wait

        plan = active_plan()
        base_timeout = resolve_order_timeout()
        retries = resolve_order_retries()
        queues: dict[int, deque] = {}
        for seq, (index, args) in enumerate(tasks):
            queues.setdefault(self._worker_of(index), deque()).append(
                (seq, index, args)
            )
        outstanding: dict = {}  # connection -> its in-flight _Order
        results: dict[int, object] = {}
        failure = None
        try:
            for worker, queue in queues.items():
                seq, index, args = queue.popleft()
                # the worker is parked in recv(), so even an order larger
                # than the pipe buffer streams straight through
                self._dispatch(
                    fn,
                    _Order(seq, index, args, worker, base_timeout),
                    plan,
                    retries,
                    outstanding,
                )
            while outstanding:
                deadline = min(
                    order.deadline for order in outstanding.values()
                )
                if deadline == float("inf"):
                    ready = wait(list(outstanding))
                else:
                    remaining = deadline - time.monotonic()
                    ready = (
                        wait(list(outstanding), timeout=remaining)
                        if remaining > 0
                        else []
                    )
                if not ready:
                    now = time.monotonic()
                    for connection, order in list(outstanding.items()):
                        if now < order.deadline:
                            continue
                        del outstanding[connection]
                        self.stats["timeouts"] += 1
                        STATS["timeouts"] += 1
                        self._recover(
                            order,
                            retries,
                            OrderTimeoutError(
                                f"order for fragment {order.index} timed "
                                f"out after {order.timeout:.3g}s at worker "
                                f"{order.worker}"
                            ),
                        )
                        self._dispatch(fn, order, plan, retries, outstanding)
                    continue
                for connection in ready:
                    order = outstanding.pop(connection, None)
                    if order is None:  # stale pipe of a respawned worker
                        continue  # pragma: no cover - defensive
                    try:
                        raw = connection.recv_bytes()
                    except (EOFError, OSError):
                        self.stats["crashes"] += 1
                        STATS["crashes"] += 1
                        self._recover(
                            order,
                            retries,
                            WorkerCrashError(
                                f"worker {order.worker} died (exitcode "
                                f"{self._processes[order.worker].exitcode})"
                                f" serving fragment {order.index}"
                            ),
                        )
                        self._dispatch(fn, order, plan, retries, outstanding)
                        continue
                    crc = int.from_bytes(raw[:4], "little")
                    data = raw[4:]
                    if zlib.crc32(data) != crc:
                        # a single re-request from the (healthy) resident
                        # worker; no respawn — the data did not die, the
                        # wire lied
                        self.stats["re_requests"] += 1
                        STATS["re_requests"] += 1
                        self._recover(
                            order,
                            retries,
                            PayloadCorruptionError(
                                f"payload of fragment {order.index} failed "
                                f"its CRC32 check twice at worker "
                                f"{order.worker}"
                            ),
                            respawn=False,
                        )
                        self._dispatch(fn, order, plan, retries, outstanding)
                        continue
                    seq, ok, value = pickle.loads(data)
                    if ok:
                        results[seq] = value
                    elif failure is None:
                        failure = value
                    queue = queues[order.worker]
                    if queue:
                        seq, index, args = queue.popleft()
                        self._dispatch(
                            fn,
                            _Order(seq, index, args, order.worker, base_timeout),
                            plan,
                            retries,
                            outstanding,
                        )
        except WorkerFailure:
            # the pipes may be desynchronized (answers for resent orders
            # still in flight): never let this pool serve again
            self.evict()
            raise
        except BaseException:  # pragma: no cover - unexpected parent error
            self.evict()
            raise
        if failure is not None:
            raise failure
        return [results[seq] for seq in range(len(tasks))]

    def evict(self) -> None:
        """Drop this (poisoned) pool from every cache and shut it down.

        Removes the pool from :data:`_POOLS` and clears the owner's
        ``_fragment_pool`` attribute when it still points here, so the
        next detection builds a fresh pool with clean pipes instead of
        reusing desynchronized ones.  Idempotent.
        """
        self.poisoned = True
        with _POOLS_LOCK:
            try:
                _POOLS.remove(self)
            except ValueError:
                pass
        owner = self._owner() if self._owner is not None else None
        if owner is not None and getattr(owner, "_fragment_pool", None) is self:
            try:
                owner._fragment_pool = None
            except AttributeError:  # pragma: no cover - slotted owner
                pass
        self.close()

    def close(self) -> None:
        """Shut every worker down; no zombie may outlive the parent.

        Asks politely first (the ``None`` sentinel), then escalates:
        ``join`` → ``terminate`` → ``join`` → ``kill`` → ``join``.
        Parent-side connections are closed unconditionally afterwards —
        even when the sentinel send failed — so no descriptor leaks.
        """
        for connection in self._connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=1)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass


#: live pools in creation order, for LRU eviction and atexit cleanup.
_POOLS: list[FragmentPool] = []

#: guards the _POOLS LRU and per-owner pool installs: concurrent sessions
#: (the resident service) reach fragment_pool() from many request threads,
#: and an unguarded check-then-act would spawn duplicate worker pools for
#: one cluster or double-remove during eviction
_POOLS_LOCK = threading.Lock()


def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    with _POOLS_LOCK:
        pools, _POOLS[:] = list(_POOLS), []
    for pool in pools:
        pool.close()


atexit.register(_shutdown_pools)


def fragment_pool(owner, fragments: Sequence, workers: int) -> FragmentPool:
    """The cached :class:`FragmentPool` of ``owner`` (a cluster), or a new one.

    The pool hangs off the owner object (clusters are immutable, like
    relations), so repeated detections against one cluster reuse the placed
    fragments.  At most :data:`MAX_PROCESS_POOLS` pools stay alive
    globally; beyond that the least recently created pool is shut down —
    short-lived clusters (the synthetic ones the hybrid detector builds)
    therefore cannot leak worker processes.  Poisoned pools (a ``run()``
    that raised a typed failure) never come back from the cache.
    """
    with _POOLS_LOCK:
        cached = getattr(owner, "_fragment_pool", None)
        if (
            cached is not None
            and not cached.poisoned
            and cached.workers == workers
            and cached in _POOLS
        ):
            # refresh LRU position
            _POOLS.remove(cached)
            _POOLS.append(cached)
            return cached
        pool = FragmentPool(fragments, workers)
        try:
            pool._owner = weakref.ref(owner)
        except TypeError:  # non-weakrefable stand-ins just skip the backref
            pool._owner = None
        _POOLS.append(pool)
        doomed = []
        while len(_POOLS) > MAX_PROCESS_POOLS:
            doomed.append(_POOLS.pop(0))
        try:
            owner._fragment_pool = pool
        except AttributeError:  # slotted stand-ins just rebuild per call
            pass
    # worker shutdown can block on joins: keep it outside the lock
    for stale in doomed:
        stale.close()
    return pool


def _serial_tasks(fragments, fn, tasks) -> list:
    """The serial loop — the degradation ladder's last rung, fault-free."""
    return [fn(fragments[i], *args) for i, args in tasks]


def _supervised_thread_map(fragments, fn, tasks, n, plan) -> list:
    """Thread map with the fault plan's supervision ladder applied.

    In thread mode there is no process to kill and no wire to corrupt,
    so every injected fault kind degenerates to its typed failure raised
    at the order's position (``slow`` still sleeps); the supervisor
    retries the task in place up to the recovery budget, then lets the
    typed failure propagate to :func:`map_fragments`'s degradation
    ladder.  Only active when a plan is installed — the production
    thread path has zero supervision overhead.
    """
    retries = resolve_order_retries()

    def call(task):
        index, args = task
        attempts = 0
        while True:
            order = plan.next_order()
            fault = plan.fault_for(order)
            if fault is not None and fault[0] != "slow":
                attempts += 1
                STATS["retries"] += 1
                error = failure_for(fault[0], order)
                if attempts > retries:
                    raise error
                time.sleep(
                    min(_BACKOFF_BASE * (2 ** (attempts - 1)), _BACKOFF_CAP)
                )
                continue
            if fault is not None:
                time.sleep(fault[1])
            return fn(fragments[index], *args)

    with ThreadPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        futures = [pool.submit(call, task) for task in tasks]
        return [future.result() for future in futures]


def map_fragments(
    owner,
    fragments: Sequence,
    fn: Callable,
    tasks: Sequence[tuple[int, tuple]],
    workers: int | bool | None = None,
    mode: str | None = None,
) -> list:
    """Run ``fn(fragments[i], *args)`` for each ``(i, args)`` task, ordered.

    The workhorse of the distributed detectors' scan stage.  Dispatches on
    the resolved mode: serial loop, shared-memory thread map, or the
    owner's fragment-resident :class:`FragmentPool`.  ``fragments`` is the
    owner's *complete* fragment list (so a cached process pool always holds
    every fragment, whichever subset this call touches); ``tasks`` selects
    the fragments to scan.  Results are ordered like ``tasks`` regardless
    of completion order, which keeps parallel runs bit-identical to serial.

    An empty or single-task list short-circuits to the serial loop without
    touching (or building) any pool.  When the pool or the supervised
    thread map exhausts its recovery budget, the typed
    :class:`~repro.core.faults.WorkerFailure` is caught here and the run
    **degrades** to the serial loop — bit-identical results, recorded in
    :data:`~repro.core.faults.STATS` — unless ``REPRO_POOL_DEGRADE=0``
    asks for the failure to surface instead.
    """
    n = resolve_workers(workers)
    mode = resolve_mode(mode)
    if n <= 1 or mode == "off" or len(tasks) <= 1:
        return _serial_tasks(fragments, fn, tasks)
    if mode == "process":
        pool = fragment_pool(owner, fragments, n)
        try:
            return pool.run(fn, tasks)
        except WorkerFailure:
            # run() already evicted the poisoned pool from the caches
            if not degrade_enabled():
                raise
            STATS["degraded_runs"] += 1
            return _serial_tasks(fragments, fn, tasks)
    plan = active_plan()
    if plan is None:
        with ThreadPoolExecutor(max_workers=min(n, len(tasks))) as pool:
            futures = [
                pool.submit(fn, fragments[i], *args) for i, args in tasks
            ]
            return [future.result() for future in futures]
    try:
        return _supervised_thread_map(fragments, fn, tasks, n, plan)
    except WorkerFailure:
        if not degrade_enabled():
            raise
        STATS["degraded_runs"] += 1
        return _serial_tasks(fragments, fn, tasks)


def parallel_enabled(workers: int | bool | None = None) -> bool:
    """Whether the scheduler would actually run anything concurrently."""
    return resolve_workers(workers) > 1 and resolve_mode() != "off"
