"""Parallel fragment execution: the scheduler behind ``REPRO_WORKERS``.

The distributed detectors of :mod:`repro.detect` all follow the paper's
skeleton — every site scans *its own* fragment, then compact statistics and
projections are exchanged.  The scans are embarrassingly parallel in the
paper's model (each runs on a different machine), but the simulation used
to execute them one after another in a single interpreter loop.  This
module supplies the missing scheduler:

* :func:`map_fragments` runs one function per fragment concurrently and
  returns the results in fragment order, so every caller stays
  deterministic — parallel detection is bit-identical to serial (the
  engine conformance suite asserts it);
* :func:`parallel_map` is the generic ordered map used for coarser units
  (per-region gathers, per-CFD plans, per-normal-form folds of the
  centralized engines).

Two execution modes:

* **threads** (the default) — cheap, shares the relations' cached
  :class:`~repro.relational.columnar.ColumnStore` views.  The numpy folds
  release the GIL inside their hot kernels, and even the pure-Python scans
  interleave usefully with them; pure-Python-only workloads stay
  GIL-bound, which the benchmark records honestly.
* **processes** (opt-in via ``REPRO_PARALLEL=process``) — a
  :class:`FragmentPool` of per-site worker *processes* with **fixed
  fragment → worker routing**: each fragment is placed into exactly one
  long-lived worker (with one worker per fragment, a worker *is* one of
  the paper's sites) and every work order for it travels to that worker
  over a dedicated pipe.  Placement (pickling a fragment into its
  worker) happens once per pool; afterwards only small work orders go
  out and compact dictionary-coded summaries come back (see
  :mod:`repro.relational.shareddict`), so warm detections scale with the
  slowest fragment instead of the sum of fragments — and no worker ever
  pays memory or placement cost for another site's data.

Configuration
-------------

``REPRO_WORKERS``
    Worker count.  Unset or ``1`` means serial (the default); any larger
    value enables the scheduler.  ``0`` or a negative value means "one per
    CPU".
``REPRO_PARALLEL``
    ``thread`` (default), ``process``, or ``off`` (force serial regardless
    of ``REPRO_WORKERS``).

Both are read lazily at each call, so tests can monkeypatch them; explicit
function arguments override the environment.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

#: accepted ``REPRO_PARALLEL`` values.
MODES = ("thread", "process", "off")

#: at most this many process pools are kept alive; the least recently used
#: pool beyond it is shut down (pools pin worker processes and a resident
#: copy of their fragments, so unbounded caching would leak both).
MAX_PROCESS_POOLS = 4


def resolve_workers(workers: int | bool | None = None) -> int:
    """The effective worker count: argument first, then ``REPRO_WORKERS``.

    ``None`` defers to the environment (default 1 = serial); ``True`` means
    "use the environment's count, or one per CPU when unset"; ``False``
    forces serial.  ``0`` or negative counts mean one worker per CPU.
    """
    if workers is False:
        return 1
    if workers is True:
        raw = os.environ.get("REPRO_WORKERS", "0")
    elif workers is None:
        raw = os.environ.get("REPRO_WORKERS", "1")
    else:
        return _normalize_count(workers)
    try:
        return _normalize_count(int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None


def _normalize_count(count: int) -> int:
    if count <= 0:
        return os.cpu_count() or 1
    return count


def resolve_mode(mode: str | None = None) -> str:
    """The effective execution mode: argument first, then ``REPRO_PARALLEL``."""
    if mode is None:
        mode = os.environ.get("REPRO_PARALLEL", "thread")
    if mode in ("0", "none"):
        mode = "off"
    if mode not in MODES:
        raise ValueError(
            f"unknown REPRO_PARALLEL mode {mode!r}; use one of {MODES}"
        )
    return mode


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int | bool | None = None,
) -> list:
    """``[fn(item) for item in items]``, possibly thread-parallel.

    Results come back in input order whatever the completion order, so
    callers remain deterministic.  Serial when the resolved worker count is
    1, the mode is ``off``, or there is at most one item.  Always uses
    threads (never processes): the callers of this generic map close over
    live objects — relations, shipment logs — that must stay shared.

    A fresh, private executor is created per call and torn down with it;
    this keeps nested parallel sections (a per-CFD map whose tasks run the
    parallel fused engine, say) deadlock-free, at the price of a few
    microseconds of thread start-up — noise next to any fragment scan.
    """
    n = resolve_workers(workers)
    if n <= 1 or len(items) <= 1 or resolve_mode() == "off":
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(n, len(items))) as pool:
        return list(pool.map(fn, items))


# -- fragment-resident worker processes ---------------------------------------


def _site_worker(connection, payload: bytes) -> None:
    """One site process: unpack the *assigned* fragments, serve work orders.

    The worker holds only the fragments routed to it (true
    site-residency, like one machine of the paper's testbed) and rebuilds
    their columnar caches lazily, persisting them across work orders
    exactly like a site's local indexes.  The command loop reads
    ``(seq, fn, index, args)`` tuples off the pipe and answers
    ``(seq, ok, result-or-error)``; ``None`` shuts the site down.
    """
    from ..relational import Relation

    fragments = {
        index: Relation(schema, rows, copy=False)
        for index, (schema, rows) in pickle.loads(payload).items()
    }
    while True:
        try:
            message = connection.recv()
        except EOFError:  # parent went away: shut down quietly
            break
        if message is None:
            break
        seq, fn, index, args = message
        try:
            result = (seq, True, fn(fragments[index], *args))
        except BaseException as error:  # ship the failure, do not die
            try:
                pickle.dumps(error)
            except Exception:
                error = RuntimeError(repr(error))
            result = (seq, False, error)
        connection.send(result)
    connection.close()


class FragmentPool:
    """Per-site worker processes with **fixed fragment → worker routing**.

    Mirrors the paper's deployment one step further than an executor
    pool: each fragment is *placed* into exactly one long-lived worker
    process (fragment ``i`` lives at worker ``i mod n`` — with one worker
    per fragment, a worker *is* a site), and every work order for that
    fragment is routed to its resident worker over a dedicated pipe.  No
    worker ever holds — or pays the placement cost for — another site's
    data, and a fragment's columnar caches warm exactly once, at its own
    site.  Results return in task order whatever the completion order.
    Build through :func:`fragment_pool`, which caches one pool per
    cluster and caps the number of live pools.
    """

    __slots__ = ("workers", "_connections", "_processes")

    def __init__(self, fragments: Sequence, workers: int) -> None:
        import multiprocessing

        n_workers = max(1, min(workers, len(fragments)))
        self.workers = workers
        try:
            # fork is cheapest and keeps worker start-up off the placement
            # cost; non-POSIX platforms fall back to spawn
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        self._connections = []
        self._processes = []
        for w in range(n_workers):
            placed = {
                index: (fragment.schema, fragment.rows)
                for index, fragment in enumerate(fragments)
                if index % n_workers == w
            }
            payload = pickle.dumps(placed, protocol=pickle.HIGHEST_PROTOCOL)
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_site_worker,
                args=(child_end, payload),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

    def _worker_of(self, index: int) -> int:
        """The fixed worker holding fragment ``index``."""
        return index % len(self._connections)

    def run(self, fn: Callable, tasks: Sequence[tuple[int, tuple]]) -> list:
        """Run ``fn(fragment_i, *args)`` for each ``(i, args)`` task, ordered.

        Each task goes to its fragment's resident worker; tasks for
        distinct workers execute concurrently, tasks for one worker in
        FIFO order with **one order in flight per worker**: the next
        order for a worker goes out only after its previous result came
        back.  A worker processes serially anyway, so this costs one
        pipe round-trip of latency — and it keeps both pipe directions
        from filling at once, which is how an eager send-everything loop
        deadlocks on large payloads (the parent blocked sending order 2
        into a full OS buffer while the worker blocks sending order 1's
        result to a parent that is not reading).  ``fn`` must be a
        module-level function (it crosses the process boundary by
        qualified name) and its arguments and results must pickle.
        """
        from collections import deque
        from multiprocessing.connection import wait

        queues: dict[int, deque] = {}
        for seq, (index, args) in enumerate(tasks):
            queues.setdefault(self._worker_of(index), deque()).append(
                (seq, index, args)
            )
        outstanding: dict = {}  # connection -> its worker index
        for worker, queue in queues.items():
            seq, index, args = queue.popleft()
            connection = self._connections[worker]
            # the worker is parked in recv(), so even an order larger
            # than the pipe buffer streams straight through
            connection.send((seq, fn, index, args))
            outstanding[connection] = worker
        results: dict[int, object] = {}
        failure = None
        while outstanding:
            for connection in wait(list(outstanding)):
                seq, ok, value = connection.recv()
                worker = outstanding.pop(connection)
                if ok:
                    results[seq] = value
                elif failure is None:
                    failure = value
                queue = queues[worker]
                if queue:
                    seq, index, args = queue.popleft()
                    connection.send((seq, fn, index, args))
                    outstanding[connection] = worker
        if failure is not None:
            raise failure
        return [results[seq] for seq in range(len(tasks))]

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(None)
                connection.close()
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=1)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()


#: live pools in creation order, for LRU eviction and atexit cleanup.
_POOLS: list[FragmentPool] = []


def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS:
        pool.close()
    _POOLS.clear()


atexit.register(_shutdown_pools)


def fragment_pool(owner, fragments: Sequence, workers: int) -> FragmentPool:
    """The cached :class:`FragmentPool` of ``owner`` (a cluster), or a new one.

    The pool hangs off the owner object (clusters are immutable, like
    relations), so repeated detections against one cluster reuse the placed
    fragments.  At most :data:`MAX_PROCESS_POOLS` pools stay alive
    globally; beyond that the least recently created pool is shut down —
    short-lived clusters (the synthetic ones the hybrid detector builds)
    therefore cannot leak worker processes.
    """
    cached = getattr(owner, "_fragment_pool", None)
    if cached is not None and cached.workers == workers and cached in _POOLS:
        # refresh LRU position
        _POOLS.remove(cached)
        _POOLS.append(cached)
        return cached
    pool = FragmentPool(fragments, workers)
    _POOLS.append(pool)
    while len(_POOLS) > MAX_PROCESS_POOLS:
        _POOLS.pop(0).close()
    try:
        owner._fragment_pool = pool
    except AttributeError:  # slotted stand-ins just rebuild per call
        pass
    return pool


def map_fragments(
    owner,
    fragments: Sequence,
    fn: Callable,
    tasks: Sequence[tuple[int, tuple]],
    workers: int | bool | None = None,
    mode: str | None = None,
) -> list:
    """Run ``fn(fragments[i], *args)`` for each ``(i, args)`` task, ordered.

    The workhorse of the distributed detectors' scan stage.  Dispatches on
    the resolved mode: serial loop, shared-memory thread map, or the
    owner's fragment-resident :class:`FragmentPool`.  ``fragments`` is the
    owner's *complete* fragment list (so a cached process pool always holds
    every fragment, whichever subset this call touches); ``tasks`` selects
    the fragments to scan.  Results are ordered like ``tasks`` regardless
    of completion order, which keeps parallel runs bit-identical to serial.
    """
    n = resolve_workers(workers)
    mode = resolve_mode(mode)
    if n <= 1 or mode == "off" or len(tasks) <= 1:
        return [fn(fragments[i], *args) for i, args in tasks]
    if mode == "process":
        pool = fragment_pool(owner, fragments, n)
        return pool.run(fn, tasks)
    with ThreadPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        futures = [pool.submit(fn, fragments[i], *args) for i, args in tasks]
        return [future.result() for future in futures]


def parallel_enabled(workers: int | bool | None = None) -> bool:
    """Whether the scheduler would actually run anything concurrently."""
    return resolve_workers(workers) > 1 and resolve_mode() != "off"
