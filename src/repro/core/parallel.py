"""Parallel fragment execution: the scheduler behind ``REPRO_WORKERS``.

The distributed detectors of :mod:`repro.detect` all follow the paper's
skeleton — every site scans *its own* fragment, then compact statistics and
projections are exchanged.  The scans are embarrassingly parallel in the
paper's model (each runs on a different machine), but the simulation used
to execute them one after another in a single interpreter loop.  This
module supplies the missing scheduler:

* :func:`map_fragments` runs one function per fragment concurrently and
  returns the results in fragment order, so every caller stays
  deterministic — parallel detection is bit-identical to serial (the
  engine conformance suite asserts it);
* :func:`parallel_map` is the generic ordered map used for coarser units
  (per-region gathers, per-CFD plans, per-normal-form folds of the
  centralized engines).

Two execution modes:

* **threads** (the default) — cheap, shares the relations' cached
  :class:`~repro.relational.columnar.ColumnStore` views.  The numpy folds
  release the GIL inside their hot kernels, and even the pure-Python scans
  interleave usefully with them; pure-Python-only workloads stay
  GIL-bound, which the benchmark records honestly.
* **processes** (opt-in via ``REPRO_PARALLEL=process``) — a
  :class:`FragmentPool` of worker *processes* that hold the cluster's
  fragments **resident**, like the sites of the paper's testbed hold their
  data.  Placement (pickling the fragments into the workers) happens once
  per pool; afterwards only small work orders go out and compact
  dictionary-coded summaries come back (see
  :mod:`repro.relational.shareddict`), so warm detections scale with the
  slowest fragment instead of the sum of fragments.

Configuration
-------------

``REPRO_WORKERS``
    Worker count.  Unset or ``1`` means serial (the default); any larger
    value enables the scheduler.  ``0`` or a negative value means "one per
    CPU".
``REPRO_PARALLEL``
    ``thread`` (default), ``process``, or ``off`` (force serial regardless
    of ``REPRO_WORKERS``).

Both are read lazily at each call, so tests can monkeypatch them; explicit
function arguments override the environment.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

#: accepted ``REPRO_PARALLEL`` values.
MODES = ("thread", "process", "off")

#: at most this many process pools are kept alive; the least recently used
#: pool beyond it is shut down (pools pin worker processes and a resident
#: copy of their fragments, so unbounded caching would leak both).
MAX_PROCESS_POOLS = 4


def resolve_workers(workers: int | bool | None = None) -> int:
    """The effective worker count: argument first, then ``REPRO_WORKERS``.

    ``None`` defers to the environment (default 1 = serial); ``True`` means
    "use the environment's count, or one per CPU when unset"; ``False``
    forces serial.  ``0`` or negative counts mean one worker per CPU.
    """
    if workers is False:
        return 1
    if workers is True:
        raw = os.environ.get("REPRO_WORKERS", "0")
    elif workers is None:
        raw = os.environ.get("REPRO_WORKERS", "1")
    else:
        return _normalize_count(workers)
    try:
        return _normalize_count(int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None


def _normalize_count(count: int) -> int:
    if count <= 0:
        return os.cpu_count() or 1
    return count


def resolve_mode(mode: str | None = None) -> str:
    """The effective execution mode: argument first, then ``REPRO_PARALLEL``."""
    if mode is None:
        mode = os.environ.get("REPRO_PARALLEL", "thread")
    if mode in ("0", "none"):
        mode = "off"
    if mode not in MODES:
        raise ValueError(
            f"unknown REPRO_PARALLEL mode {mode!r}; use one of {MODES}"
        )
    return mode


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int | bool | None = None,
) -> list:
    """``[fn(item) for item in items]``, possibly thread-parallel.

    Results come back in input order whatever the completion order, so
    callers remain deterministic.  Serial when the resolved worker count is
    1, the mode is ``off``, or there is at most one item.  Always uses
    threads (never processes): the callers of this generic map close over
    live objects — relations, shipment logs — that must stay shared.

    A fresh, private executor is created per call and torn down with it;
    this keeps nested parallel sections (a per-CFD map whose tasks run the
    parallel fused engine, say) deadlock-free, at the price of a few
    microseconds of thread start-up — noise next to any fragment scan.
    """
    n = resolve_workers(workers)
    if n <= 1 or len(items) <= 1 or resolve_mode() == "off":
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(n, len(items))) as pool:
        return list(pool.map(fn, items))


# -- fragment-resident worker processes ---------------------------------------

#: worker-process state: the fragments installed by the pool initializer.
_RESIDENT: list | None = None


def _install_fragments(payload: bytes) -> None:
    """Pool initializer: unpack ``(schema, rows)`` pairs into live relations.

    Runs once per worker process.  Every worker holds every fragment (the
    executor API cannot route a task to a chosen worker), so each rebuilds
    its own :class:`~repro.relational.Relation` — and, lazily, its own
    columnar caches, which then persist across work orders exactly like a
    site's local indexes.
    """
    global _RESIDENT
    from ..relational import Relation

    _RESIDENT = [
        Relation(schema, rows, copy=False)
        for schema, rows in pickle.loads(payload)
    ]


def _run_resident(fn: Callable, index: int, args: tuple):
    """Task shim executed in a worker: apply ``fn`` to a resident fragment."""
    if _RESIDENT is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("fragment pool worker has no resident fragments")
    return fn(_RESIDENT[index], *args)


class FragmentPool:
    """A process pool whose workers hold one cluster's fragments resident.

    Mirrors the paper's deployment: data is *placed* once (the pickling in
    the initializer — the expensive, cold step) and every subsequent
    detection ships only work orders out and compact summaries back.  Build
    through :func:`fragment_pool`, which caches one pool per cluster and
    caps the number of live pools.
    """

    __slots__ = ("workers", "_executor")

    def __init__(self, fragments: Sequence, workers: int) -> None:
        import multiprocessing

        self.workers = workers
        payload = pickle.dumps(
            [(fragment.schema, fragment.rows) for fragment in fragments],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            # fork is cheapest and keeps worker start-up off the placement
            # cost; non-POSIX platforms fall back to spawn
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_install_fragments,
            initargs=(payload,),
        )

    def run(self, fn: Callable, tasks: Sequence[tuple[int, tuple]]) -> list:
        """Run ``fn(fragment_i, *args)`` for each ``(i, args)`` task, ordered.

        ``fn`` must be a module-level function (it crosses the process
        boundary by qualified name) and its arguments and results must
        pickle.
        """
        futures = [
            self._executor.submit(_run_resident, fn, index, args)
            for index, args in tasks
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


#: live pools in creation order, for LRU eviction and atexit cleanup.
_POOLS: list[FragmentPool] = []


def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS:
        pool.close()
    _POOLS.clear()


atexit.register(_shutdown_pools)


def fragment_pool(owner, fragments: Sequence, workers: int) -> FragmentPool:
    """The cached :class:`FragmentPool` of ``owner`` (a cluster), or a new one.

    The pool hangs off the owner object (clusters are immutable, like
    relations), so repeated detections against one cluster reuse the placed
    fragments.  At most :data:`MAX_PROCESS_POOLS` pools stay alive
    globally; beyond that the least recently created pool is shut down —
    short-lived clusters (the synthetic ones the hybrid detector builds)
    therefore cannot leak worker processes.
    """
    cached = getattr(owner, "_fragment_pool", None)
    if cached is not None and cached.workers == workers and cached in _POOLS:
        # refresh LRU position
        _POOLS.remove(cached)
        _POOLS.append(cached)
        return cached
    pool = FragmentPool(fragments, workers)
    _POOLS.append(pool)
    while len(_POOLS) > MAX_PROCESS_POOLS:
        _POOLS.pop(0).close()
    try:
        owner._fragment_pool = pool
    except AttributeError:  # slotted stand-ins just rebuild per call
        pass
    return pool


def map_fragments(
    owner,
    fragments: Sequence,
    fn: Callable,
    tasks: Sequence[tuple[int, tuple]],
    workers: int | bool | None = None,
    mode: str | None = None,
) -> list:
    """Run ``fn(fragments[i], *args)`` for each ``(i, args)`` task, ordered.

    The workhorse of the distributed detectors' scan stage.  Dispatches on
    the resolved mode: serial loop, shared-memory thread map, or the
    owner's fragment-resident :class:`FragmentPool`.  ``fragments`` is the
    owner's *complete* fragment list (so a cached process pool always holds
    every fragment, whichever subset this call touches); ``tasks`` selects
    the fragments to scan.  Results are ordered like ``tasks`` regardless
    of completion order, which keeps parallel runs bit-identical to serial.
    """
    n = resolve_workers(workers)
    mode = resolve_mode(mode)
    if n <= 1 or mode == "off" or len(tasks) <= 1:
        return [fn(fragments[i], *args) for i, args in tasks]
    if mode == "process":
        pool = fragment_pool(owner, fragments, n)
        return pool.run(fn, tasks)
    with ThreadPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        futures = [pool.submit(fn, fragments[i], *args) for i, args in tasks]
        return [future.result() for future in futures]


def parallel_enabled(workers: int | bool | None = None) -> bool:
    """Whether the scheduler would actually run anything concurrently."""
    return resolve_workers(workers) > 1 and resolve_mode() != "off"
