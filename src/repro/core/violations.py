"""Violation sets ``Vio`` and projected violations ``Vioπ`` (Section II-C).

``Vioπ(φ, D)`` — the projection of the violating tuples onto the ``X``
attributes of ``φ`` — is what the distributed algorithms compute and ship,
because it is often far smaller than ``Vio(φ, D)`` and, per the paper, used
interchangeably with it.  A :class:`ViolationReport` therefore carries a set
of :class:`Violation` records at Vioπ granularity plus, when the detector
has whole tuples at hand (centralized runs, constant CFDs checked locally),
the key projections of the violating tuples (``Vio`` granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Violation:
    """One element of ``Vioπ(φ, D)``: an ``X``-value that witnesses errors.

    ``cfd`` is the source CFD's name; ``lhs_attributes``/``lhs_values`` are
    the CFD's ``X`` list and the violating projection ``t[X]``.  Remaining
    attributes of the schema are implicitly ``null`` as in the paper.
    """

    cfd: str
    lhs_attributes: tuple[str, ...]
    lhs_values: tuple[object, ...]

    def __repr__(self) -> str:
        binding = ", ".join(
            f"{a}={v!r}" for a, v in zip(self.lhs_attributes, self.lhs_values)
        )
        return f"Vioπ[{self.cfd}]({binding})"


class ViolationReport:
    """Aggregated detection output for a set Σ of CFDs."""

    __slots__ = ("violations", "tuple_keys")

    def __init__(
        self,
        violations: Iterable[Violation] = (),
        tuple_keys: Iterable[tuple] = (),
    ) -> None:
        self.violations: set[Violation] = set(violations)
        #: key projections of violating tuples (``Vio`` granularity), when known
        self.tuple_keys: set[tuple] = set(tuple_keys)

    # -- building --------------------------------------------------------

    def add(self, violation: Violation) -> None:
        self.violations.add(violation)

    def add_tuple_key(self, key: tuple) -> None:
        self.tuple_keys.add(key)

    def merge(self, other: "ViolationReport") -> "ViolationReport":
        """In-place union with another report; returns self."""
        self.violations |= other.violations
        self.tuple_keys |= other.tuple_keys
        return self

    @classmethod
    def union(cls, reports: Iterable["ViolationReport"]) -> "ViolationReport":
        """Union of several reports (``Vioπ(Σ, D) = ⋃ Vioπ(φ, D_i)``)."""
        merged = cls()
        for report in reports:
            merged.merge(report)
        return merged

    # -- queries ---------------------------------------------------------

    def for_cfd(self, name: str) -> set[Violation]:
        """The Vioπ entries attributed to the CFD named ``name``."""
        return {v for v in self.violations if v.cfd == name}

    def cfd_names(self) -> set[str]:
        """Names of CFDs with at least one violation."""
        return {v.cfd for v in self.violations}

    def is_clean(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def __bool__(self) -> bool:  # truthiness = "found something"
        return bool(self.violations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationReport):
            return NotImplemented
        return self.violations == other.violations

    def __repr__(self) -> str:
        return (
            f"ViolationReport({len(self.violations)} Vioπ entries, "
            f"{len(self.tuple_keys)} violating tuple keys)"
        )

    def summary(self) -> str:
        """A short per-CFD count table."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.cfd] = counts.get(violation.cfd, 0) + 1
        lines = [f"{name}: {count} violating pattern(s)" for name, count in sorted(counts.items())]
        return "\n".join(lines) if lines else "no violations"
