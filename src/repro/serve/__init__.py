"""The resident multi-tenant detection service (``repro serve``).

One resident ``Incremental*Detector`` session per (tenant, relation-id,
Σ), driven concurrently over HTTP: group-commit coalescing before the
delta fold, bounded per-session queues with backpressure, and an
LRU-bounded registry that retires sessions into restorable snapshots.
See :mod:`repro.serve.service` for the session machinery and
:mod:`repro.serve.http` for the wire protocol.
"""

from .durability import (
    DurableStore,
    SessionJournal,
    WalScan,
    read_wal,
    resolve_checkpoint,
    resolve_fsync,
)
from .governor import (
    CircuitBreaker,
    Governor,
    TokenBucket,
    resolve_breaker,
    resolve_cooldown,
    resolve_deadline,
    resolve_max_body,
    resolve_max_rows,
    resolve_rate,
    resolve_scrub,
    resolve_scrub_sample,
    resolve_tenant_sessions,
)
from .http import ServeHandler, serve_http
from .registry import SessionRegistry
from .scrubber import Scrubber
from .service import (
    Backpressure,
    BadSessionSpec,
    BadSnapshot,
    CircuitOpen,
    DeadlineExceeded,
    DetectionService,
    DuplicateSession,
    ManagedSession,
    PayloadTooLarge,
    QuotaExceeded,
    SESSION_KINDS,
    ServeError,
    SessionQuarantined,
    SessionRetired,
    UnknownSession,
    WALError,
    resolve_coalesce,
    resolve_max_sessions,
    resolve_queue_depth,
    resolve_timeout,
)

__all__ = [
    "Backpressure",
    "BadSessionSpec",
    "BadSnapshot",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "DetectionService",
    "DuplicateSession",
    "DurableStore",
    "Governor",
    "ManagedSession",
    "PayloadTooLarge",
    "QuotaExceeded",
    "SESSION_KINDS",
    "Scrubber",
    "ServeError",
    "ServeHandler",
    "SessionJournal",
    "SessionQuarantined",
    "SessionRegistry",
    "SessionRetired",
    "TokenBucket",
    "UnknownSession",
    "WALError",
    "WalScan",
    "read_wal",
    "resolve_breaker",
    "resolve_checkpoint",
    "resolve_coalesce",
    "resolve_cooldown",
    "resolve_deadline",
    "resolve_fsync",
    "resolve_max_body",
    "resolve_max_rows",
    "resolve_max_sessions",
    "resolve_queue_depth",
    "resolve_rate",
    "resolve_scrub",
    "resolve_scrub_sample",
    "resolve_tenant_sessions",
    "resolve_timeout",
    "serve_http",
]
