"""The resident multi-tenant detection service (``repro serve``).

One resident ``Incremental*Detector`` session per (tenant, relation-id,
Σ), driven concurrently over HTTP: group-commit coalescing before the
delta fold, bounded per-session queues with backpressure, and an
LRU-bounded registry that retires sessions into restorable snapshots.
See :mod:`repro.serve.service` for the session machinery and
:mod:`repro.serve.http` for the wire protocol.
"""

from .durability import (
    DurableStore,
    SessionJournal,
    WalScan,
    read_wal,
    resolve_checkpoint,
    resolve_fsync,
)
from .http import ServeHandler, serve_http
from .registry import SessionRegistry
from .service import (
    Backpressure,
    BadSessionSpec,
    BadSnapshot,
    DetectionService,
    DuplicateSession,
    ManagedSession,
    SESSION_KINDS,
    ServeError,
    SessionRetired,
    UnknownSession,
    WALError,
    resolve_coalesce,
    resolve_max_sessions,
    resolve_queue_depth,
    resolve_timeout,
)

__all__ = [
    "Backpressure",
    "BadSessionSpec",
    "BadSnapshot",
    "DetectionService",
    "DuplicateSession",
    "DurableStore",
    "ManagedSession",
    "SESSION_KINDS",
    "ServeError",
    "ServeHandler",
    "SessionJournal",
    "SessionRegistry",
    "SessionRetired",
    "UnknownSession",
    "WALError",
    "WalScan",
    "read_wal",
    "resolve_checkpoint",
    "resolve_coalesce",
    "resolve_fsync",
    "resolve_max_sessions",
    "resolve_queue_depth",
    "resolve_timeout",
    "serve_http",
]
