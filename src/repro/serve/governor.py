"""Overload governor: admission control, quotas and circuit breakers.

The serve stack built up through PRs 7 and 9 keeps a session *correct*
under concurrency and process death; this module keeps the whole
service *well-behaved* under load it cannot absorb.  Three mechanisms,
all deciding **before** any fold runs so a rejected request never
partially applies:

* **token-bucket request rates** — each tenant draws from its own
  bucket (``REPRO_SERVE_RATE`` requests/second, burst = one second of
  rate); an empty bucket yields :class:`~repro.serve.service.QuotaExceeded`
  (429 + ``Retry-After`` telling the client exactly when a token will
  exist);
* **per-tenant caps** — resident sessions per tenant
  (``REPRO_SERVE_TENANT_SESSIONS``), queued update tickets per tenant
  (sessions-cap × queue depth), and rows per update
  (``REPRO_SERVE_MAX_ROWS``), so one tenant can neither occupy every
  registry slot nor wedge every handler thread behind its queues;
* **per-session circuit breakers** — :class:`CircuitBreaker` opens
  after K consecutive fold/WAL failures (``REPRO_SERVE_BREAKER``),
  serves :class:`~repro.serve.service.CircuitOpen` (503 +
  ``Retry-After``) for ``REPRO_SERVE_COOLDOWN`` seconds, then admits a
  single half-open probe: success closes it, failure re-opens it.

The governor also stamps the admission **deadline** on update tickets
(``REPRO_SERVE_DEADLINE``): the group-commit leader drops tickets that
expired while queued (:class:`~repro.serve.service.DeadlineExceeded`)
*before* folding them, bounding the p99 of what it does accept.

Locking: the governor holds one internal lock and never calls out of
this module while holding it — like the journals it is a **leaf** in
the lock order (registry lock → session locks → governor/journal), so
admission checks can run from any layer without inversion risk.
"""

from __future__ import annotations

import os
import threading
import time

from .service import CircuitOpen, QuotaExceeded

DEFAULT_TENANT_SESSIONS = 0  # 0 = unlimited (PR 7/9 behavior)
DEFAULT_RATE = 0.0  # requests/second/tenant; 0 = unlimited
DEFAULT_MAX_ROWS = 100_000  # rows (inserted + deleted) per update
DEFAULT_DEADLINE = 0.0  # seconds in queue before shedding; 0 = off
DEFAULT_BREAKER = 5  # consecutive failures before the breaker opens
DEFAULT_COOLDOWN = 1.0  # seconds open before a half-open probe
DEFAULT_MAX_BODY = 8 * 1024 * 1024  # request body cap in bytes
DEFAULT_SCRUB = 0.0  # seconds between scrub rounds; 0 = off
DEFAULT_SCRUB_SAMPLE = 64  # verify(sample=N) per scrubbed session


def _resolve_count(name: str, override, default: int, minimum: int) -> int:
    """An integer knob with a floor; ``minimum=0`` means 0 disables it."""
    if override is not None:
        value = override
    else:
        raw = os.environ.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{name} must be an integer >= {minimum}, got {raw!r}"
            ) from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return int(value)


def _resolve_seconds(name: str, override, default: float, minimum: float):
    """A float knob in seconds with a floor; ``minimum=0`` allows off."""
    if override is not None:
        value = override
    else:
        raw = os.environ.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{name} must be a number >= {minimum}, got {raw!r}"
            ) from None
    value = float(value)
    if not value >= minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def resolve_tenant_sessions(override: int | None = None) -> int:
    """Resident sessions per tenant (``REPRO_SERVE_TENANT_SESSIONS``);
    0 (the default) keeps the pre-governor unlimited behavior."""
    return _resolve_count(
        "REPRO_SERVE_TENANT_SESSIONS", override, DEFAULT_TENANT_SESSIONS, 0
    )


def resolve_rate(override: float | None = None) -> float:
    """Admitted requests/second/tenant (``REPRO_SERVE_RATE``); 0 = off."""
    return _resolve_seconds("REPRO_SERVE_RATE", override, DEFAULT_RATE, 0.0)


def resolve_max_rows(override: int | None = None) -> int:
    """Rows (inserted + deleted) per update (``REPRO_SERVE_MAX_ROWS``)."""
    return _resolve_count(
        "REPRO_SERVE_MAX_ROWS", override, DEFAULT_MAX_ROWS, 1
    )


def resolve_deadline(override: float | None = None) -> float:
    """Queue-residence deadline in seconds (``REPRO_SERVE_DEADLINE``);
    0 (the default) never sheds on age."""
    return _resolve_seconds(
        "REPRO_SERVE_DEADLINE", override, DEFAULT_DEADLINE, 0.0
    )


def resolve_breaker(override: int | None = None) -> int:
    """Consecutive fold/WAL failures before the per-session breaker
    opens (``REPRO_SERVE_BREAKER``)."""
    return _resolve_count("REPRO_SERVE_BREAKER", override, DEFAULT_BREAKER, 1)


def resolve_cooldown(override: float | None = None) -> float:
    """Seconds an open breaker waits before its half-open probe
    (``REPRO_SERVE_COOLDOWN``)."""
    value = _resolve_seconds(
        "REPRO_SERVE_COOLDOWN", override, DEFAULT_COOLDOWN, 0.0
    )
    if not value > 0:
        raise ValueError(
            f"REPRO_SERVE_COOLDOWN must be > 0 seconds, got {value!r}"
        )
    return value


def resolve_max_body(override: int | None = None) -> int:
    """Request-body byte cap (``REPRO_SERVE_MAX_BODY``, default 8 MiB)."""
    return _resolve_count(
        "REPRO_SERVE_MAX_BODY", override, DEFAULT_MAX_BODY, 1
    )


def resolve_scrub(override: float | None = None) -> float:
    """Seconds between integrity-scrub rounds (``REPRO_SERVE_SCRUB``);
    0 (the default) disables the background scrubber."""
    return _resolve_seconds("REPRO_SERVE_SCRUB", override, DEFAULT_SCRUB, 0.0)


def resolve_scrub_sample(override: int | None = None) -> int:
    """Sampled keys per scrub ``verify`` (``REPRO_SERVE_SCRUB_SAMPLE``)."""
    return _resolve_count(
        "REPRO_SERVE_SCRUB_SAMPLE", override, DEFAULT_SCRUB_SAMPLE, 1
    )


class TokenBucket:
    """One tenant's request-rate bucket: ``rate`` tokens/second, burst
    of one second's worth (at least one token)."""

    def __init__(self, rate: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, self.rate)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> float | None:
        """Take one token; ``None`` on success, else seconds until one
        will exist (the ``Retry-After`` the client sees)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class CircuitBreaker:
    """Per-session breaker: closed → open after K consecutive failures,
    half-open after the cool-down, one probe decides.

    State transitions are counted so they are visible in ``/v1/stats``;
    :meth:`admit` is the only method that raises, always *before* the
    caller enqueues any work.
    """

    def __init__(
        self, threshold: int, cooldown: float, clock=time.monotonic
    ) -> None:
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        #: when the current half-open probe was admitted; None = no
        #: probe yet.  Time-bounded (one probe per cool-down window)
        #: rather than flag-bounded, so a probe that dies before its
        #: fold (shed, backpressure) can never wedge the breaker.
        self._probe_at: float | None = None
        self.counters = {
            "opened": 0,
            "reopened": 0,
            "closed": 0,
            "probes": 0,
            "rejected": 0,
        }

    def admit(self) -> None:
        """Gate one request; raises :class:`CircuitOpen` when tripped.

        While open, the first caller after the cool-down becomes the
        half-open probe; everyone else keeps getting 503 until the probe
        settles via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if self._state == "closed":
                return
            if self._state == "open":
                remaining = self.cooldown - (self._clock() - self._opened_at)
                if remaining > 0:
                    self.counters["rejected"] += 1
                    raise CircuitOpen(
                        f"circuit open after {self._consecutive} consecutive "
                        f"failures; probe in {remaining:.3f}s",
                        retry_after=max(remaining, 0.001),
                    )
                self._state = "half-open"
                self._probe_at = None
            # half-open: one probe per cool-down window
            now = self._clock()
            if (
                self._probe_at is not None
                and now - self._probe_at < self.cooldown
            ):
                self.counters["rejected"] += 1
                raise CircuitOpen(
                    "circuit half-open; a probe is already in flight",
                    retry_after=self.cooldown - (now - self._probe_at),
                )
            self._probe_at = now
            self.counters["probes"] += 1

    def record_success(self) -> None:
        """A fold committed: close (and reset) from any state."""
        with self._lock:
            if self._state != "closed":
                self.counters["closed"] += 1
            self._state = "closed"
            self._consecutive = 0
            self._probe_at = None

    def record_failure(self) -> None:
        """A fold/WAL failure: count it; trip at the threshold, and
        re-open immediately when a half-open probe fails."""
        with self._lock:
            self._consecutive += 1
            if self._state == "half-open":
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_at = None
                self.counters["reopened"] += 1
            elif (
                self._state == "closed"
                and self._consecutive >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.counters["opened"] += 1

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "threshold": self.threshold,
                **self.counters,
            }


class Governor:
    """The service-wide admission authority; one per ``DetectionService``.

    Every quota decision funnels through here so ``/v1/stats`` can show
    one coherent picture: per-tenant buckets and pending-ticket counts,
    plus shed counters per rejection reason.  All methods are
    thread-safe; the internal lock is a leaf (never held across calls
    into sessions, the registry or journals).
    """

    def __init__(
        self,
        tenant_sessions: int | None = None,
        rate: float | None = None,
        max_rows: int | None = None,
        deadline: float | None = None,
        breaker: int | None = None,
        cooldown: float | None = None,
        queue_depth: int = 64,
        clock=time.monotonic,
    ) -> None:
        self.tenant_sessions = resolve_tenant_sessions(tenant_sessions)
        self.rate = resolve_rate(rate)
        self.max_rows = resolve_max_rows(max_rows)
        self.deadline = resolve_deadline(deadline)
        self.breaker_threshold = resolve_breaker(breaker)
        self.cooldown = resolve_cooldown(cooldown)
        #: queued tickets a tenant may hold across its sessions; bounded
        #: only when the per-tenant session cap is (cap × queue depth)
        self.ticket_cap = (
            self.tenant_sessions * int(queue_depth)
            if self.tenant_sessions
            else 0
        )
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._pending: dict[str, int] = {}
        self.shed = {
            "rate": 0,
            "rows": 0,
            "tickets": 0,
            "sessions": 0,
            "deadline": 0,
        }

    # -- admission ---------------------------------------------------------

    def admit_request(self, tenant: str, rows: int = 0) -> None:
        """Rate + row-volume gate; runs before any registry lookup.

        Raises :class:`QuotaExceeded` (→ 429 + ``Retry-After``) when the
        tenant's bucket is dry or the update carries more rows than
        ``REPRO_SERVE_MAX_ROWS``.  Never called from recovery replay —
        restarts must not be throttled by client-facing quotas.
        """
        if rows > self.max_rows:
            with self._lock:
                self.shed["rows"] += 1
            raise QuotaExceeded(
                f"update carries {rows} rows; tenant cap is "
                f"{self.max_rows} rows per update",
                retry_after=0.0,
            )
        if not self.rate:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, clock=self.clock)
                self._buckets[tenant] = bucket
        retry_after = bucket.try_acquire()
        if retry_after is not None:
            with self._lock:
                self.shed["rate"] += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} is over its {self.rate:g} req/s rate",
                retry_after=round(retry_after, 3),
            )

    def admit_session(self, tenant: str, owned: int) -> None:
        """Gate a session create: ``owned`` is the tenant's current
        resident-session count (live + parked + in-flight creates)."""
        if self.tenant_sessions and owned >= self.tenant_sessions:
            with self._lock:
                self.shed["sessions"] += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} already holds {owned} sessions "
                f"(cap {self.tenant_sessions}); drop one first",
                retry_after=0.0,
            )

    def ticket_admitted(self, tenant: str) -> None:
        """Count one queued ticket against the tenant; quota-checked."""
        with self._lock:
            pending = self._pending.get(tenant, 0)
            if self.ticket_cap and pending >= self.ticket_cap:
                self.shed["tickets"] += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {pending} updates in flight "
                    f"(cap {self.ticket_cap}); retry shortly"
                )
            self._pending[tenant] = pending + 1

    def ticket_settled(self, tenant: str) -> None:
        """Release the ticket counted by :meth:`ticket_admitted`."""
        with self._lock:
            pending = self._pending.get(tenant, 0) - 1
            if pending > 0:
                self._pending[tenant] = pending
            else:
                self._pending.pop(tenant, None)

    # -- deadlines & breakers ---------------------------------------------

    def deadline_for(self) -> float | None:
        """The absolute queue deadline for a ticket admitted now."""
        if not self.deadline:
            return None
        return self.clock() + self.deadline

    def count_expired(self, n: int = 1) -> None:
        """Account tickets the group-commit leader shed as expired."""
        with self._lock:
            self.shed["deadline"] += n

    def new_breaker(self) -> CircuitBreaker:
        """A fresh per-session breaker (sessions reset on restore)."""
        return CircuitBreaker(
            self.breaker_threshold, self.cooldown, clock=self.clock
        )

    def stats(self) -> dict:
        with self._lock:
            return {
                "rate": self.rate,
                "max_rows": self.max_rows,
                "tenant_sessions": self.tenant_sessions,
                "ticket_cap": self.ticket_cap,
                "deadline": self.deadline,
                "breaker_threshold": self.breaker_threshold,
                "cooldown": self.cooldown,
                "pending_by_tenant": dict(self._pending),
                "shed": dict(self.shed),
            }
