"""Durability for resident sessions: WAL, snapshot store, recovery.

PR 7 made detection state *resident* — this module makes it *durable*.
Every session owning a slot under ``repro serve --data-dir DIR`` gets a
directory with two artifacts:

* an append-only **write-ahead log** of committed update batches.  One
  record per group commit, framed as ``[u32 length][u32 CRC32][JSON
  payload]`` (big-endian header), appended under the session lock after
  the in-memory fold and *before* the tickets settle — an acknowledged
  update is on the log.  The fsync policy is ``REPRO_SERVE_FSYNC``:

  - ``always`` — flush + ``fsync`` after every record: an acknowledged
    update survives power loss;
  - ``batch`` (default) — flush per record (survives process death),
    ``fsync`` at checkpoints: an OS crash can lose at most the records
    since the last checkpoint;
  - ``off``   — buffered writes, flushed at checkpoints only: lowest
    latency, a ``SIGKILL`` may lose recently acknowledged records.

* an **atomic snapshot** (``snapshot.json``): write-temp → flush →
  fsync → ``os.replace`` → directory fsync, so a crash mid-checkpoint
  leaves either the old or the new snapshot, never a torn one.  A
  checkpoint runs every ``REPRO_SERVE_CHECKPOINT`` WAL records and on
  LRU retire.  Snapshot and WAL are tied by an **epoch**: the snapshot
  records epoch ``E`` and the live log is ``wal.E.log``, so truncation
  is just "start ``wal.E+1.log``, delete the old file" — if the process
  dies between the snapshot replace and the unlink, recovery ignores
  the stale epoch's log instead of double-replaying it.

**Recovery** (:meth:`~repro.serve.registry.SessionRegistry.recover`)
scans the store, rebuilds each session from its last valid snapshot and
replays the WAL suffix through the normal ``update()`` path.  The scan
stops cleanly at the first torn frame, CRC mismatch or undecodable
record: the tail from that offset is **quarantined** (copied aside,
logged, counted) and the server keeps serving everything recovered so
far — corruption is an event, not a crash.

Fault injection: :mod:`repro.core.faults` disk kinds (``torn-write``,
``bit-flip``, ``fsync-fail``) hook the append path on their own disk
order counter — one per WAL append — so chaos tests drive the exact
failure the recovery scan must survive.

Lock ordering: journals are leaves.  The registry lock is taken first,
a session's ``_lock`` second, the journal lock last; journal code never
calls back into sessions or the registry, so the PR 7 ordering contract
(registry → session ``_lock`` → session ``_admit``) gains a leaf, not a
cycle.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import struct
import threading
import zlib
from collections import Counter
from pathlib import Path
from urllib.parse import quote, unquote

from ..core.faults import active_plan, disk_failure_for
from .service import BadSnapshot, WALError, _resolve_positive

log = logging.getLogger("repro.serve.durability")

DEFAULT_CHECKPOINT = 256
DEFAULT_FSYNC = "batch"

#: fsync policies, strongest first
FSYNC_POLICIES = ("always", "batch", "off")

#: WAL frame header: big-endian payload length + CRC32 of the payload
_HEADER = struct.Struct(">II")

#: a frame longer than this is treated as a corrupt length field — no
#: legitimate record comes close, and it stops a garbage length from
#: swallowing the rest of the scan
_MAX_RECORD = 1 << 30


def resolve_fsync(override: str | None = None) -> str:
    """The WAL fsync policy (``REPRO_SERVE_FSYNC=always|batch|off``).

    Unknown policies fail loudly (the CLI maps the ValueError to exit
    code 2, like every other knob).
    """
    value = override if override is not None else os.environ.get(
        "REPRO_SERVE_FSYNC"
    )
    if value is None or value == "":
        return DEFAULT_FSYNC
    value = str(value).strip().lower()
    if value not in FSYNC_POLICIES:
        raise ValueError(
            f"REPRO_SERVE_FSYNC must be one of {'|'.join(FSYNC_POLICIES)}, "
            f"got {value!r}"
        )
    return value


def resolve_checkpoint(override: int | None = None) -> int:
    """WAL records between snapshots (``REPRO_SERVE_CHECKPOINT``)."""
    return _resolve_positive(
        "REPRO_SERVE_CHECKPOINT", override, DEFAULT_CHECKPOINT
    )


def _encode(part: str) -> str:
    """A filesystem-safe single path component for a tenant/name.

    Percent-encodes everything outside the unreserved set; a leading
    dot is escaped too so no session can alias ``.``, ``..`` or the
    store's own dot-prefixed bookkeeping directories.
    """
    quoted = quote(str(part), safe="")
    if quoted.startswith("."):
        quoted = "%2E" + quoted[1:]
    return quoted or "%"


def _decode(part: str) -> str:
    return unquote(part)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    platforms whose directories cannot be opened."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalScan:
    """The result of reading one WAL file: valid records + tail verdict."""

    __slots__ = ("records", "offsets", "tail_offset", "tail_reason")

    def __init__(self, records, offsets, tail_offset, tail_reason) -> None:
        self.records = records          #: decoded record payloads, in order
        self.offsets = offsets          #: byte offset of each record's frame
        self.tail_offset = tail_offset  #: where the valid prefix ends
        self.tail_reason = tail_reason  #: None, or why the scan stopped


def read_wal(path: Path) -> WalScan:
    """Decode the valid prefix of a WAL file; never raises on corruption.

    Stops at the first torn frame (short header or payload), CRC
    mismatch, oversized length field or undecodable payload and reports
    the reason — the caller decides to quarantine.  A missing file is an
    empty, clean log.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalScan([], [], 0, None)
    records: list[dict] = []
    offsets: list[int] = []
    offset = 0
    tail_reason = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            tail_reason = "torn frame header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            tail_reason = f"corrupt length field ({length})"
            break
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            tail_reason = "torn record payload"
            break
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            tail_reason = "CRC mismatch"
            break
        try:
            entry = json.loads(payload)
        except ValueError:
            tail_reason = "undecodable record payload"
            break
        if not isinstance(entry, dict) or "updates" not in entry:
            tail_reason = "malformed record shape"
            break
        records.append(entry)
        offsets.append(offset)
        offset = start + length
    return WalScan(records, offsets, offset, tail_reason)


class SessionJournal:
    """One session's durable artifacts: the live WAL file + snapshot.

    Thread-safe and a lock leaf (see the module doc).  Owned by the
    :class:`DurableStore`, bound to the live ``ManagedSession`` via
    ``bind_journal`` — it survives LRU retire/restore cycles.
    """

    def __init__(self, store: "DurableStore", tenant: str, name: str) -> None:
        self._store = store
        self.tenant = tenant
        self.name = name
        self.directory = store.session_dir(tenant, name)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / "snapshot.json"
        self._lock = threading.Lock()
        self._epoch = self._stored_epoch()
        self._file = open(self.wal_path(self._epoch), "ab")
        #: bytes of valid committed records; a failed append truncates
        #: back to here so the *next* committed record is recoverable
        self._size = self.wal_path(self._epoch).stat().st_size
        self._since_checkpoint = 0
        self._wedged = False

    def wal_path(self, epoch: int) -> Path:
        return self.directory / f"wal.{epoch:08d}.log"

    def _stored_epoch(self) -> int:
        try:
            header = json.loads(self.snapshot_path.read_text())
            return int(header["epoch"])
        except (OSError, ValueError, TypeError, KeyError):
            return 0

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def wedged(self) -> bool:
        """Whether append repair gave up: every further log() fails
        until a checkpoint rolls the epoch.  Feeds ``/healthz``."""
        with self._lock:
            return self._wedged

    # -- the append path ---------------------------------------------------

    def log(self, committed: list) -> None:
        """Append one committed batch as a framed record.

        Raises :class:`WALError` when the record cannot be made durable
        (I/O failure, injected disk fault, unserializable values) — the
        session settles the batch's tickets with that error.
        """
        try:
            payload = json.dumps(
                {"updates": committed}, separators=(",", ":")
            ).encode("utf-8")
        except (TypeError, ValueError) as error:
            self._store.count("wal_errors")
            raise WALError(
                f"update batch is not JSON-serializable: {error}"
            ) from None
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        fault = None
        plan = active_plan()
        if plan is not None:
            order = plan.next_disk_order()
            fault = plan.disk_fault_for(order)
        if fault == "bit-flip":
            # written whole, CRC already computed: silent corruption
            # only recovery's checksum scan can see
            flipped = bytearray(payload)
            flipped[len(flipped) // 2] ^= 0x40
            payload = bytes(flipped)
        frame = _HEADER.pack(len(payload), crc) + payload
        with self._lock:
            if self._wedged:
                self._store.count("wal_errors")
                raise WALError(
                    f"WAL for {self.tenant}/{self.name} is wedged after an "
                    "unrepairable append failure; updates are refused until "
                    "restart"
                )
            try:
                if fault == "torn-write":
                    self._file.write(frame[: max(1, len(frame) // 2)])
                    self._file.flush()
                    raise disk_failure_for("torn-write", order)
                self._file.write(frame)
                policy = self._store.fsync
                if policy in ("always", "batch"):
                    self._file.flush()
                if fault == "fsync-fail":
                    raise disk_failure_for("fsync-fail", order)
                if policy == "always":
                    os.fsync(self._file.fileno())
                    self._store.count("fsyncs")
            except OSError as error:
                # truncate back to the last good record so the appends
                # that follow stay recoverable: without the repair, a
                # torn frame in the middle would make the recovery scan
                # stop early and drop later *acknowledged* records
                self._repair_locked()
                self._store.count("wal_errors")
                raise WALError(
                    f"WAL append failed for {self.tenant}/{self.name}: "
                    f"{error}"
                ) from error
            self._size += len(frame)
            self._since_checkpoint += 1
            self._store.count("wal_records")
            self._store.count("wal_bytes", len(frame))

    def _repair_locked(self) -> None:
        """Cut a failed append's partial frame off the log.

        If even the repair fails the journal wedges: every later append
        raises — refusing updates loudly beats acknowledging records a
        restart cannot see.
        """
        try:
            self._file.flush()
            self._file.truncate(self._size)
        except OSError:
            self._wedged = True

    def checkpoint_due(self) -> bool:
        with self._lock:
            return self._since_checkpoint >= self._store.checkpoint_every

    # -- checkpoints -------------------------------------------------------

    def checkpoint(self, snapshot: dict) -> None:
        """Atomically persist ``snapshot`` and truncate the WAL.

        Write-temp → flush → fsync → ``os.replace`` → directory fsync,
        then switch to the next epoch's (empty) log file and delete the
        old one.  On failure the old snapshot + full WAL still hold the
        session's durable state, so the caller may keep serving.
        """
        with self._lock:
            new_epoch = self._epoch + 1
            document = {"epoch": new_epoch, "session": snapshot}
            temp = self.snapshot_path.with_suffix(".json.tmp")
            try:
                with open(temp, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, separators=(",", ":"))
                    handle.flush()
                    if self._store.fsync != "off":
                        os.fsync(handle.fileno())
                os.replace(temp, self.snapshot_path)
                if self._store.fsync != "off":
                    _fsync_dir(self.directory)
                    self._store.count("fsyncs")
            except (OSError, TypeError, ValueError) as error:
                self._store.count("checkpoint_errors")
                try:
                    temp.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - best effort
                    pass
                raise WALError(
                    f"checkpoint failed for {self.tenant}/{self.name}: "
                    f"{error}"
                ) from error
            old_file, old_epoch = self._file, self._epoch
            self._file = open(self.wal_path(new_epoch), "ab")
            self._epoch = new_epoch
            self._size = 0
            self._since_checkpoint = 0
            self._wedged = False
            old_file.close()
            try:
                os.unlink(self.wal_path(old_epoch))
            except OSError:  # pragma: no cover - stale log is harmless
                pass
            self._store.count("checkpoints")

    def close(self) -> None:
        with self._lock:
            try:
                self._file.flush()
                self._file.close()
            except OSError:  # pragma: no cover - already broken
                pass


class DurableStore:
    """The ``--data-dir`` root: one directory per (tenant, name).

    Layout::

        DIR/<tenant>/<name>/snapshot.json      {"epoch": E, "session": ...}
        DIR/<tenant>/<name>/wal.<E>.log        the live epoch's WAL
        DIR/.quarantine/...                    corrupt artifacts, kept aside

    Tenant/name path components are percent-encoded (never dot-leading),
    so arbitrary session names cannot escape or alias the layout.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        fsync: str | None = None,
        checkpoint: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = resolve_fsync(fsync)
        self.checkpoint_every = resolve_checkpoint(checkpoint)
        self._lock = threading.Lock()
        self._journals: dict[tuple[str, str], SessionJournal] = {}
        self.counters: Counter = Counter()

    def count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.counters[key] += n

    def session_dir(self, tenant: str, name: str) -> Path:
        return self.root / _encode(tenant) / _encode(name)

    def journal(self, tenant: str, name: str) -> SessionJournal:
        """The (cached) journal for one session, creating its directory."""
        key = (tenant, name)
        with self._lock:
            journal = self._journals.get(key)
            if journal is None:
                journal = SessionJournal(self, tenant, name)
                self._journals[key] = journal
            return journal

    def checkpoint(self, tenant: str, name: str, snapshot: dict) -> None:
        self.journal(tenant, name).checkpoint(snapshot)

    def drop(self, tenant: str, name: str) -> None:
        """Forget a session's durable state (session drop is permanent)."""
        with self._lock:
            journal = self._journals.pop((tenant, name), None)
        if journal is not None:
            journal.close()
        shutil.rmtree(self.session_dir(tenant, name), ignore_errors=True)

    def close(self) -> None:
        with self._lock:
            journals = list(self._journals.values())
            self._journals.clear()
        for journal in journals:
            journal.close()

    # -- recovery-side reads ----------------------------------------------

    def scan(self):
        """Yield every (tenant, name) with durable state, sorted."""
        found = []
        try:
            tenant_dirs = sorted(self.root.iterdir())
        except OSError:
            return []
        for tenant_dir in tenant_dirs:
            if not tenant_dir.is_dir() or tenant_dir.name.startswith("."):
                continue
            for session_dir in sorted(tenant_dir.iterdir()):
                if session_dir.is_dir() and not session_dir.name.startswith("."):
                    found.append(
                        (_decode(tenant_dir.name), _decode(session_dir.name))
                    )
        return found

    def load_snapshot(self, tenant: str, name: str) -> tuple[dict, int]:
        """The last checkpointed (session snapshot, epoch) pair.

        Raises :class:`BadSnapshot` — never ``json.JSONDecodeError`` or
        ``KeyError`` — for missing, truncated or garbage files, so
        recovery can quarantine instead of crashing.
        """
        path = self.session_dir(tenant, name) / "snapshot.json"
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as error:
            raise BadSnapshot(
                f"cannot read snapshot for {tenant}/{name}: {error}"
            ) from None
        try:
            document = json.loads(raw)
        except ValueError as error:
            raise BadSnapshot(
                f"snapshot for {tenant}/{name} is not valid JSON: {error}"
            ) from None
        if (
            not isinstance(document, dict)
            or not isinstance(document.get("epoch"), int)
            or not isinstance(document.get("session"), dict)
        ):
            raise BadSnapshot(
                f"snapshot for {tenant}/{name} is missing epoch/session"
            )
        return document["session"], document["epoch"]

    def read_wal(self, tenant: str, name: str, epoch: int) -> WalScan:
        return read_wal(self.session_dir(tenant, name) / f"wal.{epoch:08d}.log")

    # -- quarantine --------------------------------------------------------

    def _quarantine_root(self) -> Path:
        path = self.root / ".quarantine"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _quarantine_target(self, stem: str) -> Path:
        root = self._quarantine_root()
        for suffix in range(10_000):
            candidate = root / f"{stem}.{suffix}"
            if not candidate.exists():
                return candidate
        raise WALError(f"quarantine area overflow for {stem}")  # pragma: no cover

    def quarantine_wal_tail(
        self, tenant: str, name: str, epoch: int, offset: int, reason: str
    ) -> None:
        """Copy the invalid WAL suffix aside and log why it was cut."""
        source = self.session_dir(tenant, name) / f"wal.{epoch:08d}.log"
        target = self._quarantine_target(
            f"{_encode(tenant)}__{_encode(name)}.wal"
        )
        try:
            data = source.read_bytes()
            target.write_bytes(data[offset:])
        except OSError as error:  # pragma: no cover - forensics only
            log.warning(
                "could not quarantine WAL tail for %s/%s: %s",
                tenant, name, error,
            )
        self.count("quarantined_tails")
        log.warning(
            "quarantined WAL tail of %s/%s at offset %d (%s) -> %s; "
            "recovered state stops at the last valid record",
            tenant, name, offset, reason, target,
        )

    def quarantine_session(self, tenant: str, name: str, reason: str) -> None:
        """Move a session's whole directory aside (unusable snapshot)."""
        with self._lock:
            journal = self._journals.pop((tenant, name), None)
        if journal is not None:
            journal.close()
        source = self.session_dir(tenant, name)
        target = self._quarantine_target(f"{_encode(tenant)}__{_encode(name)}")
        try:
            os.replace(source, target)
        except OSError:  # pragma: no cover - cross-device fallback
            shutil.move(str(source), str(target))
        self.count("quarantined_snapshots")
        log.warning(
            "quarantined session %s/%s (%s) -> %s; the server keeps serving",
            tenant, name, reason, target,
        )

    def stats(self) -> dict:
        """The ``durability`` block of ``/v1/stats``."""
        with self._lock:
            return {
                "data_dir": str(self.root),
                "fsync": self.fsync,
                "checkpoint_every": self.checkpoint_every,
                **dict(self.counters),
            }
