"""Managed resident sessions: the service layer under the HTTP front end.

One :class:`ManagedSession` wraps one resident ``Incremental*Detector``
per (tenant, relation-id, Σ) and makes it safe and cheap to drive from
many request threads at once:

* **single-writer enforcement** — every fold runs under one per-session
  lock, the external serialization the session detectors document
  (``IncrementalDetector`` and the horizontal sessions also carry their
  own reentrant lock; the clust/vertical/hybrid families rely on this
  one);
* **group commit** — tiny update batches coalesce before the delta
  fold: requests enqueue tickets, the first thread through the lock
  drains up to ``REPRO_SERVE_COALESCE`` of them, reconciles them
  key-level into one combined batch (a delete cancels the pending
  insert of the same key, so the fold is equivalent to replaying the
  tickets serially) and folds once — the same amortization that makes
  the 0.1 % bench leg absorb at ≈490×, applied to request overhead;
* **admission control** — a session's pending queue is bounded by
  ``REPRO_SERVE_QUEUE``; an update stream that outruns its session gets
  :class:`Backpressure` (HTTP 429 + ``Retry-After``) instead of
  unbounded memory growth;
* **snapshot / restore** — :meth:`ManagedSession.retire` drains the
  queue and emits a JSON-able snapshot (schema, CFD sources, resident
  rows per fragment, cumulative stats) from which
  :meth:`ManagedSession.from_snapshot` rebuilds an equivalent session;
  the registry uses the pair for transparent LRU eviction.

Session kinds mirror the detector families: ``central`` (the
:class:`~repro.core.incremental.IncrementalDetector` keyed row store),
``ctr`` / ``pat-s`` / ``pat-rt`` (resident horizontal coordinators over
a uniform partition) and ``clust`` (resident CLUSTDETECT, the only kind
accepting several CFDs).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Iterable, Mapping, Sequence

from ..core import parse_cfd
from ..core.detection import detect_violations_reference
from ..core.faults import FoldFaultInjected, active_plan
from ..core.incremental import IncrementalDetector
from ..detect.clust import IncrementalClustDetector
from ..detect.incremental import IncrementalHorizontalDetector
from ..partition import partition_uniform
from ..relational import Relation
from ..relational.schema import Schema, SchemaError

DEFAULT_MAX_SESSIONS = 64
DEFAULT_QUEUE_DEPTH = 64
DEFAULT_COALESCE = 16
DEFAULT_TIMEOUT = 30.0

#: session kinds the service hosts; all but ``central`` partition the
#: payload rows uniformly over ``sites`` simulated fragments
SESSION_KINDS = ("central", "ctr", "pat-s", "pat-rt", "clust")


class ServeError(Exception):
    """Base of every typed service failure (mapped to HTTP statuses)."""


class BadSessionSpec(ServeError):
    """The session/update payload does not satisfy the contract (400)."""


class UnknownSession(ServeError):
    """No live or parked session under that (tenant, name) (404)."""


class DuplicateSession(ServeError):
    """create() for a (tenant, name) that already exists (409)."""


class SessionRetired(ServeError):
    """The session was retired (LRU-evicted) between lookup and use.

    Callers holding a stale reference retry through the registry, which
    restores the session from its parked snapshot transparently.
    """


class Backpressure(ServeError):
    """The session's pending-update queue is full (429).

    ``retry_after`` is the suggested client backoff in seconds.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BadSnapshot(ServeError):
    """A snapshot payload is truncated, garbage or structurally wrong.

    The typed boundary for restore paths: :meth:`ManagedSession.from_snapshot`
    and the disk store raise this — never a bare ``KeyError`` or
    ``json.JSONDecodeError`` — so recovery can quarantine and keep serving.
    """


class WALError(ServeError):
    """Durable logging of a committed batch failed (500).

    The in-memory fold already applied when this surfaces, but the batch
    may not have reached disk — the client must treat the update outcome
    as unknown and re-verify after a restart.
    """


class QuotaExceeded(Backpressure):
    """A tenant is over one of its admission quotas (429).

    Subclasses :class:`Backpressure` on purpose: the HTTP layer already
    maps that to 429 + ``Retry-After``, and for clients the remedy is
    identical — back off and retry.  Raised *before* any fold runs, so
    an over-quota request never partially applies.
    """


class CircuitOpen(ServeError):
    """The session's circuit breaker is open (503 + ``Retry-After``).

    After K consecutive fold/WAL failures the session degrades to fast
    failure instead of burning a handler thread per doomed request;
    ``retry_after`` is the cool-down remaining before the next half-open
    probe is allowed through.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ServeError):
    """The ticket expired in the queue before its fold ran (503).

    Only raised *before* folding — an acknowledged fold is never
    un-applied — so a shed update is guaranteed to have left no trace.
    ``retry_after`` suggests when queue pressure may have drained.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SessionQuarantined(ServeError):
    """The session was quarantined by the integrity scrubber (503).

    Deliberately *not* a :class:`SessionRetired`: the façade's retry
    would loop on a session that is gone for cause, not for capacity.
    Its durable state sits under ``.quarantine/`` for forensics; drop
    or re-create the name to serve it again.
    """


class PayloadTooLarge(ServeError):
    """The request body exceeds ``REPRO_SERVE_MAX_BODY`` (413)."""


def _resolve_positive(name: str, override, default: int) -> int:
    """One ``REPRO_SERVE_*`` knob: explicit override, else env, else
    default; anything non-integer or < 1 fails loudly (the CLI maps the
    ValueError to exit code 2, like every other knob)."""
    if override is not None:
        value = override
    else:
        raw = os.environ.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{name} must be a positive integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return value


def resolve_max_sessions(override: int | None = None) -> int:
    """Resident-session cap before LRU eviction (``REPRO_SERVE_MAX_SESSIONS``)."""
    return _resolve_positive(
        "REPRO_SERVE_MAX_SESSIONS", override, DEFAULT_MAX_SESSIONS
    )


def resolve_queue_depth(override: int | None = None) -> int:
    """Per-session pending-update bound (``REPRO_SERVE_QUEUE``)."""
    return _resolve_positive("REPRO_SERVE_QUEUE", override, DEFAULT_QUEUE_DEPTH)


def resolve_coalesce(override: int | None = None) -> int:
    """Max tickets folded as one combined batch (``REPRO_SERVE_COALESCE``)."""
    return _resolve_positive("REPRO_SERVE_COALESCE", override, DEFAULT_COALESCE)


def resolve_timeout(override: float | None = None) -> float:
    """Per-connection socket timeout in seconds (``REPRO_SERVE_TIMEOUT``).

    Bounds how long a stalled client can pin one handler thread: the
    stdlib handler applies it to the connection socket, so a peer that
    stops sending (or reading) mid-request gets disconnected instead of
    holding the thread forever.  Must be a positive number; malformed
    values fail loudly (the CLI maps the ValueError to exit code 2).
    """
    if override is not None:
        value = override
    else:
        raw = os.environ.get("REPRO_SERVE_TIMEOUT")
        if raw is None or raw == "":
            return DEFAULT_TIMEOUT
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SERVE_TIMEOUT must be a positive number, got {raw!r}"
            ) from None
    value = float(value)
    if not value > 0:
        raise ValueError(
            f"REPRO_SERVE_TIMEOUT must be > 0 seconds, got {value!r}"
        )
    return value


class _Ticket:
    """One enqueued update: rows in, results (or the error) out.

    ``deadline`` (absolute, governor clock) is stamped at admission when
    ``REPRO_SERVE_DEADLINE`` is set; the group-commit leader sheds
    tickets that expired while queued before folding them.
    """

    __slots__ = (
        "inserted", "deleted", "site", "done", "result", "error", "deadline"
    )

    def __init__(self, inserted: list, deleted: list, site: int) -> None:
        self.inserted = inserted
        self.deleted = deleted
        self.site = site
        self.done = False
        self.result = None
        self.error: BaseException | None = None
        self.deadline: float | None = None

    def settle(self, result=None, error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self.done = True


def validate_snapshot(snapshot) -> Mapping:
    """Structural check of a snapshot payload; typed errors only.

    Every restore path funnels through here so a truncated or corrupted
    snapshot — from a client, the parked store or the disk store — fails
    as :class:`BadSnapshot`, which recovery treats as "quarantine and
    keep serving", never as a crash.
    """
    if not isinstance(snapshot, Mapping):
        raise BadSnapshot(
            f"snapshot must be a JSON object, got {type(snapshot).__name__}"
        )
    for field, kinds in (
        ("tenant", str),
        ("name", str),
        ("spec", Mapping),
        ("fragments", (list, tuple)),
    ):
        value = snapshot.get(field)
        if not isinstance(value, kinds):
            raise BadSnapshot(
                f"snapshot field {field!r} is missing or malformed "
                f"(got {type(value).__name__})"
            )
    for rows in snapshot["fragments"]:
        if not isinstance(rows, (list, tuple)) or not all(
            isinstance(row, (list, tuple)) for row in rows
        ):
            raise BadSnapshot("snapshot 'fragments' must be lists of rows")
    stats = snapshot.get("stats", {})
    if not isinstance(stats, Mapping):
        raise BadSnapshot("snapshot 'stats' must be an object")
    return snapshot


def _reconcile(tickets: Sequence[_Ticket], key_of) -> tuple[list, list]:
    """Fold a ticket sequence into one equivalent (deleted, inserted) pair.

    The detectors fold deletes before inserts, so a combined batch is
    equivalent to replaying the tickets serially exactly when key-level
    order effects cancel: a delete arriving *after* a pending insert of
    the same key must erase that insert (and still delete the key's
    resident rows), while an insert after a delete keeps both (the
    delete-then-insert order already matches the fold).  O(tickets ×
    rows) with a per-key index — the queues are bounded and small.
    """
    deleted: dict = {}
    inserted: list = []  # (key, row), insertion order preserved
    for ticket in tickets:
        for key in ticket.deleted:
            inserted = [entry for entry in inserted if entry[0] != key]
            deleted[key] = None
        for row in ticket.inserted:
            inserted.append((key_of(row), row))
    return list(deleted), [row for _key, row in inserted]


class ManagedSession:
    """One resident detection session with group commit and backpressure."""

    def __init__(
        self,
        tenant: str,
        name: str,
        spec: Mapping,
        queue_depth: int,
        coalesce: int,
        _snapshot: Mapping | None = None,
    ) -> None:
        self.tenant = tenant
        self.name = name
        self.kind = spec.get("kind", "central")
        if self.kind not in SESSION_KINDS:
            raise BadSessionSpec(
                f"unknown session kind {self.kind!r}; "
                f"use one of {', '.join(SESSION_KINDS)}"
            )
        schema_spec = spec.get("schema")
        if not isinstance(schema_spec, Mapping) or "attributes" not in schema_spec:
            raise BadSessionSpec(
                "spec needs a 'schema' object with 'attributes' "
                "(and optionally 'name' and 'key')"
            )
        try:
            self.schema = Schema(
                schema_spec.get("name", name),
                schema_spec["attributes"],
                schema_spec.get("key"),
            )
        except SchemaError as error:
            raise BadSessionSpec(str(error)) from None
        sources = spec.get("cfds")
        if not sources or not isinstance(sources, (list, tuple)):
            raise BadSessionSpec("spec needs a non-empty 'cfds' list")
        self.cfd_sources = [str(source) for source in sources]
        try:
            self.cfds = [parse_cfd(source) for source in self.cfd_sources]
        except Exception as error:
            raise BadSessionSpec(f"bad CFD: {error}") from None
        if self.kind in ("ctr", "pat-s", "pat-rt") and len(self.cfds) != 1:
            raise BadSessionSpec(
                f"kind {self.kind!r} hosts exactly one CFD per session; "
                "use kind 'clust' (or 'central') for CFD sets"
            )
        self.sites = int(spec.get("sites", 3)) if self.kind != "central" else 1
        if self.kind != "central" and self.sites < 1:
            raise BadSessionSpec(f"'sites' must be >= 1, got {self.sites}")
        self._key_positions = self.schema.key_positions()
        self._queue_depth = queue_depth
        self._coalesce = coalesce
        #: _admit guards the pending queue + the retired flag; _lock
        #: serializes folds and reads.  Order: _lock may take _admit,
        #: never the reverse.
        self._admit = threading.Lock()
        self._lock = threading.RLock()
        self._pending: deque[_Ticket] = deque()
        self._retired = False
        #: quarantine reason once the scrubber condemned this session;
        #: stale references fail typed instead of serving drifted state
        self._degraded: str | None = None
        #: bound by the registry when a durable store is configured; the
        #: journal is a lock leaf (registry lock → _lock → journal lock)
        self._journal = None
        #: bound by the registry when the service runs governed; the
        #: governor (and the breaker it built) is a lock leaf too
        self._governor = None
        self.breaker = None
        self.stats = {
            "updates": 0,
            "folds": 0,
            "coalesced_max": 0,
            "detects": 0,
            "verifies": 0,
            "restores": 0,
            "deadline_dropped": 0,
        }
        if _snapshot is not None:
            self.stats.update(_snapshot.get("stats", {}))
            self.stats["restores"] += 1
            fragments = [
                Relation(self.schema, [tuple(row) for row in rows], copy=False)
                for rows in _snapshot["fragments"]
            ]
        else:
            fragments = None
        self._detector = self._build(spec, fragments)

    # -- construction ------------------------------------------------------

    def _check_row(self, row) -> tuple:
        row = tuple(row)
        if len(row) != len(self.schema):
            raise BadSessionSpec(
                f"row of width {len(row)} does not fit schema "
                f"{self.schema.name!r} of width {len(self.schema)}: {row!r}"
            )
        return row

    def _build(self, spec: Mapping, fragments: list[Relation] | None):
        """Attach the detector: one full fold over the initial rows."""
        from ..distributed import Cluster

        if fragments is None:
            rows = [self._check_row(row) for row in spec.get("rows", [])]
            relation = Relation(self.schema, rows, copy=False)
        if self.kind == "central":
            if fragments is not None:
                rows = [row for fragment in fragments for row in fragment.rows]
                relation = Relation(self.schema, rows, copy=False)
            detector = IncrementalDetector(self.cfds)
            detector.attach(relation)
            return detector
        if fragments is not None:
            cluster = Cluster.from_fragments(fragments)
        else:
            cluster = partition_uniform(relation, self.sites)
        if self.kind == "clust":
            detector = IncrementalClustDetector(cluster, self.cfds)
        else:
            detector = IncrementalHorizontalDetector(
                cluster, self.cfds[0], self.kind
            )
        detector.detect()
        return detector

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping, queue_depth: int, coalesce: int
    ) -> "ManagedSession":
        """An equivalent session rebuilt from :meth:`snapshot` output.

        Raises :class:`BadSnapshot` for truncated/garbage payloads and
        :class:`BadSessionSpec` for well-formed snapshots whose spec or
        rows break the session contract — typed either way, so restore
        and recovery paths can quarantine instead of crashing.
        """
        validate_snapshot(snapshot)
        try:
            return cls(
                snapshot["tenant"],
                snapshot["name"],
                snapshot["spec"],
                queue_depth,
                coalesce,
                _snapshot=snapshot,
            )
        except ServeError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise BadSnapshot(
                f"snapshot does not rebuild a session: "
                f"{type(error).__name__}: {error}"
            ) from None

    # -- keys --------------------------------------------------------------

    def _key_of(self, row: tuple):
        positions = self._key_positions
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def _check_key(self, key):
        """Normalize one client-supplied deleted key (JSON lists arrive
        as lists; single-attribute keys travel raw, like the store's)."""
        if isinstance(key, list):
            key = tuple(key)
        if len(self._key_positions) == 1:
            if isinstance(key, tuple):
                if len(key) != 1:
                    raise BadSessionSpec(
                        f"key {key!r} does not fit key attributes "
                        f"{self.schema.key}"
                    )
                return key[0]
            return key
        if not isinstance(key, tuple) or len(key) != len(self._key_positions):
            raise BadSessionSpec(
                f"key {key!r} does not fit key attributes {self.schema.key}"
            )
        return key

    # -- updates: group commit --------------------------------------------

    def update(self, inserted=(), deleted=(), site: int | None = None) -> dict:
        """Absorb one update request; may coalesce with neighbours.

        Enqueues a ticket (bounded queue → :class:`Backpressure`), then
        races for the session lock: the winner drains up to the coalesce
        cap, reconciles and folds the combined batch; losers find their
        ticket already settled when they get the lock.  Either way the
        caller observes its update folded before the call returns.
        """
        if site is not None and self.kind != "central" and not (
            0 <= int(site) < self.sites
        ):
            raise BadSessionSpec(
                f"site {site} out of range for {self.sites} sites"
            )
        if self.breaker is not None:
            self.breaker.admit()  # CircuitOpen before any work queues
        ticket = _Ticket(
            [self._check_row(row) for row in inserted],
            [self._check_key(key) for key in deleted],
            int(site or 0),
        )
        governor = self._governor
        if governor is not None:
            ticket.deadline = governor.deadline_for()
            governor.ticket_admitted(self.tenant)  # QuotaExceeded
        admitted = time.perf_counter()
        try:
            with self._admit:
                if self._degraded is not None:
                    raise SessionQuarantined(
                        f"session {self.tenant}/{self.name} is "
                        f"quarantined: {self._degraded}"
                    )
                if self._retired:
                    raise SessionRetired(
                        f"session {self.tenant}/{self.name} was retired"
                    )
                if len(self._pending) >= self._queue_depth:
                    raise Backpressure(
                        f"session {self.tenant}/{self.name} has "
                        f"{len(self._pending)} pending updates (limit "
                        f"{self._queue_depth}); retry shortly"
                    )
                self._pending.append(ticket)
            while not ticket.done:
                with self._lock:
                    if ticket.done:
                        break
                    self._fold_round()
        finally:
            if governor is not None:
                governor.ticket_settled(self.tenant)
        if ticket.error is not None:
            raise ticket.error
        # queue_seconds is the governed region — enqueue to settle — the
        # span the deadline bounds; clients use it to see p99 without
        # the transport noise in front of admission
        result = dict(ticket.result)
        result["queue_seconds"] = time.perf_counter() - admitted
        return result

    def _fold_round(self) -> None:
        """Leader duty: drain one coalesced batch and fold it once.

        A combined fold that fails rolls back inside the detector
        (transactional batches), then the tickets replay one by one so a
        poison ticket fails alone instead of taking its neighbours down.
        """
        with self._admit:
            batch: list[_Ticket] = []
            while self._pending and len(batch) < self._coalesce:
                batch.append(self._pending.popleft())
        if not batch:
            return
        governor = self._governor
        if governor is not None:
            # deadline shedding happens here and only here: strictly
            # before the fold, never after — an acked fold is never
            # un-applied, and a shed ticket provably left no trace
            now = governor.clock()
            expired = [
                ticket for ticket in batch
                if ticket.deadline is not None and now > ticket.deadline
            ]
            if expired:
                batch = [t for t in batch if t not in expired]
                governor.count_expired(len(expired))
                self.stats["deadline_dropped"] += len(expired)
                error = DeadlineExceeded(
                    f"update queued past its {governor.deadline:g}s "
                    f"deadline in session {self.tenant}/{self.name}; "
                    "it was not applied"
                )
                for ticket in expired:
                    ticket.settle(error=error)
            if not batch:
                return
        self.stats["folds"] += 1
        self.stats["updates"] += len(batch)
        if len(batch) > self.stats["coalesced_max"]:
            self.stats["coalesced_max"] = len(batch)
        if len(batch) == 1:
            self._fold_each(batch)
            return
        try:
            self._fold_combined(batch)
        except Exception:
            self._fold_each(batch)

    def _maybe_inject_fold_fault(self) -> None:
        """``fold-fail@N`` hook: raise *before* the detector mutates, so
        the injected failure exercises the exact production path — the
        transactional rollback, the per-ticket fallback and the circuit
        breaker all see a real application error."""
        plan = active_plan()
        if plan is not None and plan.fold_fault_for(plan.next_fold_order()):
            raise FoldFaultInjected(
                f"injected fold failure in session "
                f"{self.tenant}/{self.name} (fold-fail)"
            )

    def _apply(self, site: int, deleted: list, inserted: list) -> None:
        self._maybe_inject_fold_fault()
        if self.kind == "central":
            self._detector.update(inserted, deleted)
        else:
            self._detector.apply_updates({site: (inserted, deleted)})

    def bind_journal(self, journal) -> None:
        """Attach the durable journal committed batches append to."""
        with self._lock:
            self._journal = journal

    def bind_governor(self, governor) -> None:
        """Attach the service governor: deadlines, ticket quotas and a
        *fresh* circuit breaker — failure history deliberately does not
        survive retire/restore (a rebuilt session starts closed)."""
        with self._lock:
            self._governor = governor
            self.breaker = governor.new_breaker() if governor else None

    def degrade(self, reason: str) -> None:
        """Quarantine verdict: updates fail typed from here on."""
        with self._admit:
            self._degraded = reason

    def busy(self) -> bool:
        """Whether foreground tickets are queued (the scrubber yields)."""
        with self._admit:
            return bool(self._pending)

    def journal_wedged(self) -> bool:
        """Whether the durable journal gave up appending (healthz)."""
        journal = self._journal
        return bool(journal is not None and journal.wedged)

    def _log_committed(self, committed: list) -> None:
        """WAL-append one committed batch; runs under ``_lock`` after the
        in-memory fold and *before* tickets settle, so an acknowledged
        update is on the log (durability per the fsync policy) and a
        logging failure surfaces as :class:`WALError` instead of a silent
        ack.  ``committed`` is ``[(site, deleted_keys, inserted_rows)]``.
        A due checkpoint rides the same commit: ``_lock`` is reentrant,
        so :meth:`snapshot` can run right here in the fold path.
        """
        journal = self._journal
        if journal is None:
            return
        journal.log(committed)
        if journal.checkpoint_due():
            try:
                journal.checkpoint(self.snapshot())
            except WALError:
                # the WAL still holds every record the snapshot missed;
                # the journal counted the failure, so keep serving
                pass

    def _fold_combined(self, batch: list[_Ticket]) -> None:
        if self.kind == "central":
            deleted, inserted = _reconcile(batch, self._key_of)
            self._apply(0, deleted, inserted)
            committed = [(0, deleted, inserted)]
        else:
            per_site: dict[int, list[_Ticket]] = {}
            for ticket in batch:
                per_site.setdefault(ticket.site, []).append(ticket)
            updates = {}
            for site, tickets in sorted(per_site.items()):
                deleted, inserted = _reconcile(tickets, self._key_of)
                updates[site] = (inserted, deleted)
            self._maybe_inject_fold_fault()
            self._detector.apply_updates(updates)
            committed = [
                (site, deleted, inserted)
                for site, (inserted, deleted) in sorted(updates.items())
            ]
        try:
            self._log_committed(committed)
        except WALError as error:
            # the fold applied in memory but may not have reached disk;
            # never re-raise here (the caller's fallback would replay the
            # batch on top of the applied state) — settle with the error
            if self.breaker is not None:
                self.breaker.record_failure()
            for ticket in batch:
                ticket.settle(error=error)
            return
        if self.breaker is not None:
            self.breaker.record_success()
        result = self._result(coalesced=len(batch))
        for ticket in batch:
            ticket.settle(result=result)

    def _fold_each(self, batch: list[_Ticket]) -> None:
        for ticket in batch:
            try:
                self._apply(ticket.site, ticket.deleted, ticket.inserted)
                self._log_committed(
                    [(ticket.site, ticket.deleted, ticket.inserted)]
                )
            except Exception as error:
                # every fold/WAL failure feeds the breaker; K in a row
                # trips it open (the half-open probe lands here too)
                if self.breaker is not None:
                    self.breaker.record_failure()
                ticket.settle(error=error)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                ticket.settle(result=self._result(coalesced=1))

    def _result(self, coalesced: int) -> dict:
        report = self._detector.report
        return {
            "violations": len(report.violations),
            "tuple_keys": len(report.tuple_keys),
            "coalesced": coalesced,
        }

    # -- reads -------------------------------------------------------------

    def detect(self) -> dict:
        """The full current report, JSON-shaped and deterministic."""
        with self._lock:
            self.stats["detects"] += 1
            report = self._detector.report
        violations = sorted(
            (
                {
                    "cfd": v.cfd,
                    "lhs_attributes": list(v.lhs_attributes),
                    "lhs_values": list(v.lhs_values),
                }
                for v in report.violations
            ),
            key=repr,
        )
        return {
            "kind": self.kind,
            "violations": violations,
            "n_violations": len(violations),
            "tuple_keys": sorted((list(k) for k in report.tuple_keys), key=repr),
        }

    def verify(self, sample: int | None = None, seed: int = 8) -> bool:
        """Invariant check of the resident state (see the detectors').

        Kinds without their own ``verify`` (clust) fall back to a full
        reference recompute over the current fragment union, compared on
        violations.
        """
        with self._lock:
            self.stats["verifies"] += 1
            detector = self._detector
            if hasattr(detector, "verify"):
                return detector.verify(sample=sample, seed=seed)
            rows = [
                row
                for fragment in detector.fragments
                for row in fragment.rows
            ]
            expected = detect_violations_reference(
                Relation(self.schema, rows, copy=False),
                self.cfds,
                collect_tuples=False,
            )
            return set(expected.violations) == set(detector.report.violations)

    def snapshot(self) -> dict:
        """The session's durable state: enough to rebuild an equivalent
        session (same resident rows per fragment, same Σ, same stats)."""
        with self._lock:
            detector = self._detector
            if self.kind == "central":
                fragments = [[list(row) for row in detector.relation.rows]]
            else:
                fragments = [
                    [list(row) for row in fragment.rows]
                    for fragment in detector.fragments
                ]
            report = detector.report
            return {
                "tenant": self.tenant,
                "name": self.name,
                "kind": self.kind,
                "spec": {
                    "kind": self.kind,
                    "schema": {
                        "name": self.schema.name,
                        "attributes": list(self.schema.attributes),
                        "key": list(self.schema.key),
                    },
                    "cfds": list(self.cfd_sources),
                    "sites": self.sites,
                },
                "fragments": fragments,
                "n_rows": sum(len(rows) for rows in fragments),
                "n_violations": len(report.violations),
                "stats": dict(self.stats),
            }

    # -- lifecycle ---------------------------------------------------------

    def retire(self) -> dict:
        """Stop admitting, drain every pending ticket, emit the snapshot.

        After retire() returns, stale references raise
        :class:`SessionRetired` on update — the registry restores from
        the returned snapshot transparently on the next lookup.
        """
        with self._admit:
            self._retired = True
        with self._lock:
            while True:
                with self._admit:
                    drained = not self._pending
                if drained:
                    break
                self._fold_round()
            return self.snapshot()

    def __repr__(self) -> str:
        return (
            f"ManagedSession({self.tenant}/{self.name}, kind={self.kind}, "
            f"{len(self.cfds)} CFDs)"
        )


class DetectionService:
    """The façade the HTTP layer (and tests) drive: registry + retry.

    All methods are thread-safe.  ``update`` retries once through the
    registry when it loses the race against LRU eviction — the registry
    restores the session from its parked snapshot, so the caller never
    observes the eviction.
    """

    def __init__(
        self,
        max_sessions: int | None = None,
        queue_depth: int | None = None,
        coalesce: int | None = None,
        data_dir: str | os.PathLike | None = None,
        fsync: str | None = None,
        checkpoint: int | None = None,
        tenant_sessions: int | None = None,
        rate: float | None = None,
        max_rows: int | None = None,
        deadline: float | None = None,
        breaker: int | None = None,
        cooldown: float | None = None,
        scrub: float | None = None,
        scrub_sample: int | None = None,
    ) -> None:
        from .governor import Governor
        from .registry import SessionRegistry
        from .scrubber import Scrubber

        store = None
        if data_dir is not None:
            from .durability import DurableStore

            store = DurableStore(data_dir, fsync=fsync, checkpoint=checkpoint)
        depth = resolve_queue_depth(queue_depth)
        #: the admission authority every request funnels through; quotas
        #: default off (rate/deadline/tenant caps = 0) so an ungoverned
        #: service behaves exactly like the PR 7/9 one
        self.governor = Governor(
            tenant_sessions,
            rate,
            max_rows,
            deadline,
            breaker,
            cooldown,
            queue_depth=depth,
        )
        self.registry = SessionRegistry(
            max_sessions, depth, coalesce, store=store, governor=self.governor
        )
        #: sessions rebuilt from disk at startup (0 without a data dir)
        self.recovered = self.registry.recover() if store is not None else 0
        #: always constructed (stats show enabled: false when off); the
        #: daemon thread only starts with REPRO_SERVE_SCRUB > 0
        self.scrubber = Scrubber(self.registry, scrub, scrub_sample)
        self.scrubber.start()

    def close(self) -> None:
        """Stop background machinery (the scrubber thread)."""
        self.scrubber.stop()

    def create_session(self, tenant: str, name: str, spec: Mapping) -> dict:
        # rate-limited but exempt from the rows-per-update cap: the cap
        # governs the incremental stream, while a session's bootstrap
        # relation is already bounded by REPRO_SERVE_MAX_BODY
        self.governor.admit_request(tenant)
        session = self.registry.create(tenant, name, spec)
        report = session.detect()
        return {
            "tenant": tenant,
            "session": name,
            "kind": session.kind,
            "sites": session.sites,
            "n_violations": report["n_violations"],
        }

    def _with_session(self, tenant: str, name: str, call):
        for attempt in (0, 1):
            session = self.registry.get(tenant, name)
            try:
                return call(session)
            except SessionRetired:
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def update(
        self,
        tenant: str,
        name: str,
        inserted: Iterable = (),
        deleted: Iterable = (),
        site: int | None = None,
    ) -> dict:
        inserted = list(inserted)
        deleted = list(deleted)
        # governed admission runs here, in the client-facing façade —
        # recovery replay calls session.update() directly and must never
        # be throttled by client quotas
        self.governor.admit_request(
            tenant, rows=len(inserted) + len(deleted)
        )
        return self._with_session(
            tenant, name, lambda s: s.update(inserted, deleted, site)
        )

    def detect(self, tenant: str, name: str) -> dict:
        return self._with_session(tenant, name, lambda s: s.detect())

    def verify(
        self, tenant: str, name: str, sample: int | None = None, seed: int = 8
    ) -> dict:
        ok = self._with_session(
            tenant, name, lambda s: s.verify(sample=sample, seed=seed)
        )
        return {"ok": bool(ok), "sample": sample}

    def snapshot(self, tenant: str, name: str) -> dict:
        return self._with_session(tenant, name, lambda s: s.snapshot())

    def drop(self, tenant: str, name: str) -> dict:
        self.registry.drop(tenant, name)
        return {"dropped": f"{tenant}/{name}"}

    def health(self) -> dict:
        """Truthful readiness: ``ok`` only while nothing is degraded.

        Degraded means: a quarantined session, a wedged journal, or a
        circuit breaker sitting open.  ``/healthz`` serves 503 with this
        payload when not ok (``?live=1`` stays a pure liveness probe).
        """
        detail = self.registry.health()
        detail["ok"] = not (
            detail["quarantined"]
            or detail["wedged"]
            or detail["breakers_open"]
        )
        return detail

    def stats(self) -> dict:
        payload = self.registry.stats()
        payload["governor"] = self.governor.stats()
        payload["scrubber"] = self.scrubber.stats()
        return payload
