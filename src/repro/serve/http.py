"""The threaded HTTP front end of the resident detection service.

Stdlib only (:mod:`http.server` with ``ThreadingHTTPServer``): every
request runs on its own thread against one shared
:class:`~repro.serve.service.DetectionService`, which is exactly the
concurrency regime the shared-dictionary locks and per-session group
commit exist for.

Routes (all payloads JSON)::

    GET    /healthz                                  liveness probe
    GET    /v1/stats                                 registry + session stats
    POST   /v1/<tenant>/sessions/<name>              create (spec body)
    DELETE /v1/<tenant>/sessions/<name>              drop
    POST   /v1/<tenant>/sessions/<name>/update       {inserted, deleted, site}
    GET    /v1/<tenant>/sessions/<name>/detect       full current report
    POST   /v1/<tenant>/sessions/<name>/verify       {sample, seed}
    GET    /v1/<tenant>/sessions/<name>/snapshot     durable session state

Typed service failures map onto statuses: bad payloads → 400, unknown
sessions → 404, duplicate creates → 409, backpressure and quota
rejections → 429 with a ``Retry-After`` header, oversized bodies → 413,
open circuit breakers / expired deadlines / quarantined sessions → 503
(breakers and deadlines carry ``Retry-After`` too), anything
unexpected → 500.

``/healthz`` is truthful: 200 only while nothing is degraded (no
quarantined session, no wedged journal, no breaker sitting open), else
503 with the degraded inventory.  ``/healthz?live=1`` stays a pure
liveness probe for orchestrators that only need "the process answers".
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from ..relational.schema import SchemaError
from .governor import DEFAULT_MAX_BODY, resolve_max_body
from .service import (
    Backpressure,
    BadSessionSpec,
    CircuitOpen,
    DeadlineExceeded,
    DetectionService,
    DuplicateSession,
    PayloadTooLarge,
    SessionQuarantined,
    UnknownSession,
    resolve_timeout,
)

_SESSION = re.compile(r"^/v1/([^/]+)/sessions/([^/]+)$")
_ACTION = re.compile(
    r"^/v1/([^/]+)/sessions/([^/]+)/(update|detect|verify|snapshot)$"
)


class ServeHandler(BaseHTTPRequestHandler):
    """One request; the service on ``self.server.service`` is shared."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # the server is driven by tests and load generators; request logging
    # would drown their output
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def setup(self) -> None:
        # per-connection socket timeout (REPRO_SERVE_TIMEOUT): the stdlib
        # applies self.timeout via connection.settimeout(), so a stalled
        # client gets disconnected instead of pinning a handler thread
        self.timeout = getattr(self.server, "request_timeout", self.timeout)
        super().setup()

    # -- plumbing ----------------------------------------------------------

    def _body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadSessionSpec("Content-Length is not an integer") from None
        limit = getattr(self.server, "max_body", DEFAULT_MAX_BODY)
        if length > limit:
            # reject on the declared length, before reading a byte: an
            # unbounded rfile.read() is exactly the memory hole this cap
            # closes.  The unread body poisons the connection for
            # keep-alive, so the 413 handler closes it.
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the {limit}-byte "
                "cap (REPRO_SERVE_MAX_BODY)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError:
            raise BadSessionSpec("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise BadSessionSpec("request body must be a JSON object")
        return payload

    def _send(self, status: int, payload: dict, headers: dict | None = None):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        service: DetectionService = self.server.service
        path, _, query = self.path.partition("?")
        try:
            match = _ACTION.match(path)
            if match:
                tenant, name, action = map(unquote, match.groups())
                self._session_action(service, method, tenant, name, action)
                return
            match = _SESSION.match(path)
            if match:
                tenant, name = map(unquote, match.groups())
                if method == "POST":
                    self._send(
                        201, service.create_session(tenant, name, self._body())
                    )
                elif method == "DELETE":
                    self._send(200, service.drop(tenant, name))
                else:
                    self._send(405, {"error": f"{method} not allowed here"})
                return
            if path == "/healthz" and method == "GET":
                if "live=1" in query.split("&"):
                    self._send(200, {"ok": True, "live": True})
                    return
                health = service.health()
                self._send(200 if health["ok"] else 503, health)
                return
            if path == "/v1/stats" and method == "GET":
                self._send(200, service.stats())
                return
            self._send(404, {"error": f"no route {self.path}"})
        except Backpressure as error:
            # QuotaExceeded lands here too — same remedy for clients
            self._send(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": f"{error.retry_after:.3f}"},
            )
        except (CircuitOpen, DeadlineExceeded) as error:
            self._send(
                503,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": f"{error.retry_after:.3f}"},
            )
        except SessionQuarantined as error:
            self._send(503, {"error": str(error)})
        except PayloadTooLarge as error:
            # the declared body was never read; keep-alive would misread
            # it as the next request, so this connection must die
            self.close_connection = True
            self._send(413, {"error": str(error)})
        except UnknownSession as error:
            self._send(404, {"error": str(error)})
        except DuplicateSession as error:
            self._send(409, {"error": str(error)})
        except (BadSessionSpec, SchemaError, ValueError, TypeError) as error:
            self._send(400, {"error": str(error)})
        except (BrokenPipeError, TimeoutError):
            # client went away, or stalled past REPRO_SERVE_TIMEOUT,
            # mid-response; the connection is closed either way
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    def _session_action(
        self,
        service: DetectionService,
        method: str,
        tenant: str,
        name: str,
        action: str,
    ) -> None:
        if action == "update" and method == "POST":
            body = self._body()
            self._send(
                200,
                service.update(
                    tenant,
                    name,
                    inserted=body.get("inserted", ()),
                    deleted=body.get("deleted", ()),
                    site=body.get("site"),
                ),
            )
        elif action == "detect" and method == "GET":
            self._send(200, service.detect(tenant, name))
        elif action == "verify" and method == "POST":
            body = self._body()
            self._send(
                200,
                service.verify(
                    tenant,
                    name,
                    sample=body.get("sample"),
                    seed=int(body.get("seed", 8)),
                ),
            )
        elif action == "snapshot" and method == "GET":
            self._send(200, service.snapshot(tenant, name))
        else:
            self._send(405, {"error": f"{method} not allowed on {action}"})

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


def serve_http(
    service: DetectionService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float | None = None,
    max_body: int | None = None,
) -> ThreadingHTTPServer:
    """A ready (not yet serving) threaded server; ``port=0`` picks a free
    one — read the bound address back from ``server.server_address``.

    Call ``serve_forever()`` (the CLI does) or drive it from a thread in
    tests; ``daemon_threads`` keeps request threads from blocking exit.
    ``timeout`` (else ``REPRO_SERVE_TIMEOUT``, default 30 s) bounds how
    long one stalled connection can hold a handler thread.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    # the stdlib default accept backlog (5) resets connections the
    # moment a burst outruns the accept loop; overload must be answered
    # by the governor (429/503 + Retry-After), not by kernel RSTs
    server.socket.listen(128)
    server.request_timeout = resolve_timeout(timeout)
    server.max_body = resolve_max_body(max_body)
    server.service = service if service is not None else DetectionService()
    return server
