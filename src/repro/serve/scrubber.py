"""Background integrity scrubber for resident sessions.

A resident detector that silently drifts from its relation — a bug, a
bit-flip, a bad restore — keeps answering wrong until somebody calls
``verify``.  The scrubber makes that call continuously: a daemon thread
cycles the live sessions every ``REPRO_SERVE_SCRUB`` seconds, running
the session's own seeded ``verify(sample=REPRO_SERVE_SCRUB_SAMPLE)``
against the reference engine (under the normal session locks, like any
client verify), and **quarantines** sessions that fail it: the registry
evicts the session, stale handles flip to a degraded 503 state, and the
durable directory moves to ``.quarantine/`` through the PR 9
:meth:`~repro.serve.durability.DurableStore.quarantine_session` path —
the evidence is preserved, every other session keeps serving.

The scrubber never competes with foreground traffic: a session with
queued tickets (or one mid-retire) is skipped this round and caught on
a later pass.  ``verify-drift@N`` in a :class:`~repro.core.faults.FaultPlan`
forces the Nth scrub check to report drift, so chaos tests drive the
quarantine path deterministically without corrupting real state.

:meth:`Scrubber.scrub_now` runs one synchronous round for tests and
operators; the thread is only cadence around it.
"""

from __future__ import annotations

import threading

from ..core.faults import active_plan
from .governor import resolve_scrub, resolve_scrub_sample

#: seed for the scrubber's sampled verifies — fixed so a scrub round is
#: reproducible given the same resident state
SCRUB_SEED = 8


class Scrubber:
    """Cycles live sessions through sampled integrity checks."""

    def __init__(
        self,
        registry,
        interval: float | None = None,
        sample: int | None = None,
        seed: int = SCRUB_SEED,
    ) -> None:
        self.registry = registry
        self.interval = resolve_scrub(interval)
        self.sample = resolve_scrub_sample(sample)
        self.seed = seed
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.counters = {
            "rounds": 0,
            "scrubbed": 0,
            "skipped_busy": 0,
            "clean": 0,
            "drifted": 0,
            "quarantined": 0,
            "errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Launch the daemon thread (no-op when the interval is 0)."""
        if not self.interval or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread; returns once it is joined."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrub_now()
            except Exception:  # noqa: BLE001 - the scrubber never kills serve
                with self._lock:
                    self.counters["errors"] += 1

    # -- one round ---------------------------------------------------------

    def scrub_now(self) -> dict:
        """One synchronous scrub round over the current live sessions.

        Returns ``{"scrubbed": n, "skipped": n, "quarantined": [keys]}``
        so tests and operators see exactly what the round did.
        """
        with self._lock:
            self.counters["rounds"] += 1
        scrubbed = skipped = 0
        quarantined: list[str] = []
        for session in self.registry.live_sessions():
            # foreground traffic always wins: skip sessions with queued
            # tickets (they get verified on a quieter round)
            if session.busy():
                skipped += 1
                with self._lock:
                    self.counters["skipped_busy"] += 1
                continue
            ok, reason = self._check(session)
            scrubbed += 1
            with self._lock:
                self.counters["scrubbed"] += 1
                self.counters["clean" if ok else "drifted"] += 1
            if ok:
                continue
            if self.registry.quarantine(session.tenant, session.name, reason):
                quarantined.append(f"{session.tenant}/{session.name}")
                with self._lock:
                    self.counters["quarantined"] += 1
        return {
            "scrubbed": scrubbed,
            "skipped": skipped,
            "quarantined": quarantined,
        }

    def _check(self, session) -> tuple[bool, str]:
        """One sampled verify; fault plans can force a drift verdict."""
        plan = active_plan()
        if plan is not None and plan.verify_fault_for(plan.next_verify_order()):
            return False, "injected integrity drift (verify-drift)"
        try:
            ok = session.verify(sample=self.sample, seed=self.seed)
        except Exception as error:  # noqa: BLE001 - drift, typed below
            return False, f"scrub verify raised {type(error).__name__}: {error}"
        if ok:
            return True, ""
        return False, (
            f"scrub verify failed (sample={self.sample}, seed={self.seed}): "
            "resident state disagrees with the reference engine"
        )

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": bool(self.interval),
                "interval": self.interval,
                "sample": self.sample,
                **self.counters,
            }
