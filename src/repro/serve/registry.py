"""The session registry: (tenant, name) → resident session, LRU-bounded.

At most ``REPRO_SERVE_MAX_SESSIONS`` sessions stay resident; creating
(or restoring) one beyond the cap retires the least recently used —
:meth:`~repro.serve.service.ManagedSession.retire` drains its pending
updates and emits a snapshot, which parks here until the next lookup
rebuilds an equivalent session from it.  Clients never see the churn:
a parked session looks exactly like a live one, it just pays a rebuild
(one full fold) on its next request.

With a :class:`~repro.serve.durability.DurableStore` attached the same
lifecycle becomes durable: creation checkpoints the initial snapshot to
disk, committed folds append to the session's WAL (the session holds
the journal), LRU retire checkpoints to disk as well as parking in
memory, drop deletes the directory, and :meth:`SessionRegistry.recover`
rebuilds every stored session at startup — last valid snapshot plus a
WAL replay through the normal ``update()`` path, quarantining corrupt
tails instead of refusing to start.

Lock ordering: the registry lock is taken first, session locks second
(``retire`` runs under both), journal locks last.  Session code never
calls back into the registry and journal code never calls back into
sessions, so the ordering cannot invert.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from .service import (
    DuplicateSession,
    ManagedSession,
    ServeError,
    SessionQuarantined,
    UnknownSession,
    WALError,
    resolve_coalesce,
    resolve_max_sessions,
    resolve_queue_depth,
)


class SessionRegistry:
    """Live sessions with LRU eviction into parked snapshots."""

    def __init__(
        self,
        max_sessions: int | None = None,
        queue_depth: int | None = None,
        coalesce: int | None = None,
        store=None,
        governor=None,
    ) -> None:
        self.max_sessions = resolve_max_sessions(max_sessions)
        self.queue_depth = resolve_queue_depth(queue_depth)
        self.coalesce = resolve_coalesce(coalesce)
        #: optional DurableStore; None keeps the registry memory-only
        self.store = store
        #: optional Governor; sessions built here get bound to it (its
        #: state is a lock leaf, so binding never risks inversion)
        self.governor = governor
        #: reentrant so drop() can run inside stats()-free paths that
        #: already hold it; taken before any session lock, never after
        self._lock = threading.RLock()
        self._live: OrderedDict[tuple[str, str], ManagedSession] = OrderedDict()
        self._parked: dict[tuple[str, str], dict] = {}
        #: keys reserved by an in-flight create: the initial fold runs
        #: outside the registry lock, these keep the name check atomic
        self._pending_creates: set[tuple[str, str]] = set()
        #: scrubber verdicts: key → reason; lookups fail typed (503)
        #: until the name is dropped or re-created
        self._quarantined: dict[tuple[str, str], str] = {}
        self.counters = {
            "created": 0,
            "evicted": 0,
            "restored": 0,
            "dropped": 0,
            "quarantined": 0,
        }

    def _bind_durable(self, session: ManagedSession, checkpoint: bool) -> None:
        """Attach the session's journal; optionally checkpoint now."""
        if self.store is None:
            return
        journal = self.store.journal(session.tenant, session.name)
        if checkpoint:
            journal.checkpoint(session.snapshot())
        session.bind_journal(journal)

    def _bind_governor(self, session: ManagedSession) -> None:
        if self.governor is not None:
            session.bind_governor(self.governor)

    def create(self, tenant: str, name: str, spec: Mapping) -> ManagedSession:
        """Build, attach and register a new session (409 on duplicates).

        The initial fold (and the initial durable checkpoint) runs
        **outside** the registry lock: the key is reserved with a
        pending placeholder under the lock, the expensive build happens
        unlocked, and the finished session installs (or the placeholder
        rolls back) under the lock again — so one giant create can no
        longer block every other tenant's ``get``/``stats``.  Creating a
        quarantined name clears its tombstone: the condemned durable
        state already moved to ``.quarantine/``, a fresh session is a
        fresh start.
        """
        key = (tenant, name)
        with self._lock:
            if (
                key in self._live
                or key in self._parked
                or key in self._pending_creates
            ):
                raise DuplicateSession(
                    f"session {tenant}/{name} already exists"
                )
            self._quarantined.pop(key, None)
            if self.governor is not None:
                owned = sum(
                    1
                    for pool in (
                        self._live, self._parked, self._pending_creates
                    )
                    for (owner, _sname) in pool
                    if owner == tenant
                )
                self.governor.admit_session(tenant, owned)
            self._pending_creates.add(key)
        try:
            session = ManagedSession(
                tenant, name, spec, self.queue_depth, self.coalesce
            )
            self._bind_governor(session)
            self._bind_durable(session, checkpoint=True)
        except BaseException:
            with self._lock:
                self._pending_creates.discard(key)
            raise
        with self._lock:
            self._pending_creates.discard(key)
            self._live[key] = session
            self.counters["created"] += 1
            self._shed_locked()
            return session

    def get(self, tenant: str, name: str) -> ManagedSession:
        """The live session, restoring a parked one transparently."""
        key = (tenant, name)
        with self._lock:
            reason = self._quarantined.get(key)
            if reason is not None:
                raise SessionQuarantined(
                    f"session {tenant}/{name} is quarantined: {reason}"
                )
            session = self._live.get(key)
            if session is not None:
                self._live.move_to_end(key)
                return session
            snapshot = self._parked.pop(key, None)
            if snapshot is None:
                # a key mid-create is not yet addressable: the creating
                # request returns it when (and only when) it installs
                raise UnknownSession(f"no session {tenant}/{name}")
            session = ManagedSession.from_snapshot(
                snapshot, self.queue_depth, self.coalesce
            )
            self._bind_governor(session)
            # the disk snapshot was written at retire and the WAL
            # truncated with it, so binding without a fresh checkpoint
            # is enough — the store already holds this exact state
            self._bind_durable(session, checkpoint=False)
            self._live[key] = session
            self.counters["restored"] += 1
            self._shed_locked()
            return session

    def drop(self, tenant: str, name: str) -> None:
        """Delete the session (live, parked or quarantined) for good."""
        key = (tenant, name)
        with self._lock:
            session = self._live.pop(key, None)
            parked = self._parked.pop(key, None)
            tombstone = self._quarantined.pop(key, None)
            if session is None and parked is None and tombstone is None:
                raise UnknownSession(f"no session {tenant}/{name}")
            self.counters["dropped"] += 1
            if session is not None:
                session.retire()  # drains pending updates, then discard
            if self.store is not None and tombstone is None:
                # a quarantined session's directory already moved to
                # .quarantine/ — dropping only clears the tombstone
                self.store.drop(tenant, name)

    def quarantine(self, tenant: str, name: str, reason: str) -> bool:
        """Condemn a drifted session: evict, tombstone, move to disk.

        The scrubber's verdict path.  Returns False when the session is
        already gone (raced with a drop).  The live registry keeps
        serving every other session; this key serves typed 503s until
        dropped or re-created.
        """
        key = (tenant, name)
        with self._lock:
            session = self._live.pop(key, None)
            parked = self._parked.pop(key, None)
            if session is None and parked is None:
                return False
            self._quarantined[key] = reason
            self.counters["quarantined"] += 1
        if session is not None:
            session.degrade(reason)
        if self.store is not None:
            try:
                self.store.quarantine_session(tenant, name, reason)
            except ServeError:
                # the store counted the failure; the in-memory
                # tombstone alone still stops the session serving
                pass
        return True

    def live_sessions(self) -> list[ManagedSession]:
        """A stable snapshot of the live sessions (scrubber rounds)."""
        with self._lock:
            return list(self._live.values())

    def health(self) -> dict:
        """The degraded-state inventory behind ``/healthz``."""
        with self._lock:
            quarantined = sorted(
                f"{tenant}/{name}" for tenant, name in self._quarantined
            )
            wedged = []
            breakers_open = []
            for (tenant, name), session in self._live.items():
                label = f"{tenant}/{name}"
                if session.journal_wedged():
                    wedged.append(label)
                breaker = session.breaker
                if breaker is not None and breaker.state == "open":
                    breakers_open.append(label)
        return {
            "quarantined": quarantined,
            "wedged": wedged,
            "breakers_open": breakers_open,
        }

    def _shed_locked(self) -> None:
        """Retire sessions down to the cap, tenant-fairly.

        The victim is the least recently used session of a tenant
        holding the most live sessions — so a burst from one tenant
        sheds that tenant's own sessions first, and a single tenant can
        never evict every other tenant's residents.  With a store the
        parked snapshot goes to disk too (checkpoint + WAL truncation),
        so a parked session survives a process death exactly like a
        live one.
        """
        while len(self._live) > self.max_sessions:
            counts: dict[str, int] = {}
            for tenant, _name in self._live:
                counts[tenant] = counts.get(tenant, 0) + 1
            top = max(counts.values())
            key = next(  # OrderedDict iterates oldest-first: LRU wins
                k for k in self._live if counts[k[0]] == top
            )
            session = self._live.pop(key)
            snapshot = session.retire()
            self._parked[key] = snapshot
            if self.store is not None:
                try:
                    self.store.checkpoint(key[0], key[1], snapshot)
                except WALError:
                    # the WAL + previous snapshot still hold the durable
                    # state; the store counted the failure
                    pass
            self.counters["evicted"] += 1

    # -- startup recovery --------------------------------------------------

    def recover(self) -> int:
        """Rebuild every session the store holds; returns how many.

        Per session: load the last valid snapshot (quarantine the whole
        directory when it is unreadable), replay the WAL suffix through
        the normal ``update()`` path, stop at the first torn/corrupt/
        unreplayable record (quarantine the tail), then checkpoint the
        recovered state so the next restart starts from a clean epoch.
        Never raises for corrupt state — recovery degrades per session,
        the server keeps serving.
        """
        store = self.store
        if store is None:
            return 0
        recovered = 0
        for tenant, name in store.scan():
            try:
                snapshot, epoch = store.load_snapshot(tenant, name)
            except ServeError as error:
                store.quarantine_session(tenant, name, str(error))
                continue
            try:
                session = ManagedSession.from_snapshot(
                    snapshot, self.queue_depth, self.coalesce
                )
            except ServeError as error:
                store.quarantine_session(tenant, name, str(error))
                continue
            scan = store.read_wal(tenant, name, epoch)
            tail_offset, tail_reason = scan.tail_offset, scan.tail_reason
            replayed = 0
            for index, record in enumerate(scan.records):
                try:
                    for site, deleted, inserted in record["updates"]:
                        session.update(
                            inserted=inserted, deleted=deleted, site=site
                        )
                    replayed += 1
                except Exception as error:  # noqa: BLE001 - poison record
                    tail_offset = scan.offsets[index]
                    tail_reason = f"replay failed: {error}"
                    break
            if tail_reason is not None:
                store.quarantine_wal_tail(
                    tenant, name, epoch, tail_offset, tail_reason
                )
            store.count("replayed_records", replayed)
            # governed only after the replay above: a restart must never
            # be throttled or breaker-gated by client-facing quotas
            self._bind_governor(session)
            with self._lock:
                key = (tenant, name)
                try:
                    # durable state == recovered state from here on; the
                    # WAL restarts at a fresh epoch
                    self._bind_durable(session, checkpoint=True)
                except WALError as error:
                    store.quarantine_session(tenant, name, str(error))
                    continue
                self._live[key] = session
                self._parked.pop(key, None)
                self._shed_locked()
            store.count("recovered_sessions")
            recovered += 1
        return recovered

    def stats(self) -> dict:
        """Registry + per-session counters (the ``/v1/stats`` payload)."""
        with self._lock:
            sessions = {}
            for (tenant, name), session in self._live.items():
                entry = dict(session.stats)
                if session.breaker is not None:
                    entry["breaker"] = session.breaker.stats()
                sessions[f"{tenant}/{name}"] = entry
            payload = {
                "live": len(self._live),
                "parked": len(self._parked),
                "quarantined": len(self._quarantined),
                "max_sessions": self.max_sessions,
                "queue_depth": self.queue_depth,
                "coalesce": self.coalesce,
                **self.counters,
                "sessions": sessions,
            }
            if self.store is not None:
                payload["durability"] = self.store.stats()
            return payload
