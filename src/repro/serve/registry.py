"""The session registry: (tenant, name) → resident session, LRU-bounded.

At most ``REPRO_SERVE_MAX_SESSIONS`` sessions stay resident; creating
(or restoring) one beyond the cap retires the least recently used —
:meth:`~repro.serve.service.ManagedSession.retire` drains its pending
updates and emits a snapshot, which parks here until the next lookup
rebuilds an equivalent session from it.  Clients never see the churn:
a parked session looks exactly like a live one, it just pays a rebuild
(one full fold) on its next request.

Lock ordering: the registry lock is taken first, session locks second
(``retire`` runs under both).  Session code never calls back into the
registry, so the ordering cannot invert.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from .service import (
    DuplicateSession,
    ManagedSession,
    UnknownSession,
    resolve_coalesce,
    resolve_max_sessions,
    resolve_queue_depth,
)


class SessionRegistry:
    """Live sessions with LRU eviction into parked snapshots."""

    def __init__(
        self,
        max_sessions: int | None = None,
        queue_depth: int | None = None,
        coalesce: int | None = None,
    ) -> None:
        self.max_sessions = resolve_max_sessions(max_sessions)
        self.queue_depth = resolve_queue_depth(queue_depth)
        self.coalesce = resolve_coalesce(coalesce)
        #: reentrant so drop() can run inside stats()-free paths that
        #: already hold it; taken before any session lock, never after
        self._lock = threading.RLock()
        self._live: OrderedDict[tuple[str, str], ManagedSession] = OrderedDict()
        self._parked: dict[tuple[str, str], dict] = {}
        self.counters = {"created": 0, "evicted": 0, "restored": 0, "dropped": 0}

    def create(self, tenant: str, name: str, spec: Mapping) -> ManagedSession:
        """Build, attach and register a new session (409 on duplicates).

        The initial fold runs under the registry lock: creation is a
        once-per-session cost and serializing it keeps the name check
        and the install atomic without a placeholder protocol.
        """
        key = (tenant, name)
        with self._lock:
            if key in self._live or key in self._parked:
                raise DuplicateSession(
                    f"session {tenant}/{name} already exists"
                )
            session = ManagedSession(
                tenant, name, spec, self.queue_depth, self.coalesce
            )
            self._live[key] = session
            self.counters["created"] += 1
            self._shed_locked()
            return session

    def get(self, tenant: str, name: str) -> ManagedSession:
        """The live session, restoring a parked one transparently."""
        key = (tenant, name)
        with self._lock:
            session = self._live.get(key)
            if session is not None:
                self._live.move_to_end(key)
                return session
            snapshot = self._parked.pop(key, None)
            if snapshot is None:
                raise UnknownSession(f"no session {tenant}/{name}")
            session = ManagedSession.from_snapshot(
                snapshot, self.queue_depth, self.coalesce
            )
            self._live[key] = session
            self.counters["restored"] += 1
            self._shed_locked()
            return session

    def drop(self, tenant: str, name: str) -> None:
        """Delete the session (live or parked) for good."""
        key = (tenant, name)
        with self._lock:
            session = self._live.pop(key, None)
            parked = self._parked.pop(key, None)
            if session is None and parked is None:
                raise UnknownSession(f"no session {tenant}/{name}")
            self.counters["dropped"] += 1
            if session is not None:
                session.retire()  # drains pending updates, then discard

    def _shed_locked(self) -> None:
        """Retire least-recently-used sessions down to the cap."""
        while len(self._live) > self.max_sessions:
            key, session = self._live.popitem(last=False)
            self._parked[key] = session.retire()
            self.counters["evicted"] += 1

    def stats(self) -> dict:
        """Registry + per-session counters (the ``/v1/stats`` payload)."""
        with self._lock:
            sessions = {
                f"{tenant}/{name}": dict(session.stats)
                for (tenant, name), session in self._live.items()
            }
            return {
                "live": len(self._live),
                "parked": len(self._parked),
                "max_sessions": self.max_sessions,
                "queue_depth": self.queue_depth,
                "coalesce": self.coalesce,
                **self.counters,
                "sessions": sessions,
            }
