"""The session registry: (tenant, name) → resident session, LRU-bounded.

At most ``REPRO_SERVE_MAX_SESSIONS`` sessions stay resident; creating
(or restoring) one beyond the cap retires the least recently used —
:meth:`~repro.serve.service.ManagedSession.retire` drains its pending
updates and emits a snapshot, which parks here until the next lookup
rebuilds an equivalent session from it.  Clients never see the churn:
a parked session looks exactly like a live one, it just pays a rebuild
(one full fold) on its next request.

With a :class:`~repro.serve.durability.DurableStore` attached the same
lifecycle becomes durable: creation checkpoints the initial snapshot to
disk, committed folds append to the session's WAL (the session holds
the journal), LRU retire checkpoints to disk as well as parking in
memory, drop deletes the directory, and :meth:`SessionRegistry.recover`
rebuilds every stored session at startup — last valid snapshot plus a
WAL replay through the normal ``update()`` path, quarantining corrupt
tails instead of refusing to start.

Lock ordering: the registry lock is taken first, session locks second
(``retire`` runs under both), journal locks last.  Session code never
calls back into the registry and journal code never calls back into
sessions, so the ordering cannot invert.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from .service import (
    DuplicateSession,
    ManagedSession,
    ServeError,
    UnknownSession,
    WALError,
    resolve_coalesce,
    resolve_max_sessions,
    resolve_queue_depth,
)


class SessionRegistry:
    """Live sessions with LRU eviction into parked snapshots."""

    def __init__(
        self,
        max_sessions: int | None = None,
        queue_depth: int | None = None,
        coalesce: int | None = None,
        store=None,
    ) -> None:
        self.max_sessions = resolve_max_sessions(max_sessions)
        self.queue_depth = resolve_queue_depth(queue_depth)
        self.coalesce = resolve_coalesce(coalesce)
        #: optional DurableStore; None keeps the registry memory-only
        self.store = store
        #: reentrant so drop() can run inside stats()-free paths that
        #: already hold it; taken before any session lock, never after
        self._lock = threading.RLock()
        self._live: OrderedDict[tuple[str, str], ManagedSession] = OrderedDict()
        self._parked: dict[tuple[str, str], dict] = {}
        self.counters = {"created": 0, "evicted": 0, "restored": 0, "dropped": 0}

    def _bind_durable(self, session: ManagedSession, checkpoint: bool) -> None:
        """Attach the session's journal; optionally checkpoint now."""
        if self.store is None:
            return
        journal = self.store.journal(session.tenant, session.name)
        if checkpoint:
            journal.checkpoint(session.snapshot())
        session.bind_journal(journal)

    def create(self, tenant: str, name: str, spec: Mapping) -> ManagedSession:
        """Build, attach and register a new session (409 on duplicates).

        The initial fold runs under the registry lock: creation is a
        once-per-session cost and serializing it keeps the name check
        and the install atomic without a placeholder protocol.  With a
        store the initial snapshot is checkpointed before the session
        goes live, so spec and base rows are recoverable before the
        first WAL record exists.
        """
        key = (tenant, name)
        with self._lock:
            if key in self._live or key in self._parked:
                raise DuplicateSession(
                    f"session {tenant}/{name} already exists"
                )
            session = ManagedSession(
                tenant, name, spec, self.queue_depth, self.coalesce
            )
            self._bind_durable(session, checkpoint=True)
            self._live[key] = session
            self.counters["created"] += 1
            self._shed_locked()
            return session

    def get(self, tenant: str, name: str) -> ManagedSession:
        """The live session, restoring a parked one transparently."""
        key = (tenant, name)
        with self._lock:
            session = self._live.get(key)
            if session is not None:
                self._live.move_to_end(key)
                return session
            snapshot = self._parked.pop(key, None)
            if snapshot is None:
                raise UnknownSession(f"no session {tenant}/{name}")
            session = ManagedSession.from_snapshot(
                snapshot, self.queue_depth, self.coalesce
            )
            # the disk snapshot was written at retire and the WAL
            # truncated with it, so binding without a fresh checkpoint
            # is enough — the store already holds this exact state
            self._bind_durable(session, checkpoint=False)
            self._live[key] = session
            self.counters["restored"] += 1
            self._shed_locked()
            return session

    def drop(self, tenant: str, name: str) -> None:
        """Delete the session (live or parked) for good."""
        key = (tenant, name)
        with self._lock:
            session = self._live.pop(key, None)
            parked = self._parked.pop(key, None)
            if session is None and parked is None:
                raise UnknownSession(f"no session {tenant}/{name}")
            self.counters["dropped"] += 1
            if session is not None:
                session.retire()  # drains pending updates, then discard
            if self.store is not None:
                self.store.drop(tenant, name)

    def _shed_locked(self) -> None:
        """Retire least-recently-used sessions down to the cap.

        With a store the parked snapshot goes to disk too (checkpoint +
        WAL truncation), so a parked session survives a process death
        exactly like a live one.
        """
        while len(self._live) > self.max_sessions:
            key, session = self._live.popitem(last=False)
            snapshot = session.retire()
            self._parked[key] = snapshot
            if self.store is not None:
                try:
                    self.store.checkpoint(key[0], key[1], snapshot)
                except WALError:
                    # the WAL + previous snapshot still hold the durable
                    # state; the store counted the failure
                    pass
            self.counters["evicted"] += 1

    # -- startup recovery --------------------------------------------------

    def recover(self) -> int:
        """Rebuild every session the store holds; returns how many.

        Per session: load the last valid snapshot (quarantine the whole
        directory when it is unreadable), replay the WAL suffix through
        the normal ``update()`` path, stop at the first torn/corrupt/
        unreplayable record (quarantine the tail), then checkpoint the
        recovered state so the next restart starts from a clean epoch.
        Never raises for corrupt state — recovery degrades per session,
        the server keeps serving.
        """
        store = self.store
        if store is None:
            return 0
        recovered = 0
        for tenant, name in store.scan():
            try:
                snapshot, epoch = store.load_snapshot(tenant, name)
            except ServeError as error:
                store.quarantine_session(tenant, name, str(error))
                continue
            try:
                session = ManagedSession.from_snapshot(
                    snapshot, self.queue_depth, self.coalesce
                )
            except ServeError as error:
                store.quarantine_session(tenant, name, str(error))
                continue
            scan = store.read_wal(tenant, name, epoch)
            tail_offset, tail_reason = scan.tail_offset, scan.tail_reason
            replayed = 0
            for index, record in enumerate(scan.records):
                try:
                    for site, deleted, inserted in record["updates"]:
                        session.update(
                            inserted=inserted, deleted=deleted, site=site
                        )
                    replayed += 1
                except Exception as error:  # noqa: BLE001 - poison record
                    tail_offset = scan.offsets[index]
                    tail_reason = f"replay failed: {error}"
                    break
            if tail_reason is not None:
                store.quarantine_wal_tail(
                    tenant, name, epoch, tail_offset, tail_reason
                )
            store.count("replayed_records", replayed)
            with self._lock:
                key = (tenant, name)
                try:
                    # durable state == recovered state from here on; the
                    # WAL restarts at a fresh epoch
                    self._bind_durable(session, checkpoint=True)
                except WALError as error:
                    store.quarantine_session(tenant, name, str(error))
                    continue
                self._live[key] = session
                self._parked.pop(key, None)
                self._shed_locked()
            store.count("recovered_sessions")
            recovered += 1
        return recovered

    def stats(self) -> dict:
        """Registry + per-session counters (the ``/v1/stats`` payload)."""
        with self._lock:
            sessions = {
                f"{tenant}/{name}": dict(session.stats)
                for (tenant, name), session in self._live.items()
            }
            payload = {
                "live": len(self._live),
                "parked": len(self._parked),
                "max_sessions": self.max_sessions,
                "queue_depth": self.queue_depth,
                "coalesce": self.coalesce,
                **self.counters,
                "sessions": sessions,
            }
            if self.store is not None:
                payload["durability"] = self.store.stats()
            return payload
