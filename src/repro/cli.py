"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check``
    Centralized detection over a CSV file: load the data, evaluate the
    CFDs, print the violation summary.  Exit code 1 when violations exist
    (so the command slots into data-quality CI gates).

``detect``
    Distributed detection: partition the CSV across simulated sites and
    run one of the Section IV algorithms, reporting violations, tuples
    shipped and the simulated response time.  ``--updates FRAC`` keeps
    the session alive afterwards: a synthetic batch of ``FRAC·|D|``
    updated rows hits the largest site and is absorbed incrementally —
    only the coded delta of the affected (X, A) combinations ships
    (:mod:`repro.detect.incremental`; ``clust`` runs a resident
    CLUSTDETECT session over the whole Σ).  ``--update-kind`` picks the
    batch composition (``insert`` / ``delete`` / ``mixed``) so the
    tombstone path is exercisable, not just appends.

``sql``
    Print the SQL detection queries of [2] for a CFD (runnable on any SQL
    engine; see ``repro.core.sql``).

``datagen``
    Generate an evaluation workload with known ground truth.  ``repro
    datagen tpch`` writes the 8-table TPC-H instance at ``--sf`` with
    per-table CFD families, seeded violation injection at ``--ratio``,
    and a ``manifest.json`` recording the exact expected violation
    counts per family (:mod:`repro.datagen.tpch`).

``figures``
    Regenerate the paper's Figure 3 experiments (all or a subset).

``bench``
    Time the detection engines — the per-normal-form reference plan vs the
    fused columnar engine (pure-Python and numpy folds) vs the
    database-backed sql engine (sqlite; duckdb when importable), the
    incremental maintenance legs (update batches vs full recompute), plus
    the parallel fragment-detection legs — on the Fig. 3c/3i workloads.  The
    machine-readable perf trajectory (``BENCH_detect.json``) is written
    only when ``REPRO_BENCH=1``; otherwise a one-line warning says the
    recording was skipped.

Environment knobs honoured by every command: ``REPRO_ENGINE`` (detection
backend; unknown values abort with exit code 2; ``check``/``detect``
accept a scoped ``--engine`` override), ``REPRO_SQL_BACKEND`` (database
behind the sql engine: ``sqlite``, ``duckdb`` or ``auto``; unknown or
unavailable backends abort with exit code 2), ``REPRO_WORKERS`` /
``REPRO_PARALLEL`` (parallel scheduler), ``REPRO_POOL_TIMEOUT`` /
``REPRO_POOL_RETRIES`` / ``REPRO_POOL_DEGRADE`` (worker supervision),
``REPRO_FAULTS`` (deterministic fault injection; ``detect --fault-plan``
scopes a plan to one run), ``REPRO_NUMPY`` (array backend opt-out),
``REPRO_INCREMENTAL`` (structural store sharing of delta relations),
``REPRO_SCALE`` (dataset scale) — see the README's table.  Malformed
knob values abort with exit code 2 before any data is loaded.

CFDs are given in the paper notation accepted by
:func:`repro.core.parse_cfd`, e.g. ``"([CC=44, zip] -> [street])"``.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from .core import CFD, ENGINES, detect_violations, parse_cfd
from .core.sql import violation_sql
from .detect import (
    clust_detect,
    ctr_detect,
    naive_detect,
    pat_detect_rt,
    pat_detect_s,
    seq_detect,
)
from .relational import infer_column_types, load_csv


@contextmanager
def _env_override(name: str, value: object | None) -> Iterator[None]:
    """Set ``name`` for the duration of one command, then restore it.

    Scoped to the command: embedders calling :func:`main` must not find
    the environment silently changed afterwards.  ``None`` means "leave
    the environment alone".
    """
    if value is None:
        yield
        return
    previous = os.environ.get(name)
    os.environ[name] = str(value)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def _load_cfds(texts: Sequence[str]) -> list[CFD]:
    return [
        parse_cfd(text, name=f"cfd{i + 1}") for i, text in enumerate(texts)
    ]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "CFD violation detection in distributed data "
            "(Fan, Geerts, Ma, Müller; ICDE 2010)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="centralized detection on a CSV")
    check.add_argument("--data", required=True, help="CSV file with a header row")
    check.add_argument(
        "--cfd", action="append", required=True,
        help="a CFD in paper notation; repeatable",
    )
    check.add_argument(
        "--key", default=None, help="key column (default: first column)"
    )
    check.add_argument(
        "--engine", choices=ENGINES + ("auto",), default=None,
        help="detection engine for this run (overrides REPRO_ENGINE)",
    )

    detect = commands.add_parser(
        "detect",
        help="distributed detection on a CSV (simulated sites, Section IV)",
    )
    detect.add_argument("--data", required=True, help="CSV file with a header row")
    detect.add_argument(
        "--cfd", action="append", required=True,
        help="a CFD in paper notation; repeatable",
    )
    detect.add_argument(
        "--key", default=None, help="key column (default: first column)"
    )
    detect.add_argument(
        "--sites", type=int, default=4, help="number of simulated sites"
    )
    detect.add_argument(
        "--partition-by", default=None, metavar="ATTR",
        help="fragment by attribute value instead of uniformly",
    )
    detect.add_argument(
        "--algorithm",
        choices=["ctr", "pat-s", "pat-rt", "seq", "clust", "naive"],
        default="pat-rt",
        help="Section IV algorithm (default pat-rt: per-pattern "
        "coordinators minimizing response time)",
    )
    detect.add_argument(
        "--engine", choices=ENGINES + ("auto",), default=None,
        help="per-fragment detection engine for this run (overrides "
        "REPRO_ENGINE; 'sql' runs each scan on the configured "
        "REPRO_SQL_BACKEND database)",
    )
    detect.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the per-fragment scans on N workers (overrides "
        "REPRO_WORKERS; REPRO_PARALLEL picks threads or processes)",
    )
    detect.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="inject deterministic faults into the scheduler for this run "
        "(same grammar as REPRO_FAULTS, e.g. 'crash@0,corrupt@3' or "
        "'seed=13,rate=0.05'); recovery statistics print afterwards",
    )
    detect.add_argument(
        "--updates", type=float, default=None, metavar="FRAC",
        help="after the initial run, apply a synthetic update batch of "
        "|ΔD| = FRAC·|D| rows to the largest site and absorb it "
        "incrementally — only the coded delta ships (algorithms ctr, "
        "pat-s, pat-rt, clust)",
    )
    detect.add_argument(
        "--update-kind",
        choices=["insert", "delete", "mixed"],
        default="mixed",
        help="composition of the --updates batch: pure inserts, pure "
        "deletes (exercising the tombstone path), or half deletes / half "
        "mutated re-inserts (default)",
    )

    sql = commands.add_parser("sql", help="print the detection SQL for a CFD")
    sql.add_argument("--cfd", action="append", required=True)
    sql.add_argument("--table", default="D")

    datagen = commands.add_parser(
        "datagen",
        help="generate an evaluation workload with a ground-truth "
        "violation manifest",
    )
    datagen.add_argument(
        "workload", choices=["tpch"],
        help="workload family (tpch: 8 tables, per-table CFD families, "
        "seeded injection)",
    )
    datagen.add_argument(
        "--sf", type=float, default=0.01, metavar="SCALE",
        help="TPC-H scale factor (default 0.01; 1.0 is the full 6M-row "
        "lineitem)",
    )
    datagen.add_argument(
        "--seed", type=int, default=7, help="generation seed (default 7)"
    )
    datagen.add_argument(
        "--ratio", type=float, default=0.02,
        help="violation injection ratio per CFD family (default 0.02)",
    )
    datagen.add_argument(
        "--out", default="tpch-data",
        help="output directory for the CSVs and manifest.json "
        "(default tpch-data)",
    )

    figures = commands.add_parser(
        "figures", help="regenerate the paper's Figure 3 experiments"
    )
    figures.add_argument(
        "--only", action="append", default=None,
        help="figure ids (fig3a..fig3i); repeatable; default all",
    )
    figures.add_argument("--out", default="results")

    bench = commands.add_parser(
        "bench",
        help="benchmark the detection engines (reference vs fused vs "
        "fused-numpy vs sql) and the parallel fragment-detection legs",
    )
    bench.add_argument(
        "--out", default="BENCH_detect.json",
        help="where to write the JSON summary when REPRO_BENCH=1 "
        "(default BENCH_detect.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="steady-state (warm) timing repetitions per engine",
    )
    bench.add_argument(
        "--fraction", type=float, default=1.0,
        help="use only this fraction of the scaled dataset",
    )
    bench.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker count of the parallel fragment-detection legs "
        "(serial vs N threads vs N processes; 1 skips the legs)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the resident multi-tenant detection service (threaded "
        "HTTP front end over Incremental* sessions)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8571,
        help="bind port (default 8571; 0 picks a free one)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="resident sessions before LRU eviction "
        "(default REPRO_SERVE_MAX_SESSIONS or 64)",
    )
    serve.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="per-session pending-update bound before 429 backpressure "
        "(default REPRO_SERVE_QUEUE or 64)",
    )
    serve.add_argument(
        "--coalesce", type=int, default=None, metavar="N",
        help="max update requests folded as one combined batch "
        "(default REPRO_SERVE_COALESCE or 16)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable session store: per-session write-ahead log + "
        "atomic snapshots under DIR, with WAL replay recovery on "
        "startup (default: memory only)",
    )
    serve.add_argument(
        "--fsync", default=None, metavar="POLICY",
        help="WAL fsync policy: always | batch | off "
        "(default REPRO_SERVE_FSYNC or batch; needs --data-dir)",
    )
    serve.add_argument(
        "--checkpoint", type=int, default=None, metavar="N",
        help="WAL records between snapshot checkpoints "
        "(default REPRO_SERVE_CHECKPOINT or 256; needs --data-dir)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-connection socket timeout so stalled clients cannot "
        "pin handler threads (default REPRO_SERVE_TIMEOUT or 30)",
    )
    serve.add_argument(
        "--tenant-sessions", type=int, default=None, metavar="N",
        help="resident sessions per tenant before 429 QuotaExceeded "
        "(default REPRO_SERVE_TENANT_SESSIONS or 0 = unlimited)",
    )
    serve.add_argument(
        "--rate", type=float, default=None, metavar="REQ_PER_SEC",
        help="token-bucket admission rate per tenant "
        "(default REPRO_SERVE_RATE or 0 = unlimited)",
    )
    serve.add_argument(
        "--max-rows", type=int, default=None, metavar="N",
        help="rows (inserted + deleted) per update request "
        "(default REPRO_SERVE_MAX_ROWS or 100000)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="queue-residence deadline: updates still queued past it "
        "are shed with 503 before folding "
        "(default REPRO_SERVE_DEADLINE or 0 = never)",
    )
    serve.add_argument(
        "--breaker", type=int, default=None, metavar="K",
        help="consecutive fold/WAL failures before a session's circuit "
        "breaker opens (default REPRO_SERVE_BREAKER or 5)",
    )
    serve.add_argument(
        "--cooldown", type=float, default=None, metavar="SECONDS",
        help="open-breaker cool-down before the half-open probe "
        "(default REPRO_SERVE_COOLDOWN or 1.0)",
    )
    serve.add_argument(
        "--max-body", type=int, default=None, metavar="BYTES",
        help="request body cap before 413 "
        "(default REPRO_SERVE_MAX_BODY or 8 MiB)",
    )
    serve.add_argument(
        "--scrub", type=float, default=None, metavar="SECONDS",
        help="background integrity-scrub interval; drifted sessions "
        "are quarantined (default REPRO_SERVE_SCRUB or 0 = off)",
    )
    serve.add_argument(
        "--scrub-sample", type=int, default=None, metavar="N",
        help="sampled keys per scrub verify "
        "(default REPRO_SERVE_SCRUB_SAMPLE or 64)",
    )
    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    relation = infer_column_types(
        load_csv(args.data, key=[args.key] if args.key else None)
    )
    cfds = _load_cfds(args.cfd)
    with _env_override("REPRO_ENGINE", args.engine):
        report = detect_violations(relation, cfds)
    print(f"{len(relation)} tuples, {len(cfds)} CFD(s)")
    print(report.summary())
    if report.tuple_keys:
        shown = sorted(report.tuple_keys)[:20]
        print(f"violating tuple keys ({len(report.tuple_keys)}): {shown}")
    return 1 if report else 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from collections import Counter

    from .core.faults import STATS, FaultPlan, FaultSpecError, fault_plan

    plan = None
    if args.fault_plan is not None:
        try:
            plan = FaultPlan.parse(args.fault_plan)
        except FaultSpecError as error:
            print(f"error: invalid --fault-plan: {error}", file=sys.stderr)
            return 2

    def run() -> int:
        if plan is None:
            return _run_detect(args)
        before = Counter(STATS)
        with fault_plan(plan):
            code = _run_detect(args)
        delta = {
            name: STATS[name] - before[name]
            for name in sorted(STATS)
            if STATS[name] - before[name]
        }
        recovered = (
            " ".join(f"{name}={count}" for name, count in delta.items())
            or "no faults fired"
        )
        print(f"fault plan {plan!r}: {recovered}")
        return code

    with _env_override("REPRO_WORKERS", args.workers):
        with _env_override("REPRO_ENGINE", args.engine):
            return run()


def _run_detect(args: argparse.Namespace) -> int:
    from .partition import partition_by_attribute, partition_uniform

    relation = infer_column_types(
        load_csv(args.data, key=[args.key] if args.key else None)
    )
    cfds = _load_cfds(args.cfd)
    if args.partition_by:
        cluster = partition_by_attribute(relation, args.partition_by)
    else:
        cluster = partition_uniform(relation, args.sites)
    print(f"{cluster!r}")

    if args.updates is not None:
        return _run_incremental_detect(args, cluster, cfds)

    if args.algorithm in {"ctr", "pat-s", "pat-rt"}:
        single = {"ctr": ctr_detect, "pat-s": pat_detect_s, "pat-rt": pat_detect_rt}[
            args.algorithm
        ]
        outcome = None
        for cfd in cfds:
            part = single(cluster, cfd)
            outcome = part if outcome is None else _merge(outcome, part)
    elif args.algorithm == "seq":
        outcome = seq_detect(cluster, cfds)
    elif args.algorithm == "clust":
        outcome = clust_detect(cluster, cfds)
    else:
        outcome = naive_detect(cluster, cfds)

    print(outcome.report.summary())
    print(
        f"tuples shipped: {outcome.tuples_shipped} "
        f"({outcome.shipments.codes_shipped} dictionary codes on the wire); "
        f"simulated response time: {outcome.response_time:.3f}s"
    )
    return 1 if outcome.report else 0


def _merge(a, b):
    a.report.merge(b.report)
    a.shipments.merge(b.shipments)
    a.cost.stages.extend(b.cost.stages)
    return a


def _synthetic_update_batch(cluster, cfds, fraction: float, kind: str):
    """The seeded synthetic batch ``detect --updates`` absorbs.

    ``kind`` picks the composition: ``mixed`` (half seeded-random
    deletions, half re-inserted with one mutated attribute), ``insert``
    (all-new mutated rows under fresh keys) or ``delete`` (pure
    deletions — the tombstone path).  Returns ``(site, inserted,
    deleted_keys)``.
    """
    import random

    schema = cluster.schema
    key_pos = schema.key_positions()
    # corrupt an attribute the CFDs actually watch (the first CFD's RHS)
    # so the synthetic batch genuinely moves violations both ways
    mutate_attr = next(
        (a for a in cfds[0].rhs if a in schema),
        schema.attributes[-1],
    )
    mutate_pos = schema.position(mutate_attr)
    if mutate_pos in key_pos:
        non_key = [p for p in range(len(schema)) if p not in key_pos]
        # an all-key schema has nothing else to corrupt; the fresh key
        # values below already make such inserts distinct rows
        mutate_pos = non_key[0] if non_key else mutate_pos
    # largest site, ties to the highest index — the max-stat strategies
    # break ties low, so the updated site is usually not its own
    # coordinator and the coded delta actually crosses the wire
    site = max(
        range(cluster.n_sites),
        key=lambda i: (len(cluster.sites[i].fragment), i),
    )
    fragment = cluster.sites[site].fragment
    batch = max(2, int(cluster.total_tuples() * fraction))
    rng = random.Random(8)
    n_victims = batch if kind in ("insert", "delete") else batch // 2
    victims = rng.sample(fragment.rows, min(len(fragment.rows), n_victims))
    doomed = [tuple(row[p] for p in key_pos) for row in victims]
    inserted = []
    for i, row in enumerate(victims):
        row = list(row)
        for offset, p in enumerate(key_pos):
            row[p] = f"u{i}.{offset}"
        row[mutate_pos] = f"{row[mutate_pos]}~"
        inserted.append(tuple(row))
    if kind == "insert":
        return site, inserted, []
    if kind == "delete":
        return site, [], doomed
    return site, inserted, doomed


def _run_incremental_detect(args: argparse.Namespace, cluster, cfds) -> int:
    """``detect --updates``: absorb a synthetic batch through a delta session.

    For the single-CFD algorithms one
    :class:`~repro.detect.incremental.IncrementalHorizontalDetector` per
    CFD runs the initial one-shot detection; ``clust`` runs one
    :class:`~repro.detect.clust.IncrementalClustDetector` session over
    the whole set Σ.  Then the largest site takes a batch of
    ``|ΔD| = FRAC·|D|`` rows (composition via ``--update-kind``) and the
    session absorbs it by shipping only the coded delta.
    """
    from .detect import IncrementalClustDetector, IncrementalHorizontalDetector

    if args.algorithm not in ("ctr", "pat-s", "pat-rt", "clust"):
        print(
            f"error: --updates supports algorithms ctr, pat-s, pat-rt and "
            f"clust, not {args.algorithm!r}",
            file=sys.stderr,
        )
        return 2
    if not 0 < args.updates <= 1:
        print(
            "error: --updates expects a batch fraction in (0, 1]",
            file=sys.stderr,
        )
        return 2

    site, inserted, doomed = _synthetic_update_batch(
        cluster, cfds, args.updates, args.update_kind
    )
    delta_rows = len(inserted) + len(doomed)

    if args.algorithm == "clust":
        sessions = [(None, IncrementalClustDetector(cluster, cfds))]
    else:
        sessions = [
            (cfd, IncrementalHorizontalDetector(cluster, cfd, args.algorithm))
            for cfd in cfds
        ]

    exit_code = 0
    for cfd, detector in sessions:
        label = cfd.name if cfd is not None else "Σ (clustered)"
        initial = detector.detect()
        print(
            f"{label}: initial "
            f"{initial.report.summary().splitlines()[0] if initial.report else 'no violations'}"
        )
        print(
            f"  initial run: {initial.tuples_shipped} tuples shipped "
            f"({initial.shipments.codes_shipped} codes), "
            f"response {initial.response_time:.3f}s"
        )
        update = detector.update(site, inserted=inserted, deleted=doomed)
        print(
            f"  update |ΔD|={delta_rows} rows ({args.update_kind}) at site "
            f"{cluster.sites[site].name}: +{len(update.delta.added)} / "
            f"-{len(update.delta.removed)} violations, "
            f"{update.shipments.codes_shipped} delta codes shipped, "
            f"response {update.response_time:.3f}s"
        )
        if update.report:
            exit_code = 1
    return exit_code


def _cmd_sql(args: argparse.Namespace) -> int:
    for text in args.cfd:
        cfd = parse_cfd(text)
        print(f"-- {text}")
        for query in violation_sql(cfd, args.table):
            print(query + ";")
    return 0


def _cmd_datagen(args: argparse.Namespace) -> int:
    from .datagen import write_tpch

    manifest = write_tpch(
        args.out, scale_factor=args.sf, seed=args.seed, ratio=args.ratio
    )
    total_rows = sum(
        entry["rows"] for entry in manifest["tables"].values()
    )
    total_violations = sum(
        stats["expected_violations"]
        for entry in manifest["tables"].values()
        for stats in entry["families"].values()
    )
    print(
        f"tpch sf={manifest['scale_factor']} seed={manifest['seed']} "
        f"ratio={manifest['ratio']}: {len(manifest['tables'])} tables, "
        f"{total_rows} rows, {total_violations} expected violations "
        f"-> {args.out}/"
    )
    for table, entry in manifest["tables"].items():
        families = ", ".join(
            f"{name}={stats['expected_violations']}"
            for name, stats in entry["families"].items()
        )
        print(f"  {table}: {entry['rows']} rows ({families})")
    print(f"[manifest written to {args.out}/manifest.json]")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import ALL_FIGURES

    wanted = args.only or list(ALL_FIGURES)
    unknown = [name for name in wanted if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}", file=sys.stderr)
        return 2
    for name in wanted:
        result = ALL_FIGURES[name]()
        result.save(args.out)
        print(result.table())
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DetectionService, serve_http

    try:
        # env knobs were validated before dispatch; flag overrides resolve
        # here and get the same fail-loudly exit 2, not a traceback
        service = DetectionService(
            max_sessions=args.max_sessions,
            queue_depth=args.queue,
            coalesce=args.coalesce,
            data_dir=args.data_dir,
            fsync=args.fsync,
            checkpoint=args.checkpoint,
            tenant_sessions=args.tenant_sessions,
            rate=args.rate,
            max_rows=args.max_rows,
            deadline=args.deadline,
            breaker=args.breaker,
            cooldown=args.cooldown,
            scrub=args.scrub,
            scrub_sample=args.scrub_sample,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        server = serve_http(
            service,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
            max_body=args.max_body,
        )
    except ValueError as error:
        service.close()
        print(f"error: {error}", file=sys.stderr)
        return 2
    host, port = server.server_address
    registry = service.registry
    governor = service.governor
    governed = ""
    if governor.rate or governor.tenant_sessions or governor.deadline:
        governed = (
            f", rate={governor.rate:g}/s, "
            f"tenant_sessions={governor.tenant_sessions}, "
            f"deadline={governor.deadline:g}s"
        )
    if service.scrubber.interval:
        governed += f", scrub={service.scrubber.interval:g}s"
    durable = ""
    if registry.store is not None:
        durable = (
            f", data_dir={registry.store.root}, "
            f"fsync={registry.store.fsync}, "
            f"checkpoint={registry.store.checkpoint_every}, "
            f"recovered={service.recovered}"
        )
    print(
        f"repro serve listening on http://{host}:{port} "
        f"(max_sessions={registry.max_sessions}, "
        f"queue={registry.queue_depth}, coalesce={registry.coalesce}"
        f"{governed}{durable})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        server.server_close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments import bench_detection

    record = os.environ.get("REPRO_BENCH") == "1"
    if not record:
        print(
            f"warning: not recording {args.out} (set REPRO_BENCH=1 to "
            "persist the perf trajectory)",
            file=sys.stderr,
        )
    summary = bench_detection(
        out=args.out if record else None,
        repeats=args.repeats,
        fraction=args.fraction,
        workers=args.workers,
    )
    print(
        f"detection bench: {summary['n_tuples']} tuples "
        f"(REPRO_SCALE={summary['scale']})"
    )
    for name, entry in summary["workloads"].items():
        print(
            f"  {name}: baseline {entry['baseline_seconds']:.3f}s, "
            f"fused {entry['fused_warm_seconds']:.3f}s warm "
            f"({entry['fused_cold_seconds']:.3f}s cold) -> "
            f"{entry['speedup']:.1f}x speedup, "
            f"{entry['fused_rows_per_sec']:,.0f} rows/s, "
            f"matches reference: {entry['matches_reference']}"
        )
        if "fused_numpy_warm_seconds" in entry:
            print(
                f"  {name}: fused-numpy "
                f"{entry['fused_numpy_warm_seconds']:.3f}s warm "
                f"({entry['fused_numpy_cold_seconds']:.3f}s cold) -> "
                f"{entry['fused_numpy_speedup']:.1f}x speedup "
                f"({entry['fused_numpy_vs_fused']:.1f}x over fused), "
                f"{entry['fused_numpy_rows_per_sec']:,.0f} rows/s, "
                f"matches reference: {entry['fused_numpy_matches_reference']}"
            )
    if not summary["numpy"]:
        print("  (fused-numpy tier skipped: numpy unavailable or disabled)")
    sql = summary.get("sql")
    if sql:
        for backend, legs in sql["backends"].items():
            for name, leg in legs.items():
                print(
                    f"  sql[{backend}] {name}: "
                    f"{leg['warm_seconds']:.3f}s warm "
                    f"({leg['cold_seconds']:.3f}s cold incl. load), "
                    f"{leg['rows_per_sec']:,.0f} rows/s, "
                    f"matches reference: {leg['matches_reference']}"
                )
        if not sql["duckdb"]:
            print("  (sql duckdb backend skipped: package not importable)")
    incremental = summary.get("incremental")
    if incremental:
        line = "  incremental maintenance vs full recompute:"
        for fraction, leg in incremental["legs"].items():
            line += (
                f" {float(fraction):.1%} batch "
                f"{leg['incremental_seconds'] * 1000:.1f}ms "
                f"({leg['speedup']:.1f}x);"
            )
        print(line.rstrip(";"))
        kinds = incremental.get("kinds")
        if kinds:
            print(
                "  incremental update kinds: "
                + ", ".join(
                    f"{kind} {leg['speedup']:.1f}x" for kind, leg in kinds.items()
                )
            )
        sessions = incremental.get("sessions")
        if sessions:
            print(
                "  incremental sessions vs one-shot re-detection: "
                + ", ".join(
                    f"{name} {sessions[name]['speedup']:.1f}x"
                    for name in ("clust", "vertical", "hybrid")
                    if name in sessions
                )
            )
        print(
            "  incremental matches full recompute: "
            f"{incremental['matches_full_recompute']}"
        )
    parallel = summary.get("parallel")
    if parallel:
        legs = parallel["legs"]
        serial_warm = legs["1"]["warm_seconds"]
        line = (
            f"  parallel fragment detection ({parallel['algorithm']}, "
            f"{parallel['sites']} sites, {parallel['cpu_count']} CPUs): "
            f"serial {serial_warm * 1000:.1f}ms warm"
        )
        for name, leg in legs.items():
            if name == "1":
                continue
            line += (
                f"; {name.replace('_', ' workers ')} "
                f"{leg['warm_seconds'] * 1000:.1f}ms "
                f"({leg['speedup_warm']:.2f}x)"
            )
        print(line)
        print(
            "  parallel matches serial: "
            f"{parallel['matches_serial']}"
        )
    robustness = summary.get("robustness")
    if robustness:
        crash = robustness["crash_recovery"]
        degraded = robustness["degraded_throughput"]
        print(
            f"  robustness ({robustness['algorithm']}, "
            f"{robustness['sites']} sites): crash recovery "
            f"{crash['recovery_seconds'] * 1000:.1f}ms "
            f"(+{crash['recovery_overhead_seconds'] * 1000:.1f}ms over "
            f"fault-free warm, {crash['respawns']} respawn(s), "
            f"plan {crash['fault_spec']!r})"
        )
        print(
            f"  robustness degraded serial fallback: "
            f"{degraded['seconds'] * 1000:.1f}ms, "
            f"{degraded['rows_per_sec']:,.0f} rows/s "
            f"({degraded['degraded_runs']} degraded run(s))"
        )
        print(
            "  robustness matches serial: "
            f"{robustness['matches_serial']}"
        )
    serve = summary.get("serve")
    if serve:
        print(
            f"  serve ({serve['writers']} concurrent writers, "
            f"{serve['base_rows']} resident rows): update p50 "
            f"{serve['update_p50_seconds'] * 1000:.1f}ms, p99 "
            f"{serve['update_p99_seconds'] * 1000:.1f}ms, "
            f"{serve['requests_per_sec']:,.0f} req/s, coalesced up to "
            f"{serve['coalesced_max']} ({serve['folds']} folds / "
            f"{serve['updates']} updates), session churn "
            f"{serve['churn_sessions_per_sec']:,.1f}/s"
        )
        print(
            "  serve matches serial replay: "
            f"{serve['matches_serial_replay']} "
            f"(verify ok: {serve['verify_ok']})"
        )
    overload = summary.get("overload")
    if overload:
        print(
            f"  overload ({overload['tenants']} tenants at "
            f"{overload['offered_factor']:g}x queue capacity): goodput "
            f"{overload['goodput_per_sec']:,.0f} accepted/s "
            f"({overload['accepted']}/{overload['offered']} offered, "
            f"shed rate {overload['shed_rate']:.0%}), accepted p99 "
            f"{overload['p99_accepted_seconds'] * 1000:.1f}ms "
            f"({overload['p99_ratio']:.1f}x uncontended)"
        )
        print(
            "  overload shed with Retry-After: "
            f"{overload['all_shed_carry_retry_after']}; matches serial "
            f"replay on the accepted set: {overload['matches_serial_replay']}"
        )
    durability = summary.get("durability")
    if durability:
        memory = durability["memory"]
        line = (
            f"  durability ({durability['requests']} updates, "
            f"{durability['base_rows']} resident rows): in-memory p50 "
            f"{memory['update_p50_seconds'] * 1000:.2f}ms"
        )
        for policy, leg in durability["policies"].items():
            line += (
                f"; fsync={policy} "
                f"{leg['update_p50_seconds'] * 1000:.2f}ms "
                f"({leg['overhead_p50_vs_memory']:.1f}x)"
            )
        print(line)
        recovery = durability["recovery"]
        print(
            f"  durability recovery: {recovery['wal_records']:,} WAL "
            f"records replayed in {recovery['recovery_seconds']:.2f}s "
            f"({recovery['records_per_sec']:,.0f} records/s)"
        )
        print(
            "  durability matches serial replay: "
            f"{durability['matches_serial_replay']}"
        )
    if record:
        print(f"[saved to {args.out}]")
    ok = (
        all(
            entry["matches_reference"]
            and entry.get("fused_numpy_matches_reference", True)
            for entry in summary["workloads"].values()
        )
        and (sql is None or sql["matches_reference"])
        and (parallel is None or parallel["matches_serial"])
        and (robustness is None or robustness["matches_serial"])
        and (incremental is None or incremental["matches_full_recompute"])
        and (
            incremental is None
            or "sessions" not in incremental
            or incremental["sessions"]["matches_full_recompute"]
        )
        and (
            serve is None
            or (serve["matches_serial_replay"] and serve["verify_ok"])
        )
        and (durability is None or durability["matches_serial_replay"])
        and (
            summary.get("overload") is None
            or (
                summary["overload"]["matches_serial_replay"]
                and summary["overload"]["all_shed_carry_retry_after"]
            )
        )
    )
    return 0 if ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    engine = os.environ.get("REPRO_ENGINE")
    if engine is not None and engine not in ENGINES + ("auto",):
        # fail loudly instead of silently falling back to auto: a typo in
        # the environment would otherwise benchmark the wrong engine
        print(
            f"error: unknown REPRO_ENGINE {engine!r}; "
            f"use one of {', '.join(ENGINES)} (or 'auto')",
            file=sys.stderr,
        )
        return 2
    try:
        # same fail-loudly treatment for the scheduler knobs: surface the
        # typo before any data is loaded, not as a mid-detection traceback
        from .core import active_plan, resolve_mode, resolve_workers
        from .core.parallel import resolve_order_retries, resolve_order_timeout
        from .core.sql import resolve_sql_backend

        resolve_sql_backend()
        resolve_workers()
        resolve_mode()
        resolve_order_timeout()
        resolve_order_retries()
        active_plan()  # a malformed REPRO_FAULTS raises FaultSpecError

        from .core.sql import resolve_handle_cap
        from .serve.durability import resolve_checkpoint, resolve_fsync
        from .serve.governor import (
            resolve_breaker,
            resolve_cooldown,
            resolve_deadline,
            resolve_max_body,
            resolve_max_rows,
            resolve_rate,
            resolve_scrub,
            resolve_scrub_sample,
            resolve_tenant_sessions,
        )
        from .serve.service import (
            resolve_coalesce,
            resolve_max_sessions,
            resolve_queue_depth,
            resolve_timeout,
        )

        resolve_handle_cap()
        resolve_max_sessions()
        resolve_queue_depth()
        resolve_coalesce()
        resolve_timeout()
        resolve_fsync()
        resolve_checkpoint()
        resolve_tenant_sessions()
        resolve_rate()
        resolve_max_rows()
        resolve_deadline()
        resolve_breaker()
        resolve_cooldown()
        resolve_max_body()
        resolve_scrub()
        resolve_scrub_sample()
    except (ValueError, RuntimeError) as error:
        # RuntimeError: REPRO_SQL_BACKEND=duckdb without the package —
        # same exit code as a typo, the run could not have proceeded
        print(f"error: {error}", file=sys.stderr)
        return 2
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _cmd_check,
        "detect": _cmd_detect,
        "sql": _cmd_sql,
        "datagen": _cmd_datagen,
        "figures": _cmd_figures,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
