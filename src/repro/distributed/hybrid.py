"""Hybrid fragmentation: horizontal regions, each vertically partitioned.

Section VIII lists detection under hybrid fragmentation ([3]'s horizontal-
of-vertical nesting) as future work; this module supplies the deployment
object.  A relation is first split horizontally into *regions* by
predicates; each region is then vertically partitioned (possibly with a
different attribute decomposition per region).  Every (region, vertical
fragment) pair lives at its own site with a globally unique index, so the
shipment accounting of :mod:`repro.distributed.network` applies unchanged.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..relational import Predicate, Relation, Schema
from .cluster import Site, VerticalCluster
from .cost import CostModel


class HybridRegion:
    """One horizontal region: its predicate and its vertical deployment."""

    __slots__ = ("name", "predicate", "vertical")

    def __init__(
        self,
        name: str,
        predicate: Predicate | None,
        vertical: VerticalCluster,
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.vertical = vertical

    def n_tuples(self) -> int:
        return len(self.vertical.fragment(0))

    def __repr__(self) -> str:
        return f"HybridRegion({self.name}, {self.vertical.n_sites} fragments)"


class HybridCluster:
    """A hybrid-fragmented relation: regions × vertical fragments."""

    def __init__(
        self,
        schema: Schema,
        regions: Sequence[HybridRegion],
        cost_model: CostModel | None = None,
    ) -> None:
        if not regions:
            raise ValueError("a hybrid cluster needs at least one region")
        self.schema = schema
        self.regions = tuple(regions)
        self.cost_model = cost_model or CostModel()
        # globally unique site ids: (region index, fragment index) -> int
        self._site_ids: dict[tuple[int, int], int] = {}
        counter = 0
        for r, region in enumerate(self.regions):
            for f in range(region.vertical.n_sites):
                self._site_ids[(r, f)] = counter
                counter += 1
        self.n_sites = counter

    @classmethod
    def from_partitions(
        cls,
        relation: Relation,
        predicates: Mapping[str, Predicate],
        attribute_sets: Mapping[str, Sequence[str]],
        cost_model: CostModel | None = None,
    ) -> "HybridCluster":
        """Horizontal split by ``predicates``, then the same vertical
        decomposition ``attribute_sets`` within every region."""
        from ..partition.horizontal import PartitionError
        from ..partition.vertical import VerticalPartition

        schema = relation.schema
        vertical = VerticalPartition(schema, attribute_sets)
        regions = []
        seen = 0
        for name, predicate in predicates.items():
            rows = [
                row for row in relation.rows if predicate.evaluate(row, schema)
            ]
            seen += len(rows)
            region_relation = Relation(schema, rows, copy=False)
            regions.append(
                HybridRegion(
                    name,
                    predicate,
                    vertical.deploy(region_relation, cost_model=cost_model),
                )
            )
        if seen != len(relation):
            raise PartitionError(
                "the horizontal predicates must cover the relation exactly"
            )
        return cls(schema, regions, cost_model=cost_model)

    # -- lookups -----------------------------------------------------------

    def site_id(self, region_index: int, fragment_index: int) -> int:
        """The global site index of one (region, fragment) cell."""
        return self._site_ids[(region_index, fragment_index)]

    def region_sites(self, region_index: int) -> list[Site]:
        return list(self.regions[region_index].vertical.sites)

    def total_tuples(self) -> int:
        return sum(region.n_tuples() for region in self.regions)

    def reconstruct(self) -> Relation:
        """``D = ⋃_regions ⋈_fragments`` — testing/baselines only."""
        rows = []
        for region in self.regions:
            rows.extend(region.vertical.reconstruct().rows)
        return Relation(self.schema, rows, copy=False)

    def __repr__(self) -> str:
        return (
            f"HybridCluster({len(self.regions)} regions, "
            f"{self.n_sites} sites, {self.total_tuples()} tuples)"
        )
