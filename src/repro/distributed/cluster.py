"""Sites and clusters: the simulated distributed database.

A :class:`Site` holds one fragment and plays the role of one machine of the
paper's testbed (local DBMS included — it runs the relational engine of
:mod:`repro.relational`).  A :class:`Cluster` is a horizontal deployment
``(D_1, ..., D_n)`` at sites ``S_1, ..., S_n``; a :class:`VerticalCluster`
is the vertical counterpart.  Clusters are immutable descriptions; each
detection run creates its own :class:`~repro.distributed.network.ShipmentLog`
and cost accounting, so one cluster can serve many runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational import Predicate, Relation, Schema
from .cost import CostModel


class Site:
    """One machine: an index, a name and the fragment it stores."""

    __slots__ = ("index", "name", "fragment", "predicate")

    def __init__(
        self,
        index: int,
        fragment: Relation,
        name: str | None = None,
        predicate: Predicate | None = None,
    ) -> None:
        self.index = index
        self.name = name or f"S{index + 1}"
        self.fragment = fragment
        #: the fragmentation predicate ``F_i`` when known (horizontal only);
        #: enables the Section IV-A ``F_i ∧ F_φ`` pruning rule.
        self.predicate = predicate

    def __len__(self) -> int:
        return len(self.fragment)

    def __repr__(self) -> str:
        return f"Site({self.name}, {len(self.fragment)} tuples)"


class Cluster:
    """A horizontally partitioned relation distributed over ``n`` sites."""

    def __init__(
        self,
        sites: Sequence[Site],
        cost_model: CostModel | None = None,
    ) -> None:
        if not sites:
            raise ValueError("a cluster needs at least one site")
        schemas = {site.fragment.schema.attributes for site in sites}
        if len(schemas) != 1:
            raise ValueError(
                "horizontal fragments must share one schema; got "
                f"{sorted(schemas)}"
            )
        self.sites = tuple(sites)
        self.cost_model = cost_model or CostModel()

    @classmethod
    def from_fragments(
        cls,
        fragments: Iterable[Relation],
        predicates: Iterable[Predicate] | None = None,
        names: Iterable[str] | None = None,
        cost_model: CostModel | None = None,
    ) -> "Cluster":
        """Build a cluster with one site per fragment, in order."""
        fragments = list(fragments)
        predicate_list = list(predicates) if predicates is not None else [None] * len(fragments)
        name_list = list(names) if names is not None else [None] * len(fragments)
        if len(predicate_list) != len(fragments) or len(name_list) != len(fragments):
            raise ValueError("predicates/names must align with fragments")
        sites = [
            Site(i, fragment, name=name, predicate=predicate)
            for i, (fragment, predicate, name) in enumerate(
                zip(fragments, predicate_list, name_list)
            )
        ]
        return cls(sites, cost_model=cost_model)

    # -- views -----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.sites[0].fragment.schema

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def fragment(self, index: int) -> Relation:
        return self.sites[index].fragment

    def total_tuples(self) -> int:
        return sum(len(site.fragment) for site in self.sites)

    def reconstruct(self) -> Relation:
        """``D = ⋃ D_i`` — the original relation (testing/baselines only)."""
        rows = [row for site in self.sites for row in site.fragment.rows]
        return Relation(self.schema, rows, copy=False)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(site.fragment)) for site in self.sites)
        return f"Cluster({self.n_sites} sites; sizes [{sizes}])"


class VerticalCluster:
    """A vertically partitioned relation: fragment ``i`` holds ``π_{X_i}(D)``.

    Every fragment schema must include the key of the original schema
    (Section II-B); the original relation is the key join of the fragments.
    """

    def __init__(
        self,
        original_schema: Schema,
        sites: Sequence[Site],
        cost_model: CostModel | None = None,
    ) -> None:
        if not sites:
            raise ValueError("a cluster needs at least one site")
        for site in sites:
            schema = site.fragment.schema
            missing = [k for k in original_schema.key if k not in schema]
            if missing:
                raise ValueError(
                    f"vertical fragment {site.name} lacks key attributes {missing}"
                )
        covered = {
            attr for site in sites for attr in site.fragment.schema.attributes
        }
        missing = [a for a in original_schema.attributes if a not in covered]
        if missing:
            raise ValueError(f"vertical partition misses attributes {missing}")
        self.original_schema = original_schema
        self.sites = tuple(sites)
        self.cost_model = cost_model or CostModel()

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def attribute_sets(self) -> list[tuple[str, ...]]:
        """The ``X_i`` of each fragment."""
        return [site.fragment.schema.attributes for site in self.sites]

    def fragment(self, index: int) -> Relation:
        return self.sites[index].fragment

    def sites_with_attributes(self, attributes: Iterable[str]) -> list[Site]:
        """Sites whose fragment contains *all* the given attributes."""
        needed = tuple(attributes)
        return [
            site
            for site in self.sites
            if all(a in site.fragment.schema for a in needed)
        ]

    def reconstruct(self) -> Relation:
        """``D = ⋈ D_i`` on the key, with original attribute order."""
        joined = self.sites[0].fragment
        for site in self.sites[1:]:
            fresh = [
                a
                for a in site.fragment.schema.attributes
                if a not in joined.schema
            ]
            projection = site.fragment.project(
                tuple(self.original_schema.key) + tuple(fresh)
            )
            joined = joined.join(projection, on=self.original_schema.key)
        ordered = joined.project(self.original_schema.attributes)
        return Relation(self.original_schema, ordered.rows, copy=False)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{site.name}:{list(site.fragment.schema.attributes)}"
            for site in self.sites
        )
        return f"VerticalCluster({parts})"
