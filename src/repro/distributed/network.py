"""Shipment accounting: the communication primitive ``m(i, j, t)``.

The paper measures network traffic as the set ``M`` of tuple shipments,
where ``m(i, j, t)`` ships tuple ``t`` to site ``S_i`` from ``S_j``
(Section III-A).  A :class:`ShipmentLog` records every shipment an
algorithm performs, keeps the matrix ``|M(i, j)|`` needed by the
response-time model, and separately counts the small control messages
(the ``lstat`` statistics exchange), which the paper does not charge as
tuple shipment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True)
class ShipmentRecord:
    """One bulk shipment: ``n_tuples`` rows shipped to ``dest`` from ``src``.

    ``n_cells`` counts attribute values (tuples × shipped attributes), the
    finer-grained traffic measure behind the paper's "each tuple *attribute*
    is shipped at most once" guarantee.  ``n_codes`` counts the integers
    actually on the wire when the shipment is dictionary-coded (see
    :mod:`repro.relational.shareddict`): a coded projection row costs a
    fixed couple of ints however wide it is, so ``n_codes < n_cells`` is
    the shared dictionaries' saving.  ``None`` marks an uncoded shipment
    (raw values; one "cell" per attribute).  ``tag`` names the CFD/pattern
    the shipment served.
    """

    dest: int
    src: int
    n_tuples: int
    n_cells: int
    tag: str = ""
    n_codes: int | None = None


class ShipmentLog:
    """All shipments of one detection run."""

    __slots__ = ("events", "_matrix", "control_messages")

    def __init__(self) -> None:
        self.events: list[ShipmentRecord] = []
        self._matrix: dict[tuple[int, int], int] = {}
        self.control_messages: int = 0

    # -- recording -------------------------------------------------------

    def ship(
        self,
        dest: int,
        src: int,
        n_tuples: int,
        n_cells: int,
        tag: str = "",
        n_codes: int | None = None,
    ) -> None:
        """Record shipping ``n_tuples`` rows to site ``dest`` from ``src``.

        ``n_codes`` marks a dictionary-coded shipment: the number of ints
        on the wire instead of ``n_cells`` raw values (``None`` = uncoded).
        """
        if dest == src:
            raise ValueError("a site does not ship tuples to itself")
        if n_tuples < 0 or n_cells < 0:
            raise ValueError("negative shipment size")
        if n_codes is not None and n_codes < 0:
            raise ValueError("negative shipment size")
        if n_tuples == 0:
            return
        self.events.append(
            ShipmentRecord(dest, src, n_tuples, n_cells, tag, n_codes)
        )
        key = (dest, src)
        self._matrix[key] = self._matrix.get(key, 0) + n_tuples

    def record_control(self, n_messages: int) -> None:
        """Record small control messages (statistics exchange)."""
        self.control_messages += n_messages

    def merge(self, other: "ShipmentLog") -> "ShipmentLog":
        """Fold another log into this one (multi-CFD runs); returns self."""
        self.events.extend(other.events)
        for key, count in other._matrix.items():
            self._matrix[key] = self._matrix.get(key, 0) + count
        self.control_messages += other.control_messages
        return self

    # -- queries ---------------------------------------------------------

    @property
    def tuples_shipped(self) -> int:
        """``|M|``: total number of tuple shipments."""
        return sum(self._matrix.values())

    @property
    def cells_shipped(self) -> int:
        """Total attribute values shipped (logical traffic, pre-coding)."""
        return sum(event.n_cells for event in self.events)

    @property
    def codes_shipped(self) -> int:
        """Ints actually on the wire: ``n_codes`` where coded, else ``n_cells``."""
        return sum(
            event.n_cells if event.n_codes is None else event.n_codes
            for event in self.events
        )

    def matrix(self) -> Mapping[tuple[int, int], int]:
        """``(dest, src) -> |M(dest, src)|``."""
        return dict(self._matrix)

    def received_by(self, site: int) -> int:
        """``|M(i)|``: tuples shipped *to* ``site``."""
        return sum(
            count for (dest, _src), count in self._matrix.items() if dest == site
        )

    def outgoing_by_source(self) -> dict[int, int]:
        """``src -> Σ_i |M(i, src)|``: tuples each site sends out."""
        outgoing: dict[int, int] = {}
        for (_dest, src), count in self._matrix.items():
            outgoing[src] = outgoing.get(src, 0) + count
        return outgoing

    def by_tag(self) -> dict[str, int]:
        """Tuples shipped per tag (per CFD / per pattern)."""
        totals: dict[str, int] = {}
        for event in self.events:
            totals[event.tag] = totals.get(event.tag, 0) + event.n_tuples
        return totals

    def __iter__(self) -> Iterator[ShipmentRecord]:
        return iter(self.events)

    def __repr__(self) -> str:
        return (
            f"ShipmentLog({self.tuples_shipped} tuples, "
            f"{self.cells_shipped} cells, {self.control_messages} control msgs)"
        )
