"""The response-time cost model of Section III-B.

The paper estimates the response time of a detection run as::

    cost(D, Σ, M) = (1/ct) · max_j { Σ_i |M(i, j)| / p }  +  max_i { check(D'_i, Σ) }

i.e. the slowest site's parallel send time plus the slowest site's local
checking time, with ``ct`` the data-transfer rate and ``p`` the packet size.
Following the experimental section (which observes that the *statistics*
query also contributes), we additionally account a parallel statistics-scan
stage, so a run is a three-stage pipeline::

    response = max_i scan_i  +  (1/ct)·max_j out_j/p  +  max_i check_i

``check`` follows the paper's approximation ``|D| · log |D|`` (one GROUP BY
per CFD at each coordinator).  For sequences of CFDs (SEQDETECT) the stages
of consecutive CFDs overlap; :func:`pipeline_response` computes the exact
makespan of the resulting permutation flow shop.

All rates are calibration knobs (:class:`CostModel`); defaults are chosen so
that paper-scale workloads land in the paper's tens-of-seconds range.  Only
the *shape* of the curves is meaningful, as discussed in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class CostModel:
    """Calibration constants of the simulated testbed.

    Attributes
    ----------
    transfer_rate:
        ``ct`` — packets per second on each site's uplink.
    packet_size:
        ``p`` — tuples per packet.
    scan_rate:
        Tuples per second a site scans when gathering ``lstat`` statistics.
    check_rate:
        GROUP-BY operations per second of the local detection query
        (an "operation" is one unit of ``|D| log2 |D|``).
    """

    transfer_rate: float = 750.0
    packet_size: int = 32
    scan_rate: float = 150_000.0
    check_rate: float = 400_000.0
    #: bytes per raw attribute value / per dictionary code on the wire;
    #: only :meth:`payload_bytes` consumes these — the paper's transfer
    #: model (and therefore every recorded response time) stays in tuples.
    value_bytes: float = 8.0
    code_bytes: float = 4.0

    def transfer_time(self, outgoing: Mapping[int, int]) -> float:
        """``(1/ct) · max_j out_j / p`` — sites send in parallel."""
        if not outgoing:
            return 0.0
        return max(outgoing.values()) / self.packet_size / self.transfer_rate

    def scan_time(self, n_tuples: int) -> float:
        """Time for one site to scan ``n_tuples`` for statistics."""
        return n_tuples / self.scan_rate

    def check_ops(self, n_tuples: int, n_queries: int = 1) -> float:
        """The paper's ``|D| · log |D|`` estimate for one local check."""
        if n_tuples <= 0:
            return 0.0
        return n_queries * n_tuples * math.log2(n_tuples + 1)

    def check_time(self, ops: float) -> float:
        """Convert GROUP-BY operations to seconds."""
        return ops / self.check_rate

    def payload_bytes(self, log) -> float:
        """Estimated bytes on the wire for one run's shipment log.

        Dictionary-coded shipments (see
        :mod:`repro.relational.shareddict`) charge :attr:`code_bytes` per
        int code; uncoded ones charge :attr:`value_bytes` per raw cell.
        Purely informational — the response-time model above follows the
        paper and counts tuples, so coding changes this estimate without
        touching any simulated timing.
        """
        total = 0.0
        for event in log:
            if event.n_codes is None:
                total += event.n_cells * self.value_bytes
            else:
                total += event.n_codes * self.code_bytes
        return total


@dataclass
class StageTimes:
    """Per-stage times of one detection phase (one CFD or CFD cluster)."""

    scan: float = 0.0
    transfer: float = 0.0
    check: float = 0.0

    @property
    def total(self) -> float:
        return self.scan + self.transfer + self.check


@dataclass
class CostBreakdown:
    """Simulated response time of a full detection run."""

    stages: list[StageTimes] = field(default_factory=list)

    @property
    def scan_time(self) -> float:
        return sum(stage.scan for stage in self.stages)

    @property
    def transfer_time(self) -> float:
        return sum(stage.transfer for stage in self.stages)

    @property
    def check_time(self) -> float:
        return sum(stage.check for stage in self.stages)

    @property
    def response_time(self) -> float:
        """Pipelined makespan over the stages (equals the sum for one stage).

        Scan and check contend for the sites' CPUs while transfers use the
        network, so the makespan is computed with that resource constraint
        (:func:`response_makespan`) rather than a pure flow shop.
        """
        return response_makespan(
            [(stage.scan, stage.transfer, stage.check) for stage in self.stages]
        )

    @property
    def sequential_time(self) -> float:
        """Non-pipelined total (upper bound; SEQDETECT without pipelining)."""
        return sum(stage.total for stage in self.stages)


def pipeline_response(stage_times: Sequence[tuple[float, ...]]) -> float:
    """Makespan of jobs flowing through stages in order (flow-shop DP).

    ``stage_times[c][s]`` is the time job ``c`` spends in stage ``s``.  Jobs
    enter the pipeline in order and each stage processes one job at a time —
    exactly the paper's pipelined SEQDETECT, where a site starts partitioning
    the next CFD as soon as it finished the previous one.
    """
    if not stage_times:
        return 0.0
    n_stages = len(stage_times[0])
    finish = [0.0] * n_stages
    for job in stage_times:
        if len(job) != n_stages:
            raise ValueError("all jobs must have the same number of stages")
        for stage, duration in enumerate(job):
            ready = finish[stage - 1] if stage else 0.0
            finish[stage] = max(finish[stage], ready) + duration
    return finish[-1]


def response_makespan(
    stage_times: Sequence[tuple[float, float, float]],
) -> float:
    """Makespan of (scan, transfer, check) phases with shared resources.

    Models the paper's pipelined SEQDETECT faithfully: the statistics scan
    and the violation check of *every* phase execute on the sites' CPUs
    (one resource, FIFO), while shipments occupy the network.  A site can
    therefore overlap the next CFD's scan with the current CFD's transfer,
    but not with its check — which is why CLUSTDETECT's single scan per
    CFD cluster beats SEQDETECT's per-CFD scans, increasingly so on larger
    fragments (Section VI, Exp-6).
    """
    cpu_free = 0.0
    net_free = 0.0
    finished = 0.0
    for scan, transfer, check in stage_times:
        scan_done = cpu_free + scan
        cpu_free = scan_done
        net_done = max(scan_done, net_free) + transfer
        net_free = net_done
        check_done = max(net_done, cpu_free) + check
        cpu_free = check_done
        finished = check_done
    return finished


def combine_breakdowns(breakdowns: Iterable[CostBreakdown]) -> CostBreakdown:
    """Concatenate the stages of several runs into one pipelined breakdown."""
    combined = CostBreakdown()
    for breakdown in breakdowns:
        combined.stages.extend(breakdown.stages)
    return combined
