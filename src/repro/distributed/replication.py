"""Replicated horizontal fragments (Section VIII future work).

"In the distributed setting it is common to find replicated data [3]. It
is more interesting yet more challenging to develop detection algorithms
that capitalize on data replication to increase parallelism and reduce
response time."  A :class:`ReplicatedCluster` places each horizontal
fragment at one *or more* sites; the replication-aware detector
(:func:`repro.detect.replicated_pat_detect`) exploits the placement twice:

* statistics scans are balanced across replicas (parallelism), and
* a pattern's coordinator is chosen by the tuples *available* at a site —
  fragments replicated at the coordinator contribute without shipment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational import Relation, Schema
from .cost import CostModel


class ReplicatedCluster:
    """Horizontal fragments with a fragment → sites placement map."""

    def __init__(
        self,
        fragments: Sequence[Relation],
        placement: Sequence[Iterable[int]],
        n_sites: int,
        cost_model: CostModel | None = None,
    ) -> None:
        if not fragments:
            raise ValueError("need at least one fragment")
        if len(placement) != len(fragments):
            raise ValueError("placement must assign sites to every fragment")
        schemas = {fragment.schema.attributes for fragment in fragments}
        if len(schemas) != 1:
            raise ValueError("fragments must share one schema")
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.fragments = tuple(fragments)
        self.placement = tuple(frozenset(sites) for sites in placement)
        for f, sites in enumerate(self.placement):
            if not sites:
                raise ValueError(f"fragment {f} has no replica")
            bad = [s for s in sites if not 0 <= s < n_sites]
            if bad:
                raise ValueError(f"fragment {f} placed at unknown sites {bad}")
        self.n_sites = n_sites
        self.cost_model = cost_model or CostModel()

    @classmethod
    def replicate(
        cls,
        cluster,
        degree: int,
        cost_model: CostModel | None = None,
    ) -> "ReplicatedCluster":
        """Replicate each fragment of a plain cluster to ``degree`` sites.

        Replicas go to the next sites round-robin (fragment ``i`` lives at
        sites ``i, i+1, ..., i+degree-1`` mod ``n``), the classic chained
        declustering layout.
        """
        n = cluster.n_sites
        if not 1 <= degree <= n:
            raise ValueError(f"degree must be in [1, {n}]")
        fragments = [site.fragment for site in cluster.sites]
        placement = [
            {(i + k) % n for k in range(degree)} for i in range(n)
        ]
        return cls(
            fragments,
            placement,
            n,
            cost_model=cost_model or cluster.cost_model,
        )

    # -- views ---------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.fragments[0].schema

    def replicas_of(self, fragment: int) -> frozenset[int]:
        return self.placement[fragment]

    def fragments_at(self, site: int) -> list[int]:
        return [
            f for f, sites in enumerate(self.placement) if site in sites
        ]

    def total_tuples(self) -> int:
        """Logical size (each fragment counted once)."""
        return sum(len(fragment) for fragment in self.fragments)

    def stored_tuples(self) -> int:
        """Physical size including replicas."""
        return sum(
            len(fragment) * len(sites)
            for fragment, sites in zip(self.fragments, self.placement)
        )

    def reconstruct(self) -> Relation:
        rows = [row for fragment in self.fragments for row in fragment.rows]
        return Relation(self.schema, rows, copy=False)

    def balanced_scan_assignment(self) -> list[int]:
        """One replica per fragment, balancing per-site scan load.

        Greedy: largest fragments first, each to its least-loaded replica.
        """
        order = sorted(
            range(len(self.fragments)),
            key=lambda f: -len(self.fragments[f]),
        )
        load = [0] * self.n_sites
        chosen = [0] * len(self.fragments)
        for f in order:
            site = min(self.placement[f], key=lambda s: (load[s], s))
            chosen[f] = site
            load[site] += len(self.fragments[f])
        # local improvement: move fragments off the busiest sites while it
        # lowers the maximum load (fixes ties the greedy resolved badly)
        improved = True
        while improved:
            improved = False
            for f in order:
                size = len(self.fragments[f])
                current = chosen[f]
                for site in self.placement[f]:
                    if site == current:
                        continue
                    if max(load[site] + size, load[current] - size) < max(
                        load[current], load[site]
                    ):
                        load[current] -= size
                        load[site] += size
                        chosen[f] = site
                        improved = True
                        break
        return chosen

    def __repr__(self) -> str:
        return (
            f"ReplicatedCluster({len(self.fragments)} fragments, "
            f"{self.n_sites} sites, "
            f"{self.stored_tuples()}/{self.total_tuples()} stored/logical)"
        )
