"""Distributed-database simulator: sites, shipments, response-time model.

Stands in for the paper's eight-machine MySQL testbed; see DESIGN.md for
why the substitution preserves the reported behaviour.
"""

from .cluster import Cluster, Site, VerticalCluster
from .hybrid import HybridCluster, HybridRegion
from .replication import ReplicatedCluster
from .cost import (
    CostBreakdown,
    CostModel,
    StageTimes,
    combine_breakdowns,
    pipeline_response,
    response_makespan,
)
from .network import ShipmentLog, ShipmentRecord
from .outcome import DetectionOutcome

__all__ = [
    "Cluster",
    "Site",
    "VerticalCluster",
    "HybridCluster",
    "HybridRegion",
    "ReplicatedCluster",
    "CostBreakdown",
    "CostModel",
    "StageTimes",
    "combine_breakdowns",
    "pipeline_response",
    "response_makespan",
    "ShipmentLog",
    "ShipmentRecord",
    "DetectionOutcome",
]
