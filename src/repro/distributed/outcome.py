"""Detection outcomes: violations + traffic + simulated response time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core import ViolationReport
from .cost import CostBreakdown
from .network import ShipmentLog


@dataclass
class DetectionOutcome:
    """Everything a distributed detection run produces.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that ran (``"CTRDETECT"`` etc.).
    report:
        The violations found (``Vioπ`` granularity; see
        :class:`~repro.core.ViolationReport`).
    shipments:
        The shipment log ``M`` (tuple traffic + control messages).
    cost:
        Simulated response time under the Section III-B model.
    details:
        Algorithm-specific extras (chosen coordinators, per-pattern stats,
        mined tableau sizes, ...), for inspection and tests.
    """

    algorithm: str
    report: ViolationReport
    shipments: ShipmentLog
    cost: CostBreakdown
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def tuples_shipped(self) -> int:
        return self.shipments.tuples_shipped

    @property
    def response_time(self) -> float:
        return self.cost.response_time

    def __repr__(self) -> str:
        return (
            f"DetectionOutcome({self.algorithm}: {len(self.report)} Vioπ, "
            f"{self.tuples_shipped} tuples shipped, "
            f"{self.response_time:.3f}s simulated)"
        )
