"""Closed frequent itemset mining (levelwise Apriori).

The Section IV-B optimization instantiates the wildcards of an FD with
"frequent pattern tuples found in the database", mined as *closed frequent
itemsets* over the FD's LHS attributes.  Items are ``(attribute, value)``
pairs; a transaction is one tuple's projection onto the LHS.  An itemset is
frequent when its support reaches the threshold and closed when no proper
superset has the same support.

Apriori is adequate here: the LHS of a CFD has 3–5 attributes, so the
lattice has at most that many levels and stays small even on large data.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

Item = tuple[str, object]
Itemset = frozenset


def frequent_itemsets(
    transactions: Sequence[Sequence[object]],
    attributes: Sequence[str],
    min_support: int,
) -> dict[Itemset, int]:
    """All itemsets with support ``>= min_support`` and their supports.

    ``transactions[i][j]`` is the value of ``attributes[j]`` in tuple ``i``.
    The empty itemset is excluded.  ``min_support`` must be positive.
    """
    if min_support < 1:
        raise ValueError("min_support must be a positive count")
    attributes = tuple(attributes)

    # Level 1: count single items.
    counts: dict[Item, int] = {}
    for transaction in transactions:
        for attr, value in zip(attributes, transaction):
            item = (attr, value)
            counts[item] = counts.get(item, 0) + 1
    current = {
        frozenset([item]): support
        for item, support in counts.items()
        if support >= min_support
    }
    frequent: dict[Itemset, int] = dict(current)

    level = 1
    while current and level < len(attributes):
        level += 1
        candidates = _candidates(current, level)
        if not candidates:
            break
        tallies = dict.fromkeys(candidates, 0)
        for transaction in transactions:
            items = frozenset(zip(attributes, transaction))
            for candidate in candidates:
                if candidate <= items:
                    tallies[candidate] += 1
        current = {
            itemset: support
            for itemset, support in tallies.items()
            if support >= min_support
        }
        frequent.update(current)
    return frequent


def _candidates(previous: dict[Itemset, int], level: int) -> set[Itemset]:
    """Apriori join + prune: level-``k`` candidates from level ``k-1`` sets."""
    sets = list(previous)
    candidates: set[Itemset] = set()
    for a, b in combinations(sets, 2):
        union = a | b
        if len(union) != level:
            continue
        if len({attr for attr, _value in union}) != level:
            continue  # one value per attribute
        if all(
            frozenset(subset) in previous
            for subset in combinations(union, level - 1)
        ):
            candidates.add(union)
    return candidates


def closed_frequent_itemsets(
    transactions: Sequence[Sequence[object]],
    attributes: Sequence[str],
    min_support: int,
) -> dict[Itemset, int]:
    """The closed subsets of :func:`frequent_itemsets`.

    An itemset is closed iff no frequent superset (by one item) has equal
    support; since Apriori enumerates *all* frequent itemsets, the check is
    a dictionary lookup.
    """
    frequent = frequent_itemsets(transactions, attributes, min_support)
    single_items = {item for itemset in frequent for item in itemset}
    closed: dict[Itemset, int] = {}
    for itemset, support in frequent.items():
        covered_attrs = {attr for attr, _value in itemset}
        is_closed = True
        for item in single_items:
            if item in itemset or item[0] in covered_attrs:
                continue
            superset = frequent.get(itemset | {item})
            if superset == support:
                is_closed = False
                break
        if is_closed:
            closed[itemset] = support
    return closed


def itemsets_to_rows(
    itemsets: Iterable[Itemset], attributes: Sequence[str], wildcard: object
) -> list[tuple]:
    """Render itemsets as pattern rows over ``attributes``."""
    rows = []
    for itemset in itemsets:
        values = dict(itemset)
        rows.append(
            tuple(values.get(attr, wildcard) for attr in attributes)
        )
    return rows
