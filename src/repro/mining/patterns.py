"""Wildcard instantiation of FDs with mined pattern tuples (Section IV-B).

When a CFD's pattern tuples carry many wildcards in their LHS — a
traditional FD being the extreme — the σ partition function degenerates to
a single bucket and PATDETECTS/PATDETECTRT collapse into CTRDETECT.  The
paper's remedy: mine each fragment for pattern tuples occurring at least
``θ · |D_i|`` times and replace the FD ``φ = (X → A)`` with the equivalent
CFD ``φ' = (X → A, T_θ)`` whose tableau holds the frequent patterns plus a
final all-wildcard row catching the infrequent remainder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import CFD, PatternTuple, WILDCARD, is_wildcard, sort_patterns_by_generality
from ..distributed import Cluster
from .itemsets import closed_frequent_itemsets, itemsets_to_rows


@dataclass
class MiningResult:
    """An instantiated CFD plus mining statistics.

    ``preprocess_time`` estimates the parallel mining overhead under the
    cluster's cost model (one levelwise pass per lattice level at each
    site); experiments add it to the response time they report.
    """

    cfd: CFD
    n_mined_patterns: int
    per_site_patterns: list[int]
    preprocess_time: float


def instantiate_with_frequent_patterns(
    cluster: Cluster,
    cfd: CFD,
    theta: float,
    max_patterns: int | None = None,
) -> MiningResult:
    """Refine the all-wildcard rows of ``cfd`` with mined frequent patterns.

    ``theta ∈ (0, 1]`` is the frequency threshold.  Only rows whose LHS is
    entirely wildcards are refined (the FD case the paper evaluates); the
    original rows are kept, so the result is equivalent to ``cfd``:
    the mined rows are specializations whose tuples the original rows would
    have matched anyway, and Lemma 6 makes the σ assignment immaterial to
    the detected violations.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")

    lhs = cfd.lhs
    mined_rows: dict[tuple, None] = {}
    per_site = []
    levels = len(lhs)
    total_scan = 0.0
    for site in cluster.sites:
        fragment = site.fragment
        if not len(fragment):
            per_site.append(0)
            continue
        min_support = max(1, math.ceil(theta * len(fragment)))
        transactions = fragment.project(lhs).rows
        closed = closed_frequent_itemsets(transactions, lhs, min_support)
        rows = itemsets_to_rows(closed, lhs, WILDCARD)
        per_site.append(len(rows))
        for row in rows:
            mined_rows.setdefault(row)
        total_scan = max(
            total_scan, levels * cluster.cost_model.scan_time(len(fragment))
        )

    ordered = sort_patterns_by_generality(mined_rows)
    if max_patterns is not None:
        ordered = ordered[:max_patterns]

    existing = {tp.lhs for tp in cfd.tableau}
    rhs_wild = (WILDCARD,) * len(cfd.rhs)
    new_rows = [
        PatternTuple(row, rhs_wild) for row in ordered if row not in existing
    ]
    # Keep the original rows last: the all-wildcard row catches the
    # infrequent tuples, exactly as in the paper.
    refined = [
        tp for tp in cfd.tableau if not all(is_wildcard(v) for v in tp.lhs)
    ]
    wildcard_rows = [
        tp for tp in cfd.tableau if all(is_wildcard(v) for v in tp.lhs)
    ]
    tableau = refined + new_rows + wildcard_rows
    instantiated = cfd.with_tableau(tableau, name=cfd.name)
    return MiningResult(
        cfd=instantiated,
        n_mined_patterns=len(new_rows),
        per_site_patterns=per_site,
        preprocess_time=total_scan,
    )
