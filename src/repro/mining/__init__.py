"""Frequent-pattern mining for the Section IV-B wildcard optimization."""

from .itemsets import closed_frequent_itemsets, frequent_itemsets, itemsets_to_rows
from .patterns import MiningResult, instantiate_with_frequent_patterns

__all__ = [
    "closed_frequent_itemsets",
    "frequent_itemsets",
    "itemsets_to_rows",
    "MiningResult",
    "instantiate_with_frequent_patterns",
]
