"""repro — reproduction of *Detecting Inconsistencies in Distributed Data*
(Fan, Geerts, Ma, Müller; ICDE 2010).

Public API overview
-------------------

Formalism and centralized detection
    :class:`~repro.core.CFD`, :func:`~repro.core.parse_cfd`,
    :func:`~repro.core.detect_violations`, :func:`~repro.core.satisfies`.

Relational substrate
    :class:`~repro.relational.Schema`, :class:`~repro.relational.Relation`,
    predicate combinators (:class:`~repro.relational.Eq`, ...).

Partitioning
    :func:`~repro.partition.horizontal_partition`,
    :func:`~repro.partition.vertical_partition` and friends.

Distributed detection
    :class:`~repro.distributed.Cluster` plus the algorithms of Section IV:
    :func:`~repro.detect.ctr_detect`, :func:`~repro.detect.pat_detect_s`,
    :func:`~repro.detect.pat_detect_rt`, :func:`~repro.detect.seq_detect`,
    :func:`~repro.detect.clust_detect`.

Vertical-partition theory
    :func:`~repro.partition.is_dependency_preserving`,
    :func:`~repro.partition.minimum_refinement`.
"""

from .core import (
    CFD,
    CFDError,
    PatternTuple,
    Violation,
    ViolationReport,
    WILDCARD,
    detect_violations,
    format_cfd,
    parse_cfd,
    satisfies,
)
from .relational import Eq, Relation, Schema, TruePred

__version__ = "1.0.0"

__all__ = [
    "CFD",
    "CFDError",
    "PatternTuple",
    "Violation",
    "ViolationReport",
    "WILDCARD",
    "detect_violations",
    "format_cfd",
    "parse_cfd",
    "satisfies",
    "Eq",
    "Relation",
    "Schema",
    "TruePred",
    "__version__",
]
