"""The nine experiments of the paper's Figure 3, one function per subfigure.

Each function regenerates the corresponding series — same workloads, same
parameter sweeps, same algorithms — at ``REPRO_SCALE`` of the paper's data
sizes (see DESIGN.md §3 for the per-experiment index and expected shapes).
Response times are the simulated Section III-B cost model, in seconds.
"""

from __future__ import annotations

from functools import lru_cache

from ..core import CFD
from ..datagen import (
    ORGANISMS_XREFH,
    cust_overlapping_cfds,
    cust_street_cfd,
    generate_cust,
    generate_xref,
    xref_mining_fd,
    xref_overlapping_cfds,
    xref_priority_cfd,
)
from ..detect import (
    clust_detect,
    ctr_detect,
    pat_detect_rt,
    pat_detect_s,
    seq_detect,
)
from ..distributed import Cluster
from ..mining import instantiate_with_frequent_patterns
from ..partition import partition_by_attribute, partition_uniform
from ..relational import Relation
from .harness import ExperimentResult, scaled, sweep

#: paper dataset sizes (tuples)
CUST8_SIZE = 800_000
CUST16_SIZE = 1_600_000
XREF8_SIZE = 800_000
XREFH_SIZE = 2_700_000

SITE_COUNTS = (2, 3, 4, 5, 6, 7, 8)


@lru_cache(maxsize=8)
def _cust_cached(n_tuples: int, seed: int) -> Relation:
    return generate_cust(n_tuples, seed=seed)


@lru_cache(maxsize=8)
def _xref_cached(n_tuples: int, organisms: tuple, seed: int) -> Relation:
    return generate_xref(n_tuples, organisms=organisms, seed=seed)


def _cust8() -> Relation:
    return _cust_cached(scaled(CUST8_SIZE), 7)


def _cust16() -> Relation:
    return _cust_cached(scaled(CUST16_SIZE), 8)


def _xref8() -> Relation:
    from ..datagen import ORGANISMS_XREF8

    return _xref_cached(scaled(XREF8_SIZE), ORGANISMS_XREF8, 11)


def _xrefh() -> Relation:
    return _xref_cached(scaled(XREFH_SIZE), ORGANISMS_XREFH, 13)


def _subset(relation: Relation, fraction: float) -> Relation:
    n = int(len(relation) * fraction)
    return Relation(relation.schema, relation.rows[:n], copy=False)


def _single_cfd_point(
    cluster: Cluster, cfd: CFD, algorithms: dict[str, object]
) -> dict[str, float]:
    return {
        name: fn(cluster, cfd).response_time
        for name, fn in algorithms.items()
    }


# -- Exp-1: scalability with the number of fragments --------------------------


def fig3a() -> ExperimentResult:
    """Fig 3(a): response time vs |S| on cust8, single CFD (255 patterns)."""
    result = ExperimentResult(
        "fig3a",
        "Scalability with |S| (cust8)",
        "sites",
        "response time (s)",
    )
    data = _cust8()
    cfd = cust_street_cfd(255)
    algorithms = {
        "CTRDETECT": ctr_detect,
        "PATDETECTS": pat_detect_s,
        "PATDETECTRT": pat_detect_rt,
    }
    return sweep(
        result,
        SITE_COUNTS,
        lambda n: _single_cfd_point(
            partition_uniform(data, n), cfd, algorithms
        ),
    )


def fig3b() -> ExperimentResult:
    """Fig 3(b): response time vs |S| on xref8, single CFD (11 patterns)."""
    result = ExperimentResult(
        "fig3b",
        "Scalability with |S| (xref8)",
        "sites",
        "response time (s)",
    )
    data = _xref8()
    cfd = xref_priority_cfd()
    algorithms = {
        "CTRDETECT": ctr_detect,
        "PATDETECTS": pat_detect_s,
        "PATDETECTRT": pat_detect_rt,
    }
    return sweep(
        result,
        SITE_COUNTS,
        lambda n: _single_cfd_point(
            partition_uniform(data, n), cfd, algorithms
        ),
    )


# -- Exp-2: scalability with the data size -------------------------------------


def fig3c() -> ExperimentResult:
    """Fig 3(c): response time vs |D| (10%..100% of cust16, 8 sites)."""
    result = ExperimentResult(
        "fig3c",
        "Scalability with |D| (cust16, 8 sites)",
        "tuples (x 160K scaled)",
        "response time (s)",
    )
    data = _cust16()
    cfd = cust_street_cfd(255)

    def point(step: int) -> dict[str, float]:
        cluster = partition_uniform(_subset(data, step / 10), 8)
        return {
            "CTRDETECT": ctr_detect(cluster, cfd).response_time,
            "PATDETECTRT": pat_detect_rt(cluster, cfd).response_time,
        }

    return sweep(result, list(range(1, 11)), point)


# -- Exp-3: complexity of the CFD ----------------------------------------------


def fig3d() -> ExperimentResult:
    """Fig 3(d): response time vs |Tp| (50..255 patterns, cust8, 8 sites)."""
    result = ExperimentResult(
        "fig3d",
        "Scalability with |Tp| (cust8, 8 sites)",
        "patterns",
        "response time (s)",
    )
    cluster = partition_uniform(_cust8(), 8)

    def point(n_patterns: int) -> dict[str, float]:
        cfd = cust_street_cfd(n_patterns)
        return {
            "CTRDETECT": ctr_detect(cluster, cfd).response_time,
            "PATDETECTRT": pat_detect_rt(cluster, cfd).response_time,
        }

    return sweep(result, [50, 100, 150, 200, 255], point)


# -- Exp-4: impact of mining patterns -------------------------------------------


def fig3e() -> ExperimentResult:
    """Fig 3(e): shipment vs θ on xrefH (7 fragments), FD + mining."""
    result = ExperimentResult(
        "fig3e",
        "Impact of mining on shipment (xrefH, 7 fragments)",
        "theta",
        "tuples shipped",
        notes="PATDETECTS on an FD, with and without pattern mining",
    )
    cluster = partition_by_attribute(_xrefh(), "info_type")
    fd = xref_mining_fd()
    baseline = pat_detect_s(cluster, fd).tuples_shipped

    def point(theta: float) -> dict[str, float]:
        mined = instantiate_with_frequent_patterns(cluster, fd, theta=theta)
        shipped = pat_detect_s(cluster, mined.cfd).tuples_shipped
        return {
            "PATDETECTS": float(baseline),
            "PATDETECTS+mining": float(shipped),
        }

    thetas = [0.01, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    return sweep(result, thetas, point)


# -- Exp-5: multiple CFDs, varying |S| ------------------------------------------


def _multi_point(
    cluster: Cluster, cfds: list[CFD], metric: str
) -> dict[str, float]:
    seq = seq_detect(cluster, cfds, single="rt")
    clust = clust_detect(cluster, cfds, strategy="rt")
    if metric == "shipment":
        return {
            "SEQDETECT": float(seq.tuples_shipped),
            "CLUSTDETECT": float(clust.tuples_shipped),
        }
    return {
        "SEQDETECT": seq.response_time,
        "CLUSTDETECT": clust.response_time,
    }


def fig3f() -> ExperimentResult:
    """Fig 3(f): tuples shipped vs |S|, two overlapping CFDs (xref8)."""
    result = ExperimentResult(
        "fig3f",
        "Shipment with |S|, multiple CFDs (xref8)",
        "sites",
        "tuples shipped",
    )
    data = _xref8()
    cfds = xref_overlapping_cfds()
    return sweep(
        result,
        SITE_COUNTS,
        lambda n: _multi_point(partition_uniform(data, n), cfds, "shipment"),
    )


def fig3g() -> ExperimentResult:
    """Fig 3(g): response time vs |S|, two overlapping CFDs (xref8)."""
    result = ExperimentResult(
        "fig3g",
        "Scalability with |S|, multiple CFDs (xref8)",
        "sites",
        "response time (s)",
    )
    data = _xref8()
    cfds = xref_overlapping_cfds()
    return sweep(
        result,
        SITE_COUNTS,
        lambda n: _multi_point(partition_uniform(data, n), cfds, "time"),
    )


def fig3h() -> ExperimentResult:
    """Fig 3(h): response time vs |S|, two overlapping CFDs (cust8)."""
    result = ExperimentResult(
        "fig3h",
        "Scalability with |S|, multiple CFDs (cust8)",
        "sites",
        "response time (s)",
    )
    data = _cust8()
    cfds = cust_overlapping_cfds()
    return sweep(
        result,
        SITE_COUNTS,
        lambda n: _multi_point(partition_uniform(data, n), cfds, "time"),
    )


# -- Exp-6: multiple CFDs, varying |D| -------------------------------------------


def fig3i() -> ExperimentResult:
    """Fig 3(i): response time vs |D| (10%..100% of cust16), multiple CFDs."""
    result = ExperimentResult(
        "fig3i",
        "Scalability with |D|, multiple CFDs (cust16, 8 sites)",
        "tuples (x 160K scaled)",
        "response time (s)",
    )
    data = _cust16()
    cfds = cust_overlapping_cfds()

    def point(step: int) -> dict[str, float]:
        cluster = partition_uniform(_subset(data, step / 10), 8)
        return _multi_point(cluster, cfds, "time")

    return sweep(result, list(range(1, 11)), point)


ALL_FIGURES = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
    "fig3g": fig3g,
    "fig3h": fig3h,
    "fig3i": fig3i,
}


def run_all(save_dir: str | None = "results") -> dict[str, ExperimentResult]:
    """Run every Figure 3 experiment; optionally persist the tables."""
    results = {}
    for name, fn in ALL_FIGURES.items():
        result = fn()
        if save_dir:
            result.save(save_dir)
        results[name] = result
    return results
