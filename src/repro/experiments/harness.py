"""Experiment harness: parameter sweeps producing the paper's data series.

Every subfigure of the paper's Figure 3 is a set of (x, y) series —
response time or tuples shipped against the number of sites, the data
size, the tableau size or the mining threshold.  An
:class:`ExperimentResult` captures exactly that, renders the aligned text
table the benchmarks print, and persists it under ``results/``.

Dataset sizes follow the paper scaled by ``REPRO_SCALE`` (default 0.1:
cust8 = 80K, cust16 = 160K, xref8 = 80K, xrefH = 270K tuples); set the
environment variable to 1.0 to regenerate at full paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence


def scale() -> float:
    """The global dataset scale factor (``REPRO_SCALE``, default 0.1)."""
    value = float(os.environ.get("REPRO_SCALE", "0.1"))
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def scaled(n_paper_tuples: int) -> int:
    """A paper dataset size scaled to the current ``REPRO_SCALE``."""
    return max(100, int(n_paper_tuples * scale()))


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    ys: list[float] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """A reproduced figure: x values and one or more labelled series."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    xs: list[object] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def add_point(self, x: object, values: dict[str, float]) -> None:
        """Record one sweep point: ``values`` maps series label -> y."""
        if not self.series:
            self.series = [Series(label) for label in values]
        self.xs.append(x)
        by_label = {s.label: s for s in self.series}
        for label, y in values.items():
            by_label[label].ys.append(y)

    def table(self) -> str:
        """An aligned text table of the series (what the paper plots)."""
        header = [self.x_label] + [s.label for s in self.series]
        rows = [header]
        for i, x in enumerate(self.xs):
            row = [str(x)]
            for s in self.series:
                y = s.ys[i]
                row.append(f"{y:.3f}" if isinstance(y, float) else str(y))
            rows.append(row)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"(y = {self.y_label}; REPRO_SCALE={scale()})",
        ]
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def save(self, directory: str | Path = "results") -> Path:
        """Write the table to ``<directory>/<experiment_id>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.txt"
        path.write_text(self.table() + "\n")
        return path

    def series_by_label(self, label: str) -> list[float]:
        for s in self.series:
            if s.label == label:
                return s.ys
        raise KeyError(label)


def sweep(
    result: ExperimentResult,
    xs: Sequence[object],
    point: Callable[[object], dict[str, float]],
) -> ExperimentResult:
    """Run ``point`` for every x and collect the series."""
    for x in xs:
        result.add_point(x, point(x))
    return result
