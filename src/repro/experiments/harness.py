"""Experiment harness: parameter sweeps producing the paper's data series.

Every subfigure of the paper's Figure 3 is a set of (x, y) series —
response time or tuples shipped against the number of sites, the data
size, the tableau size or the mining threshold.  An
:class:`ExperimentResult` captures exactly that, renders the aligned text
table the benchmarks print, and persists it under ``results/``.

Dataset sizes follow the paper scaled by ``REPRO_SCALE`` (default 0.1:
cust8 = 80K, cust16 = 160K, xref8 = 80K, xrefH = 270K tuples); set the
environment variable to 1.0 to regenerate at full paper scale.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence


def scale() -> float:
    """The global dataset scale factor (``REPRO_SCALE``, default 0.1)."""
    value = float(os.environ.get("REPRO_SCALE", "0.1"))
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def scaled(n_paper_tuples: int) -> int:
    """A paper dataset size scaled to the current ``REPRO_SCALE``."""
    return max(100, int(n_paper_tuples * scale()))


#: ceiling on one honored ``Retry-After`` pause: a confused (or
#: adversarial) server must not be able to stall a client for minutes
#: by advertising a huge backoff
MAX_RETRY_AFTER = 1.0


def request_json(
    request,
    timeout: float = 60.0,
    on_backpressure: Callable[[], None] | None = None,
    max_retry_after: float = MAX_RETRY_AFTER,
    opener=None,
) -> dict:
    """One JSON request against ``repro serve``, with a 429 retry loop.

    Retries **only** 429 (backpressure / quota): the server declared the
    condition transient and said when to come back — the advertised
    ``Retry-After`` is honored, capped at ``max_retry_after`` seconds.
    Everything else fails fast with the ``HTTPError`` surfaced; in
    particular a 503 from an open circuit breaker must NOT be retried
    here — hammering a tripped session just resets its cool-down
    observation window, the caller has to back off for real.

    ``opener`` swaps ``urllib.request.urlopen`` for a scripted one in
    tests; ``on_backpressure`` is a counter hook per 429 absorbed.
    """
    import urllib.error
    import urllib.request

    open_request = opener if opener is not None else urllib.request.urlopen
    while True:
        try:
            with open_request(request, timeout=timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            if error.code != 429:
                raise
            if on_backpressure is not None:
                on_backpressure()
            try:
                delay = float(error.headers.get("Retry-After", "0.05"))
            except (TypeError, ValueError):
                delay = 0.05
            time.sleep(min(max(delay, 0.0), max_retry_after))


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    ys: list[float] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """A reproduced figure: x values and one or more labelled series."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    xs: list[object] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def add_point(self, x: object, values: dict[str, float]) -> None:
        """Record one sweep point: ``values`` maps series label -> y."""
        if not self.series:
            self.series = [Series(label) for label in values]
        self.xs.append(x)
        by_label = {s.label: s for s in self.series}
        for label, y in values.items():
            by_label[label].ys.append(y)

    def table(self) -> str:
        """An aligned text table of the series (what the paper plots)."""
        header = [self.x_label] + [s.label for s in self.series]
        rows = [header]
        for i, x in enumerate(self.xs):
            row = [str(x)]
            for s in self.series:
                y = s.ys[i]
                row.append(f"{y:.3f}" if isinstance(y, float) else str(y))
            rows.append(row)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"(y = {self.y_label}; REPRO_SCALE={scale()})",
        ]
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def save(self, directory: str | Path = "results") -> Path:
        """Write the table to ``<directory>/<experiment_id>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.txt"
        path.write_text(self.table() + "\n")
        return path

    def series_by_label(self, label: str) -> list[float]:
        for s in self.series:
            if s.label == label:
                return s.ys
        raise KeyError(label)


def sweep(
    result: ExperimentResult,
    xs: Sequence[object],
    point: Callable[[object], dict[str, float]],
) -> ExperimentResult:
    """Run ``point`` for every x and collect the series."""
    for x in xs:
        result.add_point(x, point(x))
    return result


# -- detection engine benchmark ----------------------------------------------


def _bench_provenance() -> dict:
    """Where and how a benchmark record was captured.

    Trajectory entries are only comparable like-for-like; recording the
    git sha, timestamp, interpreter/numpy versions and every active
    ``REPRO_*`` knob makes a record self-describing, so a future reader
    can tell a real regression from a knob or host change.
    """
    import platform
    import subprocess
    from datetime import datetime, timezone

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    from ..core.faults import active_plan

    return {
        "git_sha": sha,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy_version": numpy_version,
        "cpu_count": os.cpu_count(),
        # the timed legs must run fault-free: an ambient fault plan would
        # make every number incomparable, so the record says so explicitly
        # (the robustness legs install their plans locally and note them)
        "faults": repr(active_plan()) if active_plan() is not None else "none",
        "repro_knobs": {
            name: value
            for name, value in sorted(os.environ.items())
            if name.startswith("REPRO_")
        },
    }


def _bench_sql_engine(data, workloads, repeats: int) -> dict:
    """Time the sql engine on the same workloads as the in-memory tiers.

    Per backend (sqlite always; duckdb only when importable) and per
    workload: **cold** is a fresh relation copy — the handle must load the
    rows into the database and compile the plan before the first answer —
    and **warm** is the steady state with the handle and statement cache
    resident, timed ``repeats`` times (minimum reported).  Every leg is
    cross-checked against the reference engine on violations *and* tuple
    keys, and the aggregate ``matches_reference`` is what the perf
    regression gate asserts.
    """
    from ..core import detect_violations_reference
    from ..core.sql import (
        close_sql_handles,
        detect_violations_sql,
        duckdb_enabled,
    )
    from ..relational import Relation

    backends = ["sqlite"] + (["duckdb"] if duckdb_enabled() else [])
    result: dict = {"backends": {}, "duckdb": duckdb_enabled()}
    all_match = True
    for backend in backends:
        legs: dict = {}
        for name, cfds in workloads.items():
            reference = detect_violations_reference(
                data, cfds, collect_tuples=True
            )
            # a fresh relation has no cached handle: the first detection
            # pays load + compile and is the cold measurement
            fresh = Relation(data.schema, data.rows, copy=False)
            start = time.perf_counter()
            report = detect_violations_sql(fresh, cfds, backend=backend)
            cold = time.perf_counter() - start
            warm_times = []
            for _ in range(repeats):
                start = time.perf_counter()
                report = detect_violations_sql(fresh, cfds, backend=backend)
                warm_times.append(time.perf_counter() - start)
            warm = min(warm_times)
            matches = (
                report.violations == reference.violations
                and report.tuple_keys == reference.tuple_keys
            )
            all_match = all_match and matches
            legs[name] = {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "rows_per_sec": len(data) / warm,
                "matches_reference": matches,
            }
        result["backends"][backend] = legs
        close_sql_handles()
    result["matches_reference"] = all_match
    return result


def _bench_incremental(data, cfds, repeats: int) -> dict:
    """Incremental maintenance vs full recompute at several batch sizes.

    A batch of fraction ``f`` means ``|ΔD| = f·|D|`` updated tuples —
    half (seeded-random) deletions, half mutated insertions.  Each leg
    times
    :meth:`IncrementalDetector.update` absorbing the batch (steady state:
    each timed forward batch is reverted by an untimed inverse batch)
    against a **full recompute** — the fused engine on a fresh relation
    over the final rows, columnar caches cold, which is exactly what a
    non-incremental deployment pays per update.  Every leg cross-checks
    the maintained report against the recompute (violations *and* tuple
    keys), recorded as ``matches_full_recompute``.

    Two extra ``kinds`` legs at the 1% batch record a **pure-insert** and
    a **pure-delete** batch, so the tombstone path — derived stores
    filtering codes through a mask, key-array compaction — shows up in
    the recorded trajectory, not just the append path.
    """
    import random

    from ..core import FusedDetector, IncrementalDetector
    from ..relational import Relation

    rng = random.Random(11)
    schema = data.schema
    key_position = schema.key_positions()[0]
    max_id = len(data) * 10
    detector = FusedDetector(cfds)
    street = schema.position("street") if "street" in schema else 1

    def make_batch(fraction: float, kind: str, start_id: int):
        batch = max(2, int(len(data) * fraction))
        n_victims = batch if kind in ("insert", "delete") else batch // 2
        victims = rng.sample(data.rows, n_victims)
        doomed_keys = [row[key_position] for row in victims]
        # replacements keep the victims' attribute values but take fresh
        # ids, and half get a corrupted street so the batch genuinely
        # moves violations in both directions
        inserted = []
        for i, row in enumerate(victims):
            row = list(row)
            row[key_position] = start_id + i
            if i % 2:
                row[street] = f"delta street {i}"
            inserted.append(tuple(row))
        if kind == "insert":
            return batch, victims, inserted, []
        if kind == "delete":
            return batch, victims, [], doomed_keys
        return batch, victims, inserted, doomed_keys

    def measure(fraction: float, kind: str, start_id: int) -> dict:
        batch, victims, inserted, doomed_keys = make_batch(
            fraction, kind, start_id
        )
        inserted_keys = [row[key_position] for row in inserted]
        incremental = IncrementalDetector(cfds)
        incremental.attach(Relation(schema, data.rows, copy=False))
        forward_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            incremental.update(inserted=inserted, deleted=doomed_keys)
            forward_times.append(time.perf_counter() - start)
            # revert (untimed) so every timed batch hits the same state
            revert_victims = victims if doomed_keys else []
            incremental.update(inserted=revert_victims, deleted=inserted_keys)
        start = time.perf_counter()
        delta = incremental.update(inserted=inserted, deleted=doomed_keys)
        forward_times.append(time.perf_counter() - start)
        incremental_seconds = min(forward_times)

        final_rows = incremental.relation.rows
        recompute_times = []
        for _ in range(repeats):
            fresh = Relation(schema, final_rows, copy=False)
            start = time.perf_counter()
            full_report = detector.detect(fresh)
            recompute_times.append(time.perf_counter() - start)
        full_seconds = min(recompute_times)

        maintained = incremental.report
        matches = (
            maintained.violations == full_report.violations
            and maintained.tuple_keys == full_report.tuple_keys
        )
        return {
            "batch_rows": batch,
            "kind": kind,
            "incremental_seconds": incremental_seconds,
            "full_recompute_seconds": full_seconds,
            "speedup": full_seconds / incremental_seconds,
            "violations_added": len(delta.added),
            "violations_removed": len(delta.removed),
            "matches_full_recompute": matches,
        }

    legs: dict[str, dict] = {}
    all_match = True
    for fraction in (0.001, 0.01, 0.1):
        leg = measure(fraction, "mixed", max_id)
        max_id += len(data)
        del leg["kind"]
        legs[str(fraction)] = leg
        all_match = all_match and leg["matches_full_recompute"]
    kinds: dict[str, dict] = {}
    for kind in ("insert", "delete"):
        leg = measure(0.01, kind, max_id)
        max_id += len(data)
        kinds[kind] = leg
        all_match = all_match and leg["matches_full_recompute"]
    return {
        "workload": "fig3c_single_cfd",
        "engine": "auto",
        "repeats": repeats,
        "legs": legs,
        "kinds": kinds,
        "matches_full_recompute": all_match,
    }


def _bench_incremental_sessions(data, repeats: int) -> dict:
    """Resident distributed sessions vs one-shot re-detection, per kind.

    One leg per session family — CLUSTDETECT over the overlapping Σ,
    vertical (the street CFD spans two fragments, so the coordinator
    keeps joined state), and hybrid (CC regions × vertical fragments) —
    each absorbing a 1% mixed batch and cross-checked against a fresh
    one-shot run over the updated deployment (``matches_full_recompute``,
    gated in the perf job).  The recompute side rebuilds its cluster from
    the session's updated fragments with cold caches, which is what a
    non-resident deployment pays per update round.
    """
    import random

    from ..datagen import cust_overlapping_cfds
    from ..detect import (
        IncrementalClustDetector,
        IncrementalHybridDetector,
        IncrementalVerticalDetector,
        clust_detect,
        hybrid_detect,
        vertical_detect,
    )
    from ..distributed import Cluster, HybridCluster
    from ..partition import partition_uniform, vertical_partition
    from ..relational import Eq, Relation

    schema = data.schema
    key_position = schema.key_positions()[0]
    street = schema.position("street")
    cfds = cust_overlapping_cfds()
    batch = max(2, len(data) // 100)
    rng = random.Random(13)

    def mutate(victims, start_id):
        inserted = []
        for i, row in enumerate(victims):
            row = list(row)
            row[key_position] = start_id + i
            if i % 2:
                row[street] = f"session street {i}"
            inserted.append(tuple(row))
        return inserted

    def leg(session, one_shot, rows_source, forward, revert) -> dict:
        """Time ``forward`` (min over repeats, reverted in between), then
        compare against a cold one-shot run on the updated deployment."""
        victims = rng.sample(rows_source, batch // 2)
        doomed = [row[key_position] for row in victims]
        inserted = mutate(victims, len(data) * 20)
        inserted_keys = [row[key_position] for row in inserted]
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            forward(session, inserted, doomed)
            times.append(time.perf_counter() - start)
            revert(session, victims, inserted_keys)
        start = time.perf_counter()
        forward(session, inserted, doomed)
        times.append(time.perf_counter() - start)
        start = time.perf_counter()
        fresh = one_shot(session)
        one_shot_seconds = time.perf_counter() - start
        matches = (
            session.report.violations == fresh.report.violations
            and session.report.tuple_keys == fresh.report.tuple_keys
        )
        return {
            "batch_rows": batch,
            "update_seconds": min(times),
            "one_shot_seconds": one_shot_seconds,
            "speedup": one_shot_seconds / min(times),
            "matches_full_recompute": matches,
        }

    sessions: dict[str, dict] = {}

    # CLUSTDETECT: 4 sites, the overlapping multi-CFD set
    clust_session = IncrementalClustDetector(
        partition_uniform(data, 4), cfds
    )
    clust_session.detect()
    clust_site = max(
        range(4), key=lambda i: len(clust_session.fragments[i])
    )
    sessions["clust"] = leg(
        clust_session,
        lambda s: clust_detect(
            Cluster.from_fragments(
                [Relation(schema, f.rows) for f in s.fragments]
            ),
            cfds,
        ),
        clust_session.fragments[clust_site].rows,
        lambda s, ins, dels: s.update(clust_site, inserted=ins, deleted=dels),
        lambda s, victims, keys: s.update(
            clust_site, inserted=victims, deleted=keys
        ),
    )

    # vertical: address attributes split off the order attributes, so the
    # street CFD joins at a coordinator
    sets = [
        ("id", "name", "CC", "AC", "phn"),
        ("id", "street", "city", "zip"),
        ("id", "item", "price", "quantity"),
    ]
    vertical_session = IncrementalVerticalDetector(
        vertical_partition(data, sets), cfds
    )
    vertical_session.detect()
    def rebuild_vertical(s):
        joined = s.fragments[0].join(s.fragments[1], on=("id",))
        joined = joined.join(s.fragments[2], on=("id",))
        rows = joined.project(schema.attributes).rows
        return vertical_detect(
            vertical_partition(Relation(schema, rows, copy=False), sets), cfds
        )

    sessions["vertical"] = leg(
        vertical_session,
        rebuild_vertical,
        data.rows,
        lambda s, ins, dels: s.update(inserted=ins, deleted=dels),
        lambda s, victims, keys: s.update(inserted=victims, deleted=keys),
    )

    # hybrid: one region per country code, each vertically partitioned
    country_codes = sorted({row[schema.position("CC")] for row in data.rows})
    predicates = {f"CC{cc}": Eq("CC", cc) for cc in country_codes}
    attribute_sets = {
        "V1": ["name", "CC", "AC", "phn"],
        "V2": ["street", "city", "zip"],
        "V3": ["item", "price", "quantity"],
    }
    hybrid_session = IncrementalHybridDetector(
        HybridCluster.from_partitions(data, predicates, attribute_sets),
        cfds,
    )
    hybrid_session.detect()
    hybrid_region = max(
        range(len(hybrid_session.regions_data)),
        key=lambda r: len(hybrid_session.regions_data[r]),
    )
    sessions["hybrid"] = leg(
        hybrid_session,
        lambda s: hybrid_detect(
            HybridCluster.from_partitions(
                Relation(
                    schema,
                    [
                        row
                        for region in s.regions_data
                        for row in region.rows
                    ],
                    copy=False,
                ),
                predicates,
                attribute_sets,
            ),
            cfds,
        ),
        hybrid_session.regions_data[hybrid_region].rows,
        lambda s, ins, dels: s.update(
            hybrid_region, inserted=ins, deleted=dels
        ),
        lambda s, victims, keys: s.update(
            hybrid_region, inserted=victims, deleted=keys
        ),
    )

    sessions["matches_full_recompute"] = all(
        entry["matches_full_recompute"]
        for entry in sessions.values()
        if isinstance(entry, dict)
    )
    return sessions


def _bench_parallel_detection(data, cfd, repeats: int, workers: int) -> dict:
    """Time distributed fragment detection at workers ∈ {1, ``workers``}.

    The workload is PATDETECTS over the Fig. 3c data partitioned across 4
    simulated sites — the fragment-scan stage the
    :mod:`repro.core.parallel` scheduler fans out.  Three legs: serial,
    thread pool, and the fragment-resident process pool, each measured
    cold (first detection against a fresh cluster; for processes this
    includes placing the fragments into the workers) and warm (min over
    ``repeats`` with every dictionary and columnar cache hot).  Each leg's
    report and shipment totals are checked against the serial leg — the
    scheduler's bit-identical contract — and recorded as
    ``matches_serial``.

    Speedups are hardware-honest: they record whatever the host gives
    (``cpu_count`` is included so a single-core container's ≈1.0x is
    readable as such; the thread legs additionally stay GIL-bound on the
    pure-Python σ probes whatever the core count).
    """
    from ..detect import pat_detect_s
    from ..partition import partition_uniform

    def leg(n_workers: int, mode: str) -> tuple[dict, object]:
        overrides = {"REPRO_WORKERS": str(n_workers), "REPRO_PARALLEL": mode}
        previous = {name: os.environ.get(name) for name in overrides}
        os.environ.update(overrides)
        try:
            cluster = partition_uniform(data, 4)
            start = time.perf_counter()
            outcome = pat_detect_s(cluster, cfd)
            cold = time.perf_counter() - start
            warm_times = []
            for _ in range(repeats):
                start = time.perf_counter()
                outcome = pat_detect_s(cluster, cfd)
                warm_times.append(time.perf_counter() - start)
        finally:
            for name, value in previous.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
        return {"cold_seconds": cold, "warm_seconds": min(warm_times)}, outcome

    serial_times, serial = leg(1, "off")
    legs = {"1": serial_times}
    matches = True
    multicore = (os.cpu_count() or 1) > 1
    for mode in ("thread", "process"):
        times, outcome = leg(workers, mode)
        times["speedup_warm"] = serial_times["warm_seconds"] / times["warm_seconds"]
        times["speedup_cold"] = serial_times["cold_seconds"] / times["cold_seconds"]
        # a single-core host cannot exhibit pool speedups; flag such legs
        # so the recorded trajectory stays comparable across machines
        times["representative"] = multicore
        legs[f"{workers}_{mode}"] = times
        matches = matches and (
            outcome.report.violations == serial.report.violations
            and outcome.tuples_shipped == serial.tuples_shipped
        )
    return {
        "workload": "fig3c_single_cfd",
        "algorithm": "PATDETECTS",
        "sites": 4,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "legs": legs,
        "matches_serial": matches,
    }


def _bench_robustness(data, cfd, repeats: int, workers: int) -> dict:
    """Detection under injected faults: recovery cost and the degraded floor.

    Two legs over the Fig. 3c workload at 4 simulated sites, each with a
    deterministic :class:`~repro.core.faults.FaultPlan` installed for
    exactly its own run (the plan's spec is recorded per leg, and the
    headline benchmark sections above stay fault-free — see
    ``provenance.faults``):

    ``crash_recovery``
        A warm fragment-resident process pool loses one worker to an
        injected crash on the first order of the timed detection.  The
        supervisor respawns it, re-places its fragments and resends the
        order; the leg records the wall-clock of that recovered detection
        next to the fault-free warm time, the respawn count, and
        ``matches_serial`` — recovery must be bit-identical, not merely
        survivable.

    ``degraded_throughput``
        Enough crashes to exhaust the retry budget, so the pool raises its
        typed failure, evicts itself, and :func:`map_fragments` falls back
        to the serial loop.  The leg records the degraded run's wall-clock
        and rows/sec — the floor a deployment keeps when a site stays
        down — plus ``matches_serial`` for the fallback's results.

    Timing floors are deliberately **not** gated on these legs (degraded
    runs measure survival, not speed); only the ``matches_serial`` flags
    are, in ``benchmarks/test_perf_regression.py``.
    """
    from ..core.faults import STATS, FaultPlan, fault_plan
    from ..detect import pat_detect_s
    from ..partition import partition_uniform

    overrides = {
        "REPRO_WORKERS": str(workers),
        "REPRO_PARALLEL": "process",
        "REPRO_POOL_TIMEOUT": "60",
        "REPRO_POOL_RETRIES": "2",
        "REPRO_POOL_DEGRADE": "1",
    }
    previous = {name: os.environ.get(name) for name in overrides}
    serial = pat_detect_s(partition_uniform(data, 4), cfd)

    def matches(outcome) -> bool:
        return (
            outcome.report.violations == serial.report.violations
            and outcome.tuples_shipped == serial.tuples_shipped
        )

    os.environ.update(overrides)
    try:
        # -- crash recovery: warm pool, one injected crash ------------------
        cluster = partition_uniform(data, 4)
        pat_detect_s(cluster, cfd)  # cold run: place fragments, warm caches
        warm_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            pat_detect_s(cluster, cfd)
            warm_times.append(time.perf_counter() - start)
        crash_spec = "crash@0"
        respawns_before = STATS["respawns"]
        with fault_plan(FaultPlan.parse(crash_spec)):
            start = time.perf_counter()
            recovered = pat_detect_s(cluster, cfd)
            recovery_seconds = time.perf_counter() - start
        crash_leg = {
            "fault_spec": crash_spec,
            "recovery_seconds": recovery_seconds,
            "fault_free_warm_seconds": min(warm_times),
            "recovery_overhead_seconds": recovery_seconds - min(warm_times),
            "respawns": STATS["respawns"] - respawns_before,
            "matches_serial": matches(recovered),
        }

        # -- degraded throughput: crashes past the retry budget -------------
        os.environ["REPRO_POOL_RETRIES"] = "1"
        degraded_spec = ",".join(f"crash@{i}" for i in range(16))
        cluster = partition_uniform(data, 4)
        degraded_before = STATS["degraded_runs"]
        with fault_plan(FaultPlan.parse(degraded_spec)):
            start = time.perf_counter()
            outcome = pat_detect_s(cluster, cfd)
            degraded_seconds = time.perf_counter() - start
        degraded_leg = {
            "fault_spec": degraded_spec,
            "seconds": degraded_seconds,
            "rows_per_sec": len(data) / degraded_seconds,
            "degraded_runs": STATS["degraded_runs"] - degraded_before,
            "matches_serial": matches(outcome),
        }
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return {
        "workload": "fig3c_single_cfd",
        "algorithm": "PATDETECTS",
        "sites": 4,
        "workers": workers,
        "crash_recovery": crash_leg,
        "degraded_throughput": degraded_leg,
        "matches_serial": (
            crash_leg["matches_serial"] and degraded_leg["matches_serial"]
        ),
    }


def _bench_serve(data, cfd, repeats: int, writers: int = 4) -> dict:
    """The resident detection service under concurrent HTTP writers.

    A load generator against a real in-process ``repro serve`` deployment
    (threaded HTTP server, one resident ``central`` session): ``writers``
    client threads stream single-row update requests over disjoint key
    ranges — every 4th request a delete — while the session group-commits
    them into coalesced delta folds.  Records update latency quantiles
    (p50/p99 over all requests), aggregate request throughput, the
    coalescing the group commit actually achieved, and session churn
    (create+drop cycles per second).  Disjoint key ranges make the
    concurrent streams commutative, so the final report must equal a
    serial replay — recomputed here with the reference oracle over the
    expected final rows (``matches_serial_replay``, gated in the perf
    job; timing is recorded but not gated, like the other
    concurrency-shaped legs).
    """
    import threading
    import urllib.request

    from ..core import detect_violations_reference, format_cfd
    from ..relational import Relation
    from ..serve import DetectionService, serve_http

    schema = data.schema
    key_position = schema.key_positions()[0]
    # cap the resident relation: the leg measures request handling and
    # group commit, not fold cost over the full Fig. 3c instance
    base = [list(row) for row in data.rows[: min(len(data), 20_000)]]
    spec = {
        "kind": "central",
        "schema": {
            "name": schema.name,
            "attributes": list(schema.attributes),
            "key": list(schema.key),
        },
        "cfds": [format_cfd(cfd)],
        "rows": base,
    }
    per_writer = max(24, 8 * repeats)
    street = schema.position("street")

    service = DetectionService(coalesce=8)
    server = serve_http(service)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    host, port = server.server_address
    root = f"http://{host}:{port}/v1/bench/sessions"
    backpressured = [0]

    def on_backpressure() -> None:
        backpressured[0] += 1

    def call(method: str, path: str, body=None) -> dict:
        payload = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            root + path, data=payload, method=method
        )
        if payload is not None:
            request.add_header("Content-Type", "application/json")
        return request_json(request, on_backpressure=on_backpressure)

    try:
        call("POST", "/cust", spec)

        # each writer owns a disjoint key range; every 4th request deletes
        # the row inserted two steps earlier, so the delete/reconcile path
        # is on the timed path too
        expected: dict[int, dict] = {i: {} for i in range(writers)}
        for index in range(writers):
            for step in range(per_writer):
                key = 10_000_000 + index * 100_000 + step
                row = list(base[(index * per_writer + step) % len(base)])
                row[key_position] = key
                row[street] = f"serve bench {index}-{step}"
                if step % 4 == 3:
                    expected[index].pop(key - 2, None)
                else:
                    expected[index][key] = row

        latencies: list[list[float]] = [[] for _ in range(writers)]
        errors: list[BaseException] = []
        gate = threading.Barrier(writers)

        def writer(index: int) -> None:
            gate.wait()
            try:
                for step in range(per_writer):
                    key = 10_000_000 + index * 100_000 + step
                    if step % 4 == 3:
                        body = {"deleted": [key - 2]}
                    else:
                        row = list(base[(index * per_writer + step) % len(base)])
                        row[key_position] = key
                        row[street] = f"serve bench {index}-{step}"
                        body = {"inserted": [row]}
                    start = time.perf_counter()
                    call("POST", "/cust/update", body)
                    latencies[index].append(time.perf_counter() - start)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(index,))
            for index in range(writers)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - wall_start
        if errors:
            raise errors[0]

        # equivalence gate: the served report vs the reference oracle over
        # the serial-replay final state (the CFD name does not survive the
        # format/parse round trip, so violations compare on LHS identity —
        # exact for a single-CFD session)
        final_rows = [tuple(row) for row in base] + [
            tuple(row)
            for index in range(writers)
            for row in expected[index].values()
        ]
        replay = detect_violations_reference(
            Relation(schema, final_rows, copy=False), [cfd]
        )
        report = call("GET", "/cust/detect")
        served_violations = {
            (tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
            for v in report["violations"]
        }
        served_keys = {tuple(k) for k in report["tuple_keys"]}
        matches = served_violations == {
            (v.lhs_attributes, v.lhs_values) for v in replay.violations
        } and served_keys == set(replay.tuple_keys)
        verify_ok = bool(call("POST", "/cust/verify", {})["ok"])
        stats = service.stats()["sessions"]["bench/cust"]

        # session churn: how fast the registry turns whole sessions over
        churn_spec = dict(spec, rows=base[:500])
        cycles = 8
        churn_start = time.perf_counter()
        for index in range(cycles):
            call("POST", f"/churn{index}", churn_spec)
            call("DELETE", f"/churn{index}")
        churn_seconds = time.perf_counter() - churn_start
    finally:
        server.shutdown()
        server.server_close()

    samples = sorted(t for per in latencies for t in per)

    def quantile(q: float) -> float:
        return samples[round(q * (len(samples) - 1))]

    return {
        "writers": writers,
        "base_rows": len(base),
        "requests": len(samples),
        "update_p50_seconds": quantile(0.50),
        "update_p99_seconds": quantile(0.99),
        "update_max_seconds": samples[-1],
        "requests_per_sec": len(samples) / wall,
        "updates": stats["updates"],
        "folds": stats["folds"],
        "coalesced_max": stats["coalesced_max"],
        "backpressure_retries": backpressured[0],
        "churn_sessions_per_sec": cycles / churn_seconds,
        "verify_ok": verify_ok,
        "matches_serial_replay": matches,
    }


def _bench_overload(data, cfd, repeats: int, tenants: int = 4) -> dict:
    """The governed service at 2× queue capacity: goodput, shed, p99.

    Four tenants each own one resident session behind a governed
    ``repro serve`` deployment with a deliberately tight queue and a
    per-update rows cap.  Phase one is uncontended — one sequential
    writer per tenant — and establishes the baseline *governed* p99
    (the server-reported ``queue_seconds``: enqueue → group-commit
    settle, the span the admission deadline bounds; client wall time
    would mostly measure transport and scheduler noise in front of
    admission, which no server-side governor can shed).  The
    queue-residence deadline is then armed at ≈3× that baseline, so
    queue waits cannot stretch accepted latency past the 5× gate.
    Phase two offers **2× queue capacity** per tenant:
    ``2 × queue_depth`` concurrent writers per tenant fire single-row
    inserts with NO retry — and every tenth request is a bulk update
    over the rows cap, guaranteed abusive load the governor must
    reject.  A shed request (429 backpressure / quota, 503 expired
    deadline) is counted, its ``Retry-After`` header checked, and
    abandoned.  Every writer records exactly which of its inserts were
    accepted, so the equivalence gate is sharp: per tenant, the served
    report must equal the reference oracle over base rows + *exactly
    the accepted set* — a shed update leaving any trace, or an
    accepted one lost, fails ``matches_serial_replay``.
    """
    import threading
    import urllib.error
    import urllib.request

    from ..core import detect_violations_reference, format_cfd
    from ..relational import Relation
    from ..serve import DetectionService, serve_http

    schema = data.schema
    key_position = schema.key_positions()[0]
    street = schema.position("street")
    base = [list(row) for row in data.rows[: min(len(data), 20_000)]]
    queue_depth = 4
    max_rows = 256
    bulk_every = 10  # every tenth request exceeds the rows cap
    writers_per_tenant = 2 * queue_depth  # the 2× capacity offered load
    per_writer = max(20, 5 * repeats)
    uncontended_per_tenant = 16

    def session_spec() -> dict:
        return {
            "kind": "central",
            "schema": {
                "name": schema.name,
                "attributes": list(schema.attributes),
                "key": list(schema.key),
            },
            "cfds": [format_cfd(cfd)],
            "rows": base,
        }

    service = DetectionService(
        queue_depth=queue_depth, coalesce=8, deadline=0, max_rows=max_rows
    )
    server = serve_http(service)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    host, port = server.server_address

    def url(tenant: int, action: str = "") -> str:
        return (
            f"http://{host}:{port}/v1/tenant{tenant}/sessions/cust{action}"
        )

    def post(target: str, body) -> dict:
        request = urllib.request.Request(
            target, data=json.dumps(body).encode(), method="POST"
        )
        request.add_header("Content-Type", "application/json")
        return request_json(request)

    def row_for(tenant: int, writer: int, step: int, phase: int) -> list:
        key = 20_000_000 + ((phase * 64 + tenant) * 64 + writer) * 100_000 + step
        row = list(base[(writer * per_writer + step) % len(base)])
        row[key_position] = key
        row[street] = f"overload {tenant}-{writer}-{step}-{phase}"
        return row

    try:
        for tenant in range(tenants):
            post(url(tenant), session_spec())

        # phase 1: uncontended — one sequential writer per tenant; all
        # accepted, establishes the p99 the 5× bound is measured against
        accepted_rows: list[list[dict[int, list]]] = [
            [dict() for _ in range(writers_per_tenant + 1)]
            for _ in range(tenants)
        ]
        uncontended: list[float] = []
        for tenant in range(tenants):
            for step in range(uncontended_per_tenant):
                row = row_for(tenant, writers_per_tenant, step, phase=0)
                ack = post(url(tenant, "/update"), {"inserted": [row]})
                uncontended.append(ack["queue_seconds"])
                accepted_rows[tenant][writers_per_tenant][row[key_position]] = row
        uncontended.sort()
        p99_uncontended = uncontended[round(0.99 * (len(uncontended) - 1))]

        # arm the deadline for phase 2 (the governor reads it per
        # ticket, so flipping it between phases is race-free): 3× the
        # uncontended governed p99, so an accepted ticket that waits
        # right up to the deadline and then folds still lands ≈4× —
        # inside the 5× gate
        deadline = max(3.0 * p99_uncontended, 0.002)
        service.governor.deadline = deadline

        accepted_latencies: list[list[float]] = [
            [] for _ in range(tenants * writers_per_tenant)
        ]
        shed_count = [0] * (tenants * writers_per_tenant)
        shed_missing_retry_after = [0] * (tenants * writers_per_tenant)
        errors: list[BaseException] = []
        gate = threading.Barrier(tenants * writers_per_tenant)

        # a bulk update over the rows cap: the governor must shed it
        # before any fold, so the junk rows are never validated
        bulk_payload = json.dumps(
            {"inserted": [[0]] * (max_rows + 64)}
        ).encode()

        def writer(tenant: int, index: int) -> None:
            slot = tenant * writers_per_tenant + index
            target = url(tenant, "/update")
            gate.wait()
            try:
                for step in range(per_writer):
                    bulk = step % bulk_every == bulk_every - 1
                    if bulk:
                        payload = bulk_payload
                    else:
                        row = row_for(tenant, index, step, phase=1)
                        payload = json.dumps({"inserted": [row]}).encode()
                    request = urllib.request.Request(
                        target, data=payload, method="POST"
                    )
                    request.add_header("Content-Type", "application/json")
                    try:
                        with urllib.request.urlopen(
                            request, timeout=60
                        ) as response:
                            ack = json.loads(response.read())
                    except urllib.error.HTTPError as error:
                        if error.code not in (429, 503):
                            raise
                        error.read()
                        shed_count[slot] += 1
                        if error.headers.get("Retry-After") is None:
                            shed_missing_retry_after[slot] += 1
                        continue  # shed: no retry, keep the pressure on
                    if bulk:
                        raise AssertionError(
                            "bulk update over the rows cap was accepted"
                        )
                    accepted_latencies[slot].append(ack["queue_seconds"])
                    accepted_rows[tenant][index][row[key_position]] = row
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(tenant, index))
            for tenant in range(tenants)
            for index in range(writers_per_tenant)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - wall_start
        if errors:
            raise errors[0]

        # equivalence on exactly the accepted set, per tenant
        matches = True
        for tenant in range(tenants):
            final_rows = [tuple(row) for row in base] + [
                tuple(row)
                for per_writer_rows in accepted_rows[tenant]
                for row in per_writer_rows.values()
            ]
            replay = detect_violations_reference(
                Relation(schema, final_rows, copy=False), [cfd]
            )
            request = urllib.request.Request(
                url(tenant, "/detect"), method="GET"
            )
            report = request_json(request)
            served_violations = {
                (tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
                for v in report["violations"]
            }
            served_keys = {tuple(k) for k in report["tuple_keys"]}
            matches = (
                matches
                and served_violations
                == {(v.lhs_attributes, v.lhs_values) for v in replay.violations}
                and served_keys == set(replay.tuple_keys)
            )
        governor_stats = service.stats()["governor"]
    finally:
        server.shutdown()
        service.close()
        server.server_close()

    accepted = sorted(t for per in accepted_latencies for t in per)
    shed = sum(shed_count)
    offered = tenants * writers_per_tenant * per_writer
    p99_accepted = (
        accepted[round(0.99 * (len(accepted) - 1))] if accepted else 0.0
    )
    return {
        "tenants": tenants,
        "queue_depth": queue_depth,
        "max_rows": max_rows,
        "writers_per_tenant": writers_per_tenant,
        "offered_factor": writers_per_tenant / queue_depth,
        "deadline_seconds": deadline,
        "offered": offered,
        "accepted": len(accepted),
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "goodput_per_sec": len(accepted) / wall if wall else 0.0,
        "p99_uncontended_seconds": p99_uncontended,
        "p99_accepted_seconds": p99_accepted,
        "p99_ratio": (
            p99_accepted / p99_uncontended if p99_uncontended else 0.0
        ),
        "all_shed_carry_retry_after": sum(shed_missing_retry_after) == 0,
        "shed_by_reason": governor_stats["shed"],
        "matches_serial_replay": matches,
    }


def _bench_durability(data, cfd, repeats: int) -> dict:
    """WAL overhead per fsync policy, and recovery cost of a long log.

    Part one drives the same single-row update stream through four
    deployments of the detection service — in-memory (no ``--data-dir``)
    and durable at each ``REPRO_SERVE_FSYNC`` policy — and records the
    update latency quantiles, so the recorded trajectory shows what an
    acknowledged-durable update costs over an acknowledged-resident one.
    Part two builds a session whose WAL holds 10k committed records
    (checkpointing disabled), then times a cold restart's recovery —
    snapshot load plus full replay through the normal ``update()`` path.
    Both parts are equivalence-gated (``matches_serial_replay``): every
    deployment's final report, and the recovered report, must equal the
    reference oracle over the serially-replayed rows; timing is recorded
    but not gated, like the other concurrency-shaped legs.
    """
    import tempfile

    from ..core import detect_violations_reference, format_cfd
    from ..relational import Relation
    from ..serve import DetectionService

    schema = data.schema
    key_position = schema.key_positions()[0]
    street = schema.position("street")
    base = [list(row) for row in data.rows[: min(len(data), 2_000)]]
    spec = {
        "kind": "central",
        "schema": {
            "name": schema.name,
            "attributes": list(schema.attributes),
            "key": list(schema.key),
        },
        "cfds": [format_cfd(cfd)],
        "rows": base,
    }
    n_updates = max(120, 40 * repeats)

    def stream(service) -> list[float]:
        """The timed workload: single-row updates, every 4th a delete."""
        service.create_session("bench", "wal", spec)
        latencies = []
        for step in range(n_updates):
            key = 20_000_000 + step
            if step % 4 == 3:
                body = {"deleted": [key - 2]}
            else:
                row = list(base[step % len(base)])
                row[key_position] = key
                row[street] = f"durability bench {step}"
                body = {"inserted": [row]}
            start = time.perf_counter()
            service.update("bench", "wal", **body)
            latencies.append(time.perf_counter() - start)
        return sorted(latencies)

    def final_rows() -> list[tuple]:
        alive: dict[int, tuple] = {}
        for step in range(n_updates):
            key = 20_000_000 + step
            if step % 4 == 3:
                alive.pop(key - 2, None)
            else:
                row = list(base[step % len(base)])
                row[key_position] = key
                row[street] = f"durability bench {step}"
                alive[key] = tuple(row)
        return [tuple(row) for row in base] + list(alive.values())

    replay = detect_violations_reference(
        Relation(schema, final_rows(), copy=False), [cfd]
    )
    expected = {(v.lhs_attributes, v.lhs_values) for v in replay.violations}

    def matches(service) -> bool:
        report = service.detect("bench", "wal")
        served = {
            (tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
            for v in report["violations"]
        }
        return served == expected

    def quantiles(samples: list[float]) -> dict:
        return {
            "update_p50_seconds": samples[round(0.50 * (len(samples) - 1))],
            "update_p99_seconds": samples[round(0.99 * (len(samples) - 1))],
        }

    all_match = True
    memory_service = DetectionService()
    memory_samples = stream(memory_service)
    all_match &= matches(memory_service)
    memory = {"requests": len(memory_samples), **quantiles(memory_samples)}

    policies: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        for policy in ("off", "batch", "always"):
            service = DetectionService(
                data_dir=Path(tmp) / policy,
                fsync=policy,
                checkpoint=1_000_000,  # keep checkpoints off the timed path
            )
            samples = stream(service)
            policy_matches = matches(service)
            # the durable deployments must also survive a restart;
            # close first so 'off'-policy buffers reach the disk files
            service.registry.store.close()
            revived = DetectionService(
                data_dir=Path(tmp) / policy, fsync=policy
            )
            policy_matches &= revived.recovered == 1 and matches(revived)
            all_match &= policy_matches
            entry = quantiles(samples)
            entry["overhead_p50_vs_memory"] = (
                entry["update_p50_seconds"] / memory["update_p50_seconds"]
            )
            entry["matches_serial_replay"] = policy_matches
            policies[policy] = entry

        # part two: recovery time for a 10k-record WAL
        records = 10_000
        build_dir = Path(tmp) / "recovery"
        builder = DetectionService(
            data_dir=build_dir, fsync="off", checkpoint=10_000_000
        )
        builder.create_session("bench", "log", dict(spec, rows=base[:500]))
        for step in range(records):
            key = 30_000_000 + step
            if step % 4 == 3:
                builder.update("bench", "log", deleted=[key - 2])
            else:
                row = list(base[step % len(base)])
                row[key_position] = key
                row[street] = f"recovery bench {step}"
                builder.update("bench", "log", inserted=[row])
        before = builder.detect("bench", "log")
        builder.registry.store.close()  # flush 'off'-policy buffers
        start = time.perf_counter()
        revived = DetectionService(data_dir=build_dir, fsync="off")
        recovery_seconds = time.perf_counter() - start
        recovery_matches = (
            revived.recovered == 1
            and revived.detect("bench", "log") == before
        )
        all_match &= recovery_matches
        recovery = {
            "wal_records": records,
            "recovery_seconds": recovery_seconds,
            "replayed_records": revived.stats()["durability"].get(
                "replayed_records", 0
            ),
            "records_per_sec": records / recovery_seconds,
            "matches_serial_replay": recovery_matches,
        }

    return {
        "requests": n_updates,
        "base_rows": len(base),
        "memory": memory,
        "policies": policies,
        "recovery": recovery,
        "matches_serial_replay": bool(all_match),
    }


def bench_detection(
    out: str | Path | None = None,
    repeats: int = 3,
    fraction: float = 1.0,
    seed: int = 8,
    workers: int = 4,
) -> dict:
    """Time centralized detection across all four engines on Fig. 3c/3i data.

    The workload is the Fig. 3c data-size configuration (cust16 at
    ``REPRO_SCALE``), measured with the single 255-pattern street CFD
    (Fig. 3c) and with the overlapping multi-CFD set Σ (Fig. 3i); the
    generator is seeded (``seed``, default 8) so successive runs time the
    identical instance and the recorded trajectory compares like-for-like.
    Per workload the per-normal-form **reference** plan runs ``repeats``
    times; the **fused** engine (pure-Python encoding *and* folds — the
    array backend is disabled for this tier regardless of the environment)
    and, when numpy is active, the **fused-numpy** engine (vectorized
    encoding and folds) are each timed *cold* (fresh relation, empty
    columnar cache) and then ``repeats`` times *warm* — the steady-state
    number that matters for a detector that, like a DBMS, keeps its
    indexes.  Every engine's report is cross-checked against the reference
    (violations and tuple keys) so the benchmark doubles as an equivalence
    gate.  The ``sql`` section (:func:`_bench_sql_engine`) times the
    database-backed engine on the same workloads, per backend.

    ``workers`` (default 4) appends the distributed ``parallel`` section —
    fragment-level detection at workers ∈ {1, N} across serial/thread/
    process legs (:func:`_bench_parallel_detection`) — and the
    ``robustness`` section — crash recovery and degraded-mode throughput
    under injected faults (:func:`_bench_robustness`); pass ``workers<=1``
    to skip both.  The ``serve`` section (:func:`_bench_serve`) always
    runs: the resident multi-tenant HTTP service under 4 concurrent
    writers — update latency p50/p99, request throughput, group-commit
    coalescing, session churn, equivalence against a serial replay.

    Returns the summary dict; when ``out`` is given it is also written
    there as JSON (``BENCH_detect.json``), giving future changes a
    machine-readable perf trajectory to compare against.
    """
    from ..core import FusedDetector, detect_violations_reference
    from ..datagen import cust_overlapping_cfds, cust_street_cfd, generate_cust
    from ..relational import Relation
    from ..relational.columnar import numpy_enabled

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    data = generate_cust(scaled(1_600_000), seed=seed)
    if fraction < 1.0:
        data = Relation(
            data.schema, data.rows[: int(len(data) * fraction)], copy=False
        )
    workloads = {
        "fig3c_single_cfd": [cust_street_cfd(255)],
        "fig3i_multi_cfd": cust_overlapping_cfds(),
    }

    def timed(call):
        start = time.perf_counter()
        report = call()
        return report, time.perf_counter() - start

    def cold_and_warm(detector, vectorize):
        # a fresh relation over the same rows has an empty column cache, so
        # the first detection is the cold measurement and doubles as the
        # warm-up for the steady-state loop (even with repeats=1)
        relation = Relation(data.schema, data.rows, copy=False)
        report, cold = timed(
            lambda: detector.detect(relation, True, vectorize)
        )
        warm_times = []
        for _ in range(repeats):
            report, elapsed = timed(
                lambda: detector.detect(relation, True, vectorize)
            )
            warm_times.append(elapsed)
        return report, cold, min(warm_times)

    summary: dict = {
        "benchmark": "centralized detection: reference vs fused vs fused-numpy",
        "scale": scale(),
        "seed": seed,
        "n_tuples": len(data),
        "repeats": repeats,
        "numpy": numpy_enabled(),
        "workloads": {},
    }
    for name, cfds in workloads.items():
        detector = FusedDetector(cfds)

        baseline_times = []
        for _ in range(repeats):
            reference_report, elapsed = timed(
                lambda: detect_violations_reference(data, cfds, collect_tuples=True)
            )
            baseline_times.append(elapsed)
        baseline = min(baseline_times)

        def matches(report):
            return (
                report.violations == reference_report.violations
                and report.tuple_keys == reference_report.tuple_keys
            )

        # pure-Python tier: list encoding and folds, whatever the machine has
        previous = os.environ.get("REPRO_NUMPY")
        os.environ["REPRO_NUMPY"] = "0"
        try:
            fused_report, cold_seconds, warm = cold_and_warm(detector, False)
        finally:
            if previous is None:
                del os.environ["REPRO_NUMPY"]
            else:
                os.environ["REPRO_NUMPY"] = previous

        entry = {
            "n_cfds": len(cfds),
            "baseline_seconds": baseline,
            "baseline_rows_per_sec": len(data) / baseline,
            "fused_cold_seconds": cold_seconds,
            "fused_warm_seconds": warm,
            "fused_rows_per_sec": len(data) / warm,
            "speedup": baseline / warm,
            "cold_speedup": baseline / cold_seconds,
            "matches_reference": matches(fused_report),
        }

        if numpy_enabled():
            numpy_report, numpy_cold, numpy_warm = cold_and_warm(detector, True)
            entry.update(
                {
                    "fused_numpy_cold_seconds": numpy_cold,
                    "fused_numpy_warm_seconds": numpy_warm,
                    "fused_numpy_rows_per_sec": len(data) / numpy_warm,
                    "fused_numpy_speedup": baseline / numpy_warm,
                    "fused_numpy_cold_speedup": baseline / numpy_cold,
                    "fused_numpy_vs_fused": warm / numpy_warm,
                    "fused_numpy_matches_reference": matches(numpy_report),
                }
            )
        summary["workloads"][name] = entry

    summary["speedup"] = summary["workloads"]["fig3c_single_cfd"]["speedup"]
    summary["sql"] = _bench_sql_engine(data, workloads, repeats)
    summary["provenance"] = _bench_provenance()
    summary["incremental"] = _bench_incremental(
        data, workloads["fig3c_single_cfd"], repeats
    )
    summary["incremental"]["sessions"] = _bench_incremental_sessions(
        data, repeats
    )
    if workers > 1:
        summary["parallel"] = _bench_parallel_detection(
            data, workloads["fig3c_single_cfd"][0], repeats, workers
        )
        summary["robustness"] = _bench_robustness(
            data, workloads["fig3c_single_cfd"][0], repeats, workers
        )
    # the serve leg is thread-based (it load-tests the resident HTTP
    # service), so it runs regardless of the process-worker knob
    summary["serve"] = _bench_serve(
        data, workloads["fig3c_single_cfd"][0], repeats, writers=4
    )
    # the overload leg drives the same service 2× past queue capacity
    # and records what the governor sheds (and that it sheds cleanly)
    summary["overload"] = _bench_overload(
        data, workloads["fig3c_single_cfd"][0], repeats
    )
    summary["durability"] = _bench_durability(
        data, workloads["fig3c_single_cfd"][0], repeats
    )
    if out is not None:
        out = Path(out)
        out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary
