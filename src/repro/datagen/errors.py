"""Controlled error injection for synthetic datasets.

The paper's CUST generator was "based on real-life data scraped from the
Web" with naturally occurring inconsistencies; our generators produce clean
correlated data and then inject violations at a configurable rate, which
keeps the ground truth known (tests assert the detectors find exactly the
injected inconsistencies on small instances).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..relational import Relation


def corrupt_attribute(
    relation: Relation,
    attribute: str,
    rate: float,
    corrupter: Callable[[object, random.Random], object],
    seed: int = 0,
) -> tuple[Relation, list[int]]:
    """Replace ``attribute`` in a ``rate`` fraction of rows.

    Returns the corrupted relation and the indexes of the touched rows.
    The input relation is not modified.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = random.Random(seed)
    position = relation.schema.position(attribute)
    rows = []
    touched = []
    for index, row in enumerate(relation.rows):
        if rng.random() < rate:
            row = list(row)
            row[position] = corrupter(row[position], rng)
            row = tuple(row)
            touched.append(index)
        rows.append(row)
    return Relation(relation.schema, rows, copy=False), touched


def typo(value: object, rng: random.Random) -> object:
    """A generic corrupter: append a marked typo suffix."""
    return f"{value}~typo{rng.randrange(3)}"


def swap_with(values: Sequence[object]) -> Callable[[object, random.Random], object]:
    """A corrupter drawing a wrong-but-plausible value from a pool."""

    def corrupter(value: object, rng: random.Random) -> object:
        candidates = [v for v in values if v != value]
        return rng.choice(candidates) if candidates else value

    return corrupter
