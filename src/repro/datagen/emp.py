"""The paper's running example: the EMP relation ``D0`` of Figure 1.

Provides the instance verbatim, the data quality rules cfd1–cfd5 of
Example 1 (and their tableau forms φ1–φ3 of Example 2), the horizontal
partition ``DH1/DH2/DH3`` of Figure 1(b) and the vertical partition
``DV1/DV2/DV3`` described in Example 1.  The test suite pins every claim the
paper makes about this data (violating tuples, coordinator choices,
shipment counts, the minimum augmentation of Example 7) to these objects.
"""

from __future__ import annotations

from ..core import CFD, parse_cfd
from ..relational import Eq, Predicate, Relation, Schema

EMP_ATTRIBUTES = (
    "id",
    "name",
    "title",
    "CC",
    "AC",
    "phn",
    "street",
    "city",
    "zip",
    "salary",
)

EMP_SCHEMA = Schema("EMP", EMP_ATTRIBUTES, key=("id",))

_D0_ROWS = [
    (1, "Sam", "DMTS", 44, 131, 8765432, "Princess Str.", "EDI", "EH2 4HF", "95k"),
    (2, "Mike", "MTS", 44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE", "80k"),
    (3, "Rick", "DMTS", 44, 131, 3456789, "Mayfield", "NYC", "EH4 8LE", "95k"),
    (4, "Philip", "DMTS", 44, 131, 2909209, "Crichton", "EDI", "EH4 8LE", "95k"),
    (5, "Adam", "VP", 44, 131, 7478626, "Mayfield", "EDI", "EH4 8LE", "200k"),
    (6, "Joe", "MTS", 1, 908, 1416282, "Mtn Ave", "NYC", "07974", "110k"),
    (7, "Bob", "DMTS", 1, 908, 2345678, "Mtn Ave", "MH", "07974", "150k"),
    (8, "Jef", "DMTS", 31, 20, 8765432, "Muntplein", "AMS", "1012 WR", "90k"),
    (9, "Steven", "MTS", 31, 20, 1425364, "Spuistraat", "AMS", "1012 WR", "75k"),
    (10, "Bram", "MTS", 31, 10, 2536475, "Kruisplein", "ROT", "3012 CC", "75k"),
]


def emp_instance() -> Relation:
    """The instance ``D0`` of Figure 1(a), tuples t1–t10."""
    return Relation(EMP_SCHEMA, _D0_ROWS)


def emp_cfds() -> list[CFD]:
    """cfd1–cfd5 of Example 1, as five separate CFDs."""
    return [
        parse_cfd("([CC=44, zip] -> [street])", name="cfd1"),
        parse_cfd("([CC=31, zip] -> [street])", name="cfd2"),
        parse_cfd("([CC, title] -> [salary])", name="cfd3"),
        parse_cfd("([CC=44, AC=131] -> [city='EDI'])", name="cfd4"),
        parse_cfd("([CC=1, AC=908] -> [city='MH'])", name="cfd5"),
    ]


def emp_tableau_cfds() -> list[CFD]:
    """φ1–φ3 of Example 2: the same rules folded into pattern tableaux."""
    phi1 = parse_cfd(
        "([CC, zip] -> [street]) with (44, _ || _), (31, _ || _)", name="phi1"
    )
    phi2 = parse_cfd("([CC, title] -> [salary]) with (_, _ || _)", name="phi2")
    phi3 = parse_cfd(
        "([CC, AC] -> [city]) with (44, 131 || 'EDI'), (1, 908 || 'MH')",
        name="phi3",
    )
    return [phi1, phi2, phi3]


def emp_horizontal_predicates() -> dict[str, Predicate]:
    """The fragmentation predicates of Figure 1(b): grouping by ``title``."""
    return {
        "DH1": Eq("title", "MTS"),
        "DH2": Eq("title", "DMTS"),
        "DH3": Eq("title", "VP"),
    }


def emp_vertical_attribute_sets() -> dict[str, tuple[str, ...]]:
    """The vertical partition of Example 1 (key ``id`` in every fragment).

    DV1: name, title and address; DV2: phone number; DV3: salary.
    """
    return {
        "DV1": ("id", "name", "title", "street", "city", "zip"),
        "DV2": ("id", "CC", "AC", "phn"),
        "DV3": ("id", "salary"),
    }


#: ids of the violating tuples listed in Example 1: t2–t6, t8 and t9.
EXAMPLE1_VIOLATING_IDS = frozenset({2, 3, 4, 5, 6, 8, 9})
