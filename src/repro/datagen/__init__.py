"""Dataset generators: the paper's running example and evaluation workloads."""

from .cust import (
    CUST_SCHEMA,
    all_cc_ac_pairs,
    city_of,
    cust_city_cfd,
    cust_overlapping_cfds,
    cust_street_cfd,
    generate_cust,
    street_of,
)
from .emp import (
    EMP_SCHEMA,
    EXAMPLE1_VIOLATING_IDS,
    emp_cfds,
    emp_horizontal_predicates,
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
)
from .errors import corrupt_attribute, swap_with, typo
from .xref import (
    ORGANISMS_XREF8,
    ORGANISMS_XREFH,
    XREF_SCHEMA,
    generate_xref,
    n_info_types,
    xref_mining_fd,
    xref_object_type_cfd,
    xref_overlapping_cfds,
    xref_priority_cfd,
)

__all__ = [
    "CUST_SCHEMA",
    "all_cc_ac_pairs",
    "city_of",
    "cust_city_cfd",
    "cust_overlapping_cfds",
    "cust_street_cfd",
    "generate_cust",
    "street_of",
    "EMP_SCHEMA",
    "EXAMPLE1_VIOLATING_IDS",
    "emp_cfds",
    "emp_horizontal_predicates",
    "emp_instance",
    "emp_tableau_cfds",
    "emp_vertical_attribute_sets",
    "corrupt_attribute",
    "swap_with",
    "typo",
    "ORGANISMS_XREF8",
    "ORGANISMS_XREFH",
    "XREF_SCHEMA",
    "generate_xref",
    "n_info_types",
    "xref_mining_fd",
    "xref_object_type_cfd",
    "xref_overlapping_cfds",
    "xref_priority_cfd",
]
