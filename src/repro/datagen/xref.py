"""The XREF workload: genome cross-references (Section VI, xref8 / xrefH).

The paper built a 16-attribute XREF relation from the Ensembl genome
database — the cross-reference records attached to genes and proteins —
for the organisms cow, dog and zebrafish (800K tuples, ``xref8``) and for
human (2.7M tuples, ``xrefH``, distributed into 7 fragments by reference
type).  Ensembl dumps are unavailable offline, so this generator simulates
the schema and the statistical structure the experiments depend on (see
DESIGN.md):

* 16 attributes modelled on Ensembl's ``xref``/``object_xref`` tables
  (organism, object type/status, external database name, info type, ...);
* ``(organism, db_name)`` functionally determines ``priority`` and
  correlates with ``object_type`` — the two evaluation CFDs below;
* a Zipf-like skew over external databases and info types, which is what
  makes closed-itemset mining productive in Exp-4.
"""

from __future__ import annotations

import random

from ..core import CFD, PatternTuple, WILDCARD
from ..relational import Relation, Schema

XREF_ATTRIBUTES = (
    "id",
    "organism",
    "object_type",
    "object_status",
    "db_name",
    "db_release",
    "info_type",
    "info_text",
    "accession",
    "display_label",
    "version",
    "description",
    "synonym_count",
    "gene_id",
    "transcript_id",
    "priority",
)

XREF_SCHEMA = Schema("XREF", XREF_ATTRIBUTES, key=("id",))

ORGANISMS_XREF8 = ("cow", "dog", "zebrafish")
ORGANISMS_XREFH = ("human",)

#: external databases, in descending frequency (Zipf-ish skew)
_DB_NAMES = (
    "UniProt",
    "RefSeq",
    "EntrezGene",
    "GO",
    "Interpro",
    "EMBL",
    "PDB",
    "MIM",
    "HGNC",
    "CCDS",
    "UniGene",
    "IPI",
)
_INFO_TYPES = (
    "SEQUENCE_MATCH",
    "DIRECT",
    "DEPENDENT",
    "PROJECTION",
    "MISC",
    "COORDINATE_OVERLAP",
    "CHECKSUM",
)
_OBJECT_TYPES = ("Gene", "Transcript", "Translation")
_OBJECT_STATUS = ("KNOWN", "NOVEL", "PUTATIVE")

#: each external database has a "home" reference type: GO terms come in as
#: DEPENDENT references, RefSeq via sequence matching, and so on.  This is
#: the fragment/value correlation that makes pattern mining pay off when
#: xrefH is fragmented by info_type (Exp-4): a mined pattern's tuples sit
#: mostly at one site, so its coordinator receives little.
_HOME_INFO_TYPE = {
    db: _INFO_TYPES[rank % len(_INFO_TYPES)]
    for rank, db in enumerate(_DB_NAMES)
}
_HOME_AFFINITY = 0.85  # probability a record's db comes from its home type


def priority_of(organism: str, db_name: str) -> int:
    """Ground truth: (organism, db_name) determines the priority."""
    return (len(organism) * 7 + _DB_NAMES.index(db_name) * 13) % 50


def object_type_of(db_name: str) -> str:
    """Ground-truth dominant object type of an external database."""
    return _OBJECT_TYPES[_DB_NAMES.index(db_name) % len(_OBJECT_TYPES)]


def generate_xref(
    n_tuples: int,
    organisms: tuple[str, ...] = ORGANISMS_XREF8,
    seed: int = 11,
    error_rate: float = 0.015,
) -> Relation:
    """Generate an XREF instance with injected CFD violations."""
    rng = random.Random(seed)
    db_weights = [1.0 / (rank + 1) for rank in range(len(_DB_NAMES))]
    info_weights = [1.0 / (rank + 1) for rank in range(len(_INFO_TYPES))]
    home_dbs = {
        info: [db for db in _DB_NAMES if _HOME_INFO_TYPE[db] == info]
        for info in _INFO_TYPES
    }
    rows = []
    for i in range(n_tuples):
        organism = rng.choice(organisms)
        (info_type,) = rng.choices(_INFO_TYPES, weights=info_weights)
        at_home = home_dbs[info_type]
        if at_home and rng.random() < _HOME_AFFINITY:
            db_name = rng.choice(at_home)
        else:
            (db_name,) = rng.choices(_DB_NAMES, weights=db_weights)
        object_type = object_type_of(db_name)
        priority = priority_of(organism, db_name)
        if rng.random() < error_rate:
            priority = (priority + 1 + rng.randrange(3)) % 50
        if rng.random() < error_rate:
            object_type = rng.choice(_OBJECT_TYPES)
        rows.append(
            (
                i,
                organism,
                object_type,
                rng.choice(_OBJECT_STATUS),
                db_name,
                f"rel{rng.randrange(40, 60)}",
                info_type,
                f"note{i % 17}",
                f"{db_name[:2].upper()}{i:08d}",
                f"label{i % 997}",
                rng.randrange(1, 5),
                f"cross-reference {i}",
                rng.randrange(0, 6),
                f"ENSG{i % 20000:011d}",
                f"ENST{i % 30000:011d}",
                priority,
            )
        )
    return Relation(XREF_SCHEMA, rows, copy=False)


def xref_priority_cfd(
    organisms: tuple[str, ...] = ORGANISMS_XREF8, n_patterns: int = 11
) -> CFD:
    """The representative XREF CFD: 5 attributes, 11 pattern tuples.

    ``([organism, db_name, object_type, info_type] → [priority])`` with one
    pattern per frequent ``(organism, db_name)`` combination.
    """
    combos = [
        (organism, db)
        for db in _DB_NAMES
        for organism in organisms
    ]
    if not 1 <= n_patterns <= len(combos):
        raise ValueError(f"n_patterns must be in [1, {len(combos)}]")
    tableau = [
        PatternTuple((organism, db, WILDCARD, WILDCARD), (WILDCARD,))
        for organism, db in combos[:n_patterns]
    ]
    return CFD(
        ["organism", "db_name", "object_type", "info_type"],
        ["priority"],
        tableau,
        name=f"xref_priority[{n_patterns}]",
    )


def xref_object_type_cfd(
    organisms: tuple[str, ...] = ORGANISMS_XREF8, n_patterns: int = 26
) -> CFD:
    """The second XREF CFD: 3 attributes, 26 patterns, LHS ⊆ the first's."""
    combos = [
        (organism, db)
        for db in _DB_NAMES
        for organism in organisms
    ]
    if not 1 <= n_patterns <= len(combos):
        raise ValueError(f"n_patterns must be in [1, {len(combos)}]")
    tableau = [
        PatternTuple((organism, db), (WILDCARD,))
        for organism, db in combos[:n_patterns]
    ]
    return CFD(
        ["organism", "db_name"],
        ["object_type"],
        tableau,
        name=f"xref_object_type[{n_patterns}]",
    )


def xref_overlapping_cfds(
    organisms: tuple[str, ...] = ORGANISMS_XREF8,
) -> list[CFD]:
    """The pair of overlapping CFDs used by Exp-5 on xref8."""
    return [
        xref_priority_cfd(organisms, n_patterns=11),
        xref_object_type_cfd(organisms, n_patterns=26),
    ]


def xref_mining_fd() -> CFD:
    """The FD of Exp-4 (xrefH): an all-wildcard LHS for mining to refine.

    Deliberately does not mention ``info_type`` (the fragmentation
    attribute): shipment reduction then hinges on the mined patterns'
    *correlation* with the fragments, exactly the effect Fig. 3(e) shows.
    """
    return CFD(
        ["db_name", "object_type"],
        ["priority"],
        name="xrefh_fd",
    )


def n_info_types() -> int:
    """Number of reference types (xrefH is fragmented by ``info_type``)."""
    return len(_INFO_TYPES)
