"""A TPC-H-shaped multi-table violation workload with exact ground truth.

The 8-table TPC-H schema (region, nation, supplier, customer, part,
partsupp, orders, lineitem) generated clean-by-construction at a scale
factor, with per-table CFD families and **seeded violation injection at a
controlled ratio** — the ``build → inject → check`` pattern of the
TupleMeasure-style artifacts ROADMAP item 2 calls for.  This is the first
multi-table scenario tier and the natural workload for the ``sql`` engine
(each table loads once into its database handle; every engine must agree
with the manifest).

The generator's contract is an *exact* manifest, not a statistical one:

* data is clean by construction — every CFD family holds on the freshly
  built tables (functional maps like ``n_regionkey → n_region`` are
  applied, never sampled independently);
* injection corrupts the RHS of previously-clean tuples with fresh values
  that cannot collide with the domain (string corruptions carry a unique
  ``~bad{k}`` suffix, integer corruptions start at 99000), so each
  corruption creates exactly the violations it accounts for;
* for a *variable* family, each injection picks a distinct X-group with at
  least two members and corrupts one member: exactly one ``Vioπ`` entry
  per chosen group, and every group member becomes a violating tuple;
* for a *constant* family, each injection corrupts a distinct matching
  row: the expected ``Vioπ`` count is the number of distinct X projections
  among the corrupted rows (patterns sharing an X value merge, as in the
  paper's ``Vioπ`` semantics), and each corrupted row is one violating
  tuple.

``tests/test_datagen_tpch.py`` asserts the detected counts equal the
manifest across all four engines, seeds and scale factors.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from ..core import CFD, PatternTuple, normalize, tuple_matches
from ..relational import Relation, Schema, save_csv

#: the 8 TPC-H tables, in population order
TPCH_TABLES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: TPC-H cardinalities at SF 1 (region and nation are fixed-size)
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: floors so tiny scale factors still exercise every family
_MIN_ROWS = {
    "supplier": 10,
    "customer": 20,
    "part": 20,
    "partsupp": 40,
    "orders": 30,
    "lineitem": 60,
}

TPCH_SCHEMAS = {
    "region": Schema(
        "region", ("r_regionkey", "r_name", "r_comment"), key=("r_regionkey",)
    ),
    "nation": Schema(
        "nation",
        ("n_nationkey", "n_name", "n_regionkey", "n_region"),
        key=("n_nationkey",),
    ),
    "supplier": Schema(
        "supplier",
        ("s_suppkey", "s_name", "s_nationkey", "s_nation", "s_acctbal"),
        key=("s_suppkey",),
    ),
    "customer": Schema(
        "customer",
        ("c_custkey", "c_name", "c_nationkey", "c_mktsegment", "c_segmentcode"),
        key=("c_custkey",),
    ),
    "part": Schema(
        "part",
        ("p_partkey", "p_name", "p_brand", "p_mfgr", "p_type"),
        key=("p_partkey",),
    ),
    "partsupp": Schema(
        "partsupp",
        ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_suppnation"),
        key=("ps_partkey", "ps_suppkey"),
    ),
    "orders": Schema(
        "orders",
        (
            "o_orderkey",
            "o_custkey",
            "o_orderstatus",
            "o_statusdesc",
            "o_orderpriority",
            "o_shippriority",
        ),
        key=("o_orderkey",),
    ),
    "lineitem": Schema(
        "lineitem",
        (
            "l_orderkey",
            "l_linenumber",
            "l_shipmode",
            "l_shipcode",
            "l_returnflag",
            "l_returndesc",
        ),
        key=("l_orderkey", "l_linenumber"),
    ),
}

_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
_SHIPMODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
_STATUSES = (("F", "finished"), ("O", "open"), ("P", "pending"))
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_RETURNFLAGS = (("A", "accepted"), ("N", "none"), ("R", "returned"))
_TYPES = ("ECONOMY", "STANDARD", "PROMO", "SMALL", "LARGE")


def _nation_name(nationkey: int) -> str:
    return f"nation_{nationkey:02d}"


def _brand(index: int) -> str:
    return f"Brand#{index // 5 + 1}{index % 5 + 1}"


def _mfgr(index: int) -> str:
    return f"Manufacturer#{index // 5 + 1}"


def tpch_rows(scale_factor: float) -> dict[str, int]:
    """Per-table row counts at a scale factor (with small-SF floors)."""
    counts = {"region": 5, "nation": 25}
    for table, base in _BASE_ROWS.items():
        if table in counts:
            continue
        counts[table] = max(_MIN_ROWS[table], int(base * scale_factor))
    return counts


def build_tpch(scale_factor: float = 0.01, seed: int = 7) -> dict[str, Relation]:
    """The 8 tables, clean by construction, deterministic given the seed."""
    rng = random.Random(seed)
    counts = tpch_rows(scale_factor)

    region = [
        (i, name, f"comment about {name.lower()}")
        for i, name in enumerate(_REGIONS)
    ]
    nation = [
        (i, _nation_name(i), i % 5, _REGIONS[i % 5]) for i in range(25)
    ]
    supplier = [
        (
            i + 1,
            f"Supplier#{i + 1:06d}",
            i % 25,
            _nation_name(i % 25),
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for i in range(counts["supplier"])
    ]
    customer = []
    for i in range(counts["customer"]):
        segment = rng.randrange(len(_SEGMENTS))
        customer.append(
            (
                i + 1,
                f"Customer#{i + 1:06d}",
                rng.randrange(25),
                _SEGMENTS[segment],
                f"SEG-{segment}",
            )
        )
    part = []
    for i in range(counts["part"]):
        brand = rng.randrange(25)
        part.append(
            (
                i + 1,
                f"part_{i + 1}",
                _brand(brand),
                _mfgr(brand),
                f"{rng.choice(_TYPES)} {rng.choice(('BRASS', 'STEEL', 'TIN'))}",
            )
        )
    n_part, n_supp = counts["part"], counts["supplier"]
    partsupp = []
    for j in range(counts["partsupp"]):
        partkey = j % n_part + 1
        suppkey = (j % n_part + j // n_part) % n_supp + 1
        partsupp.append(
            (
                partkey,
                suppkey,
                rng.randrange(1, 10_000),
                _nation_name((suppkey - 1) % 25),
            )
        )
    orders = []
    for i in range(counts["orders"]):
        status, description = rng.choice(_STATUSES)
        priority = rng.choice(_PRIORITIES)
        orders.append(
            (
                i + 1,
                rng.randrange(1, counts["customer"] + 1),
                status,
                description,
                priority,
                1 if priority == "1-URGENT" else 0,
            )
        )
    n_orders = counts["orders"]
    lineitem = []
    for j in range(counts["lineitem"]):
        shipmode = rng.randrange(len(_SHIPMODES))
        flag, description = rng.choice(_RETURNFLAGS)
        lineitem.append(
            (
                j % n_orders + 1,
                j // n_orders + 1,
                _SHIPMODES[shipmode],
                f"SM{shipmode}",
                flag,
                description,
            )
        )

    bodies = {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "customer": customer,
        "part": part,
        "partsupp": partsupp,
        "orders": orders,
        "lineitem": lineitem,
    }
    return {
        table: Relation(TPCH_SCHEMAS[table], bodies[table], copy=False)
        for table in TPCH_TABLES
    }


def tpch_cfds() -> dict[str, list[CFD]]:
    """Per-table CFD families (all hold on freshly built tables).

    Families sharing a table use disjoint attribute sets, so injections
    never interact and the manifest counts stay exact per family.
    """

    def fd(lhs, rhs, name):
        return CFD(lhs, rhs, name=name)

    region_tableau = [
        PatternTuple((name,), (key,)) for key, name in enumerate(_REGIONS)
    ]
    orders_urgent = CFD(
        ("o_orderpriority",),
        ("o_shippriority",),
        [PatternTuple(("1-URGENT",), (1,))],
        name="orders_urgent_priority",
    )
    lineitem_return = CFD(
        ("l_returnflag",),
        ("l_returndesc",),
        [PatternTuple(("N",), ("none",))],
        name="lineitem_return_none",
    )
    return {
        "region": [
            CFD(
                ("r_name",),
                ("r_regionkey",),
                region_tableau,
                name="region_name_key",
            )
        ],
        "nation": [fd(("n_regionkey",), ("n_region",), "nation_region")],
        "supplier": [fd(("s_nationkey",), ("s_nation",), "supplier_nation")],
        "customer": [
            fd(("c_mktsegment",), ("c_segmentcode",), "customer_segment")
        ],
        "part": [fd(("p_brand",), ("p_mfgr",), "part_brand_mfgr")],
        "partsupp": [
            fd(("ps_suppkey",), ("ps_suppnation",), "partsupp_supplier_nation")
        ],
        "orders": [
            fd(("o_orderstatus",), ("o_statusdesc",), "orders_status_desc"),
            orders_urgent,
        ],
        "lineitem": [
            fd(("l_shipmode",), ("l_shipcode",), "lineitem_shipmode_code"),
            lineitem_return,
        ],
    }


def _corrupt(value: object, counter: int) -> object:
    """A fresh value guaranteed outside the clean domain."""
    if isinstance(value, str):
        return f"{value}~bad{counter}"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"cannot corrupt {value!r}")
    return 99_000 + counter


def _inject_variable(rows, schema, cfd, ratio, rng, counter):
    """Corrupt one member each of ``ratio`` of the eligible X-groups."""
    normalized = normalize(cfd)
    (variable,) = normalized.variables
    lhs_pos = schema.positions(variable.lhs)
    rhs_attr = variable.rhs[0]
    rhs_pos = schema.position(rhs_attr)

    groups: dict[tuple, list[int]] = {}
    for index, row in enumerate(rows):
        x = tuple(row[p] for p in lhs_pos)
        if variable.matches_some_pattern(x):
            groups.setdefault(x, []).append(index)
    eligible = sorted(x for x, members in groups.items() if len(members) >= 2)
    n_inject = min(len(eligible), max(1, round(ratio * len(eligible))))
    chosen = rng.sample(eligible, n_inject) if n_inject else []

    violating_tuples = 0
    for x in chosen:
        members = groups[x]
        victim = rng.choice(members)
        row = list(rows[victim])
        row[rhs_pos] = _corrupt(row[rhs_pos], next(counter))
        rows[victim] = tuple(row)
        violating_tuples += len(members)
    return {
        "kind": "variable",
        "injected_rows": len(chosen),
        "expected_violations": len(chosen),
        "expected_violating_tuples": violating_tuples,
    }


def _inject_constant(rows, schema, cfd, ratio, rng, counter):
    """Corrupt ``ratio`` of the rows matching some constant pattern."""
    normalized = normalize(cfd)
    lhs_pos = schema.positions(cfd.lhs)
    eligible: dict[int, object] = {}  # row index -> the matched form
    for form in normalized.constants:
        cond_pos = schema.positions(form.lhs)
        rhs_pos = schema.position(form.rhs_attr)
        for index, row in enumerate(rows):
            if index in eligible:
                continue
            values = tuple(row[p] for p in cond_pos)
            if not tuple_matches(values, form.values):
                continue  # LHS does not match this pattern
            if row[rhs_pos] == form.rhs_value:
                eligible[index] = form
    indices = sorted(eligible)
    n_inject = min(len(indices), max(1, round(ratio * len(indices)))) if indices else 0
    chosen = rng.sample(indices, n_inject) if n_inject else []

    x_values = set()
    for index in chosen:
        form = eligible[index]
        rhs_pos = schema.position(form.rhs_attr)
        row = list(rows[index])
        row[rhs_pos] = _corrupt(row[rhs_pos], next(counter))
        rows[index] = tuple(row)
        x_values.add(tuple(rows[index][p] for p in lhs_pos))
    return {
        "kind": "constant",
        "injected_rows": len(chosen),
        "expected_violations": len(x_values),
        "expected_violating_tuples": len(chosen),
    }


def inject_violations(
    tables: dict[str, Relation],
    ratio: float = 0.02,
    seed: int = 7,
    families: dict[str, list[CFD]] | None = None,
) -> tuple[dict[str, Relation], dict]:
    """Seeded injection at a controlled ratio, with an exact manifest.

    Returns ``(dirty_tables, manifest)``; the input tables are untouched.
    The manifest records, per table and CFD family, the injected row count
    and the exact expected ``Vioπ`` and violating-tuple counts — detection
    with any engine must reproduce them (``tests/test_datagen_tpch.py``).
    """
    if families is None:
        families = tpch_cfds()
    dirty: dict[str, Relation] = {}
    manifest: dict = {
        "seed": seed,
        "ratio": ratio,
        "tables": {},
    }
    for table in TPCH_TABLES:
        relation = tables[table]
        schema = relation.schema
        rows = list(relation.rows)
        entry: dict = {"rows": len(rows), "families": {}}
        counter = iter(range(10**9))
        for cfd in families.get(table, ()):
            rng = random.Random(f"{seed}:{table}:{cfd.name}")
            normalized = normalize(cfd)
            if normalized.variables:
                stats = _inject_variable(
                    rows, schema, cfd, ratio, rng, counter
                )
            else:
                stats = _inject_constant(rows, schema, cfd, ratio, rng, counter)
            entry["families"][cfd.name] = stats
        dirty[table] = Relation(schema, rows, copy=False)
        manifest["tables"][table] = entry
    return dirty, manifest


def generate_tpch(
    scale_factor: float = 0.01, seed: int = 7, ratio: float = 0.02
) -> tuple[dict[str, Relation], dict]:
    """``build_tpch`` + ``inject_violations`` in one call."""
    tables = build_tpch(scale_factor, seed)
    dirty, manifest = inject_violations(tables, ratio, seed)
    manifest["scale_factor"] = scale_factor
    return dirty, manifest


def write_tpch(
    out_dir: str | Path,
    scale_factor: float = 0.01,
    seed: int = 7,
    ratio: float = 0.02,
) -> dict:
    """Write ``<table>.csv`` per table plus ``manifest.json``; returns the
    manifest (the ``repro datagen tpch`` CLI path)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tables, manifest = generate_tpch(scale_factor, seed, ratio)
    for name, relation in tables.items():
        save_csv(relation, out / f"{name}.csv")
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest
