"""The CUST workload: synthetic sales records (Section VI, datasets cust8/16).

The paper populated a CUST relation — address attributes as in the running
EMP example plus order attributes (item title, price, quantity) — from
web-scraped seeds, at 800K (``cust8``) and 1.6M (``cust16``) tuples.  This
generator reproduces the *structure* the experiments rely on:

* functional ground truth: ``(CC, AC)`` determines ``city`` and
  ``(CC, AC, zip)`` determines ``street`` — with errors injected at a
  configurable rate so the CFDs have violations to find;
* enough distinct ``(CC, AC)`` combinations to build tableaux of up to 300
  pattern tuples (Exp-3 sweeps ``|Tp|`` to 255);
* value skew, so fragments differ in their per-pattern statistics (which is
  what the coordinator-selection heuristics exploit).

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random

from ..core import CFD, PatternTuple, WILDCARD
from ..relational import Relation, Schema

CUST_ATTRIBUTES = (
    "id",
    "name",
    "CC",
    "AC",
    "phn",
    "street",
    "city",
    "zip",
    "item",
    "price",
    "quantity",
)

CUST_SCHEMA = Schema("CUST", CUST_ATTRIBUTES, key=("id",))

#: country codes, weighted toward a few markets (skew drives the statistics)
_COUNTRY_CODES = (44, 1, 31, 49, 33, 34)
_CC_WEIGHTS = (30, 25, 15, 12, 10, 8)
_ACS_PER_CC = 60  # 360 (CC, AC) pairs in total
_ZIPS_PER_AC = 4
_ITEMS = tuple(f"item{i:02d}" for i in range(40))


def _area_codes(cc: int) -> list[int]:
    return [cc * 1000 + i for i in range(_ACS_PER_CC)]


def city_of(cc: int, ac: int) -> str:
    """The ground-truth city of an area code."""
    return f"city_{cc}_{ac % 23}"


def street_of(cc: int, zip_code: str) -> str:
    """The ground-truth street of a zip code."""
    return f"street_{cc}_{zip_code}"


def zip_of(cc: int, ac: int, k: int) -> str:
    return f"Z{cc}_{ac}_{k}"


def all_cc_ac_pairs() -> list[tuple[int, int]]:
    """Every (CC, AC) combination, most frequent countries first."""
    return [(cc, ac) for cc in _COUNTRY_CODES for ac in _area_codes(cc)]


def generate_cust(
    n_tuples: int,
    seed: int = 7,
    error_rate: float = 0.02,
) -> Relation:
    """Generate a CUST instance with injected CFD violations.

    ``error_rate`` is the probability that a tuple gets a wrong ``street``
    and, independently, a wrong ``city`` — creating violations of the
    street and city CFDs below.
    """
    rng = random.Random(seed)
    rows = []
    for i in range(n_tuples):
        (cc,) = rng.choices(_COUNTRY_CODES, weights=_CC_WEIGHTS)
        # area codes are Zipf-flavoured within a country
        ac_rank = min(
            int(rng.paretovariate(1.2)) - 1, _ACS_PER_CC - 1
        )
        ac = cc * 1000 + ac_rank
        zip_code = zip_of(cc, ac, rng.randrange(_ZIPS_PER_AC))
        street = street_of(cc, zip_code)
        city = city_of(cc, ac)
        if rng.random() < error_rate:
            street = f"{street}~err{rng.randrange(2)}"
        if rng.random() < error_rate:
            city = f"{city}~err{rng.randrange(2)}"
        rows.append(
            (
                i,
                f"cust{i}",
                cc,
                ac,
                5_000_000 + i,
                street,
                city,
                zip_code,
                rng.choice(_ITEMS),
                round(rng.uniform(1.0, 500.0), 2),
                rng.randrange(1, 9),
            )
        )
    return Relation(CUST_SCHEMA, rows, copy=False)


def cust_street_cfd(n_patterns: int = 255) -> CFD:
    """The representative single CFD of Exp-1/2/3: 4 attributes, ``|Tp|``
    pattern tuples.

    ``([CC, AC, zip] → [street])`` with one pattern per (CC, AC) pair:
    within a country and area code, zip determines street.
    """
    pairs = all_cc_ac_pairs()
    if not 1 <= n_patterns <= len(pairs):
        raise ValueError(
            f"n_patterns must be in [1, {len(pairs)}], got {n_patterns}"
        )
    tableau = [
        PatternTuple((cc, ac, WILDCARD), (WILDCARD,))
        for cc, ac in pairs[:n_patterns]
    ]
    return CFD(
        ["CC", "AC", "zip"], ["street"], tableau, name=f"cust_street[{n_patterns}]"
    )


def cust_city_cfd(n_patterns: int = 26) -> CFD:
    """The second, overlapping CFD of Exp-5/6: ``([CC, AC] → [city])``.

    Its LHS is a subset of :func:`cust_street_cfd`'s LHS, which is exactly
    the CLUSTDETECT merge condition.
    """
    pairs = all_cc_ac_pairs()
    if not 1 <= n_patterns <= len(pairs):
        raise ValueError(
            f"n_patterns must be in [1, {len(pairs)}], got {n_patterns}"
        )
    tableau = [
        PatternTuple((cc, ac), (WILDCARD,)) for cc, ac in pairs[:n_patterns]
    ]
    return CFD(["CC", "AC"], ["city"], tableau, name=f"cust_city[{n_patterns}]")


def cust_overlapping_cfds(
    n_patterns_a: int = 255, n_patterns_b: int = 26
) -> list[CFD]:
    """The pair of overlapping CFDs used by the multi-CFD experiments."""
    return [cust_street_cfd(n_patterns_a), cust_city_cfd(n_patterns_b)]
