"""Hash indexes over relations.

The local DBMS of each simulated site evaluates the detection queries with
hash group-by; for repeated probing (key joins during vertical
reconstruction, semijoin filtering, repeated ``Vio`` lookups) a persistent
:class:`HashIndex` avoids rebuilding the hash table per query.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .columnar import column_store
from .relation import Relation
from .schema import SchemaError


class HashIndex:
    """An equality index on one or more attributes of a relation.

    Maps each distinct attribute-value combination to the matching rows.
    The index holds references to the relation's row tuples; it is a
    snapshot — relations are treated as immutable throughout the library.
    The bucketing is backed by the relation's cached columnar group index,
    so two indexes on the same attributes hash the rows only once.
    """

    __slots__ = ("relation", "attributes", "_buckets")

    def __init__(self, relation: Relation, attributes: Sequence[str]) -> None:
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("an index needs at least one attribute")
        self.relation = relation
        self.attributes = attributes
        relation.schema.positions(attributes)  # validates the attributes
        rows = relation.rows
        self._buckets = {
            key: [rows[i] for i in ids]
            for key, ids in column_store(relation).group_index(attributes).items()
        }

    def lookup(self, values: Sequence[object]) -> list[tuple]:
        """Rows whose indexed attributes equal ``values``."""
        return self._buckets.get(tuple(values), [])

    def contains(self, values: Sequence[object]) -> bool:
        return tuple(values) in self._buckets

    def distinct_keys(self) -> Iterator[tuple]:
        """The distinct indexed value combinations."""
        return iter(self._buckets)

    def group_sizes(self) -> dict[tuple, int]:
        """Key combination -> number of rows (the GROUP BY COUNT view)."""
        return {key: len(rows) for key, rows in self._buckets.items()}

    def semijoin(self, keys: Iterable[Sequence[object]]) -> Relation:
        """``relation ⋉ keys``: the rows whose indexed values are in ``keys``.

        The classical shipment reducer of distributed query processing
        ([25] in the paper): ship only the key list, return only matching
        rows.
        """
        rows: list[tuple] = []
        seen: set[tuple] = set()
        for key in keys:
            key = tuple(key)
            if key in seen:
                continue
            seen.add(key)
            rows.extend(self._buckets.get(key, ()))
        return Relation(self.relation.schema, rows, copy=False)

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.relation.schema.name!r} on "
            f"{list(self.attributes)}, {len(self._buckets)} keys)"
        )
