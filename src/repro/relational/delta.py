"""Delta relations: O(|ΔD|)-ish insert/delete over the immutable Relation.

Relations are immutable values — that contract is what lets every layer
above them cache encodings without invalidation.  Updates therefore do not
mutate: :meth:`Relation.insert` and :meth:`Relation.delete` (implemented
here) return a **new** relation that *remembers its lineage* — the parent
version plus the inserted/deleted rows — and shares the parent's columnar
state structurally instead of re-encoding from scratch:

* **Inserts** extend each of the parent's dictionary-encoded columns by
  *appending*: existing values keep their codes (one ``code_of`` probe per
  new cell), new values get the next code exactly as the first-seen
  encoder would assign it, so a derived column is bit-identical to a fresh
  encode of the child's rows.  Composite :class:`KeyColumn` views extend
  the same way through a rebuilt combo index (O(groups), not O(rows)).
* **Deletes** keep a **tombstone mask** over the parent's rows.  Column
  codes are filtered through the mask (one vectorized gather when numpy is
  active); the value dictionaries are shared as-is — a value whose last
  row died stays in the dictionary as a harmless stale entry (codes never
  reference it, and every consumer treats ``values`` as decode-only).
  Composite key columns *are* compacted (surviving groups renumbered in
  first-seen order) because group ordinals feed group indexes and σ
  partitions, where phantom empty groups would be observable.
* **Cluster codes stay stable**: a derived store built against a
  :class:`~repro.relational.shareddict.SharedDictionary` interns new
  values into the cluster's append-only global tables, so a code obtained
  before an update decodes to the same value after it — the invariant the
  incremental distributed detectors (:mod:`repro.detect.incremental`)
  rely on to ship only coded deltas.

Derivation is **lazy**: the child's :class:`DerivedColumnStore` derives a
column only when (and if) someone asks for it, and only when the parent
(or an ancestor along the delta chain) already built that column;
otherwise it falls back to a plain fresh build.  Applying an update
therefore costs O(|ΔD|) plus one pointer-level copy of the row list —
re-encoding, re-hashing and re-grouping are only ever paid for the
columns a consumer actually touches.

``REPRO_INCREMENTAL=0`` disables structural sharing (every insert/delete
still returns a correct delta relation, but with cold caches) — the
kill-switch mirror of ``REPRO_NUMPY``.
"""

from __future__ import annotations

import operator
import os
from typing import Callable, Iterable, Sequence

from .columnar import Column, ColumnStore, KeyColumn, numpy_enabled
from .relation import Relation
from .schema import SchemaError

try:  # optional, exactly like the columnar array backend
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None


def incremental_enabled() -> bool:
    """Whether delta relations derive their stores structurally.

    ``REPRO_INCREMENTAL=0`` opts out (children rebuild caches from
    scratch); any other value — including unset — leaves sharing on.
    """
    return os.environ.get("REPRO_INCREMENTAL", "1") != "0"


class DeltaRelation(Relation):
    """A relation version produced by :meth:`Relation.insert` / ``delete``.

    Behaves exactly like a plain :class:`Relation` (every operator and
    engine works unchanged); additionally carries its **provenance**:

    ``delta_parent``
        the version this one was derived from;
    ``delta_inserted`` / ``delta_deleted``
        the rows added / removed by this step (exactly one of the two is
        non-empty — each update step is a pure insert or a pure delete);
    ``delta_doomed``
        for deletes, the tombstone mask over the parent's rows (``True``
        = deleted), which derived stores filter codes through.

    :class:`~repro.core.incremental.IncrementalDetector` consumes the
    provenance to re-fold only the delta.
    """

    __slots__ = ("delta_parent", "delta_inserted", "delta_deleted", "delta_doomed")

    def __init__(
        self,
        parent: Relation,
        rows: list,
        inserted: tuple = (),
        deleted: tuple = (),
        doomed: list | None = None,
    ) -> None:
        # rows is a freshly built list this relation owns; assigning it
        # directly (instead of Relation.__init__'s defensive list()) keeps
        # the per-update cost at one row-list construction, not two
        self.schema = parent.schema
        self.rows = rows
        self.delta_parent = parent
        self.delta_inserted = inserted
        self.delta_deleted = deleted
        self.delta_doomed = doomed
        if incremental_enabled():
            parent_store = getattr(parent, "_colstore", None)
            if parent_store is not None:
                self._colstore = DerivedColumnStore(
                    self, parent_store, inserted=inserted, doomed=doomed
                )


def insert_rows(parent: Relation, rows: Iterable[Sequence[object]]) -> Relation:
    """``D ∪ ΔD⁺``: a new version with ``rows`` appended (validated).

    An empty batch is a no-op and returns ``parent`` itself — no
    :class:`DeltaRelation`, no row-list copy, nothing for a session to
    fold.
    """
    width = len(parent.schema)
    inserted = []
    for row in rows:
        row = tuple(row)
        if len(row) != width:
            raise SchemaError(
                f"row of width {len(row)} does not fit schema "
                f"{parent.schema.name!r} of width {width}: {row!r}"
            )
        inserted.append(row)
    if not inserted:
        return parent
    return DeltaRelation(
        parent, parent.rows + inserted, inserted=tuple(inserted)
    )


def delete_rows(
    parent: Relation,
    keys_or_predicate: Iterable | Callable,
) -> Relation:
    """``D ∖ ΔD⁻``: a new version with the matching rows tombstoned.

    ``keys_or_predicate`` is either a predicate — any callable of
    ``(row, schema)``, including :class:`~repro.relational.predicate.Predicate`
    — marking the rows to delete, or an iterable of key values: key-tuple
    projections onto ``schema.key`` (bare values accepted for
    single-attribute keys).  Every row carrying a listed key is removed
    (bag semantics: duplicates go together).  An *empty* key batch is a
    no-op and returns ``parent`` itself — no version, no row-list copy.
    """
    from itertools import compress

    schema = parent.schema
    rows = parent.rows
    evaluate = getattr(keys_or_predicate, "evaluate", None)
    if evaluate is None and callable(keys_or_predicate):
        evaluate = keys_or_predicate
    if evaluate is not None:
        doomed_mask = [bool(evaluate(row, schema)) for row in rows]
    else:
        key_pos = schema.key_positions()
        doomed = set()
        for key in keys_or_predicate:
            if not isinstance(key, tuple):
                key = (key,)
            if len(key) != len(key_pos):
                raise SchemaError(
                    f"key {key!r} does not fit key attributes {schema.key}"
                )
            doomed.add(key)
        if not doomed:
            return parent
        doomed_mask = _doomed_mask_for_keys(parent, key_pos, doomed)
    if isinstance(doomed_mask, _np.ndarray if _np is not None else ()):
        # vectorized path: C-speed compress over the raw mask bytes
        deleted = tuple(compress(rows, doomed_mask.tobytes()))
        if not deleted:
            return DeltaRelation(parent, list(rows))
        kept_rows = list(compress(rows, (~doomed_mask).tobytes()))
        return DeltaRelation(
            parent,
            kept_rows,
            deleted=deleted,
            doomed=bytearray(doomed_mask.tobytes()),
        )
    deleted = tuple(compress(rows, doomed_mask))
    if not deleted:
        # nothing matched: an empty delta, no mask to filter through
        return DeltaRelation(parent, list(rows))
    kept_rows = list(compress(rows, map(operator.not_, doomed_mask)))
    return DeltaRelation(parent, kept_rows, deleted=deleted, doomed=doomed_mask)


def _doomed_mask_for_keys(parent: Relation, key_pos, doomed: set):
    """The tombstone mask (``True`` = deleted) of a delete-by-keys.

    Three tiers, fastest available wins: an existing key group index
    (O(|ΔD|) hash probes into a byte fill); the incrementally maintained
    key *array* (:func:`_key_array` — one vectorized ``np.isin``); and the
    scan fallback, run entirely through ``itemgetter`` /
    ``set.__contains__`` maps (bare values, not tuples, for
    single-attribute keys), so even that tier costs C-level per-row work.
    """
    rows = parent.rows
    store = getattr(parent, "_colstore", None)
    index = (
        store._group_indexes.get(parent.schema.key)
        if store is not None
        else None
    )
    if index is not None:
        mask = bytearray(len(rows))
        for key in doomed:
            for i in index.get(key, ()):
                mask[i] = 1
        return mask
    if len(key_pos) == 1:
        marked = {key[0] for key in doomed}
        keys_arr = _key_array(parent)
        if keys_arr is not None:
            mask = _isin_mask(keys_arr, marked)
            if mask is not None:
                return mask
        projected = map(operator.itemgetter(key_pos[0]), rows)
    else:
        marked = doomed
        projected = map(operator.itemgetter(*key_pos), rows)
    return list(map(marked.__contains__, projected))


def _isin_mask(keys_arr, marked: set):
    """``np.isin`` against the key array, or ``None`` when unsafe.

    Unsafe means the needles cannot be represented exactly in the array's
    dtype family — mixed kinds, NaNs (whose set semantics differ from
    array equality), overflowing ints — in which case the caller falls
    back to the set scan, which is always exact.
    """
    try:
        needles = _np.asarray(list(marked))
    except (OverflowError, ValueError):
        return None
    if needles.ndim != 1:
        return None
    kinds = (keys_arr.dtype.kind, needles.dtype.kind)
    if all(kind in "biu" for kind in kinds):
        pass
    elif kinds == ("U", "U"):
        pass
    elif all(kind in "biuf" for kind in kinds):
        floats = [a for a in (keys_arr, needles) if a.dtype.kind == "f"]
        if any(_np.isnan(a).any() for a in floats):
            return None
    else:
        return None
    return _np.isin(keys_arr, needles)


def _key_array(relation: Relation):
    """The (cached) single-attribute key column as a numpy array.

    Maintained *incrementally* along the delta chain: a child filters its
    parent's array through the tombstone mask or appends the inserted
    keys — O(|ΔD|) numpy work — so repeated delete-by-key batches never
    re-project the whole relation.  ``None`` (memoized as ``False`` in the
    store's scratch) when numpy is off, the key is composite, or the key
    values do not round-trip through an array dtype exactly.
    """
    if _np is None or not numpy_enabled():
        return None
    schema = relation.schema
    if len(schema.key) != 1:
        return None
    from .columnar import column_store

    store = column_store(relation)
    cached = store.scratch.get("delta_key_array")
    if cached is not None:
        return cached if cached is not False else None
    arr = None
    parent = getattr(relation, "delta_parent", None)
    if parent is not None and incremental_enabled():
        parent_arr = _key_array(parent)
        if parent_arr is not None:
            doomed = relation.delta_doomed
            if doomed is not None:
                arr = parent_arr[~_np.asarray(doomed, dtype=bool)]
            elif relation.delta_inserted:
                position = schema.key_positions()[0]
                fresh = [row[position] for row in relation.delta_inserted]
                try:
                    fresh_arr = _np.asarray(fresh)
                except (OverflowError, ValueError):
                    fresh_arr = None
                if (
                    fresh_arr is not None
                    and fresh_arr.ndim == 1
                    and _compatible_key_kinds(parent_arr, fresh_arr)
                ):
                    arr = _np.concatenate([parent_arr, fresh_arr])
            else:
                arr = parent_arr
    if arr is None and parent is None:
        arr = _fresh_key_array(relation)
    store.scratch["delta_key_array"] = arr if arr is not None else False
    return arr


def _compatible_key_kinds(left, right) -> bool:
    kinds = (left.dtype.kind, right.dtype.kind)
    if all(kind in "biu" for kind in kinds):
        return True
    if kinds == ("U", "U"):
        return True
    if all(kind in "biuf" for kind in kinds):
        return not any(
            a.dtype.kind == "f" and _np.isnan(a).any() for a in (left, right)
        )
    return False


def prune_delta_history(relation: Relation | None) -> None:
    """Sever a consumed version's provenance so ancestors can be freed.

    Every delta version holds its parent alive — its full row list plus
    derived store — so a long-lived incremental session that never drops
    provenance grows without bound (one O(|D|) row list per absorbed
    batch).  Once a consumer has folded a version's delta (the
    incremental detectors call this after every ``update``), the history
    serves no further purpose: this materializes the incrementally
    maintained key array first (so later delete-by-key batches keep their
    vectorized fast path), then cuts ``delta_parent``, the provenance
    rows, and the derived store's parent link.

    Only prune versions you own: a severed relation can no longer be
    ``apply``-ed to another detector, and columnar views not derived
    before the cut rebuild from scratch (correct, just cold).
    ``None`` and plain relations pass through untouched.
    """
    if not isinstance(relation, DeltaRelation):
        return
    if relation.delta_parent is None:
        return
    _key_array(relation)
    relation.delta_parent = None
    relation.delta_inserted = ()
    relation.delta_deleted = ()
    relation.delta_doomed = None
    store = getattr(relation, "_colstore", None)
    if isinstance(store, DerivedColumnStore):
        store._parent_store = None
        store._inserted = ()
        store._doomed = None


def _fresh_key_array(relation: Relation):
    """Project and validate the key column from scratch (paid once)."""
    position = relation.schema.key_positions()[0]
    raw = list(map(operator.itemgetter(position), relation.rows))
    try:
        arr = _np.asarray(raw)
    except (OverflowError, ValueError):
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "biufU":
        return None
    if arr.dtype.kind == "f" and (
        _np.isnan(arr).any() or arr.tolist() != raw
    ):
        return None
    return arr


class DerivedColumnStore(ColumnStore):
    """A child version's column store, derived lazily from the parent's.

    Each ``column()`` / ``key_column()`` request first checks whether the
    parent (or any ancestor along the delta chain) already built that
    view; if so the child's view is *derived* — codes appended for
    inserts, filtered through the tombstone mask for deletes — instead of
    re-encoded from the rows.  Views no ancestor has are built fresh, so
    the store is always complete and always bit-equivalent (for inserts)
    or value-equivalent (for deletes, which share dictionaries with
    possibly-stale entries) to a from-scratch build.
    """

    __slots__ = ("_parent_store", "_inserted", "_doomed", "_survivors_np")

    def __init__(
        self,
        relation,
        parent_store: ColumnStore,
        inserted: tuple = (),
        doomed: list | None = None,
        shared=None,
    ) -> None:
        super().__init__(relation, shared=shared)
        self._parent_store = parent_store
        self._inserted = inserted
        self._doomed = doomed
        self._survivors_np = None

    # -- chain probing ---------------------------------------------------

    def _ancestor_has(self, cache_name: str, key) -> bool:
        """Whether some store along the parent chain already built ``key``.

        The chain may have been severed by :func:`prune_delta_history`
        (``_parent_store`` set to ``None``), in which case nothing is
        derivable and requests fall back to fresh builds.
        """
        store = self._parent_store
        while store is not None:
            if key in getattr(store, cache_name):
                return True
            store = (
                store._parent_store
                if isinstance(store, DerivedColumnStore)
                else None
            )
        return False

    def _survivor_mask_np(self):
        if self._survivors_np is None and numpy_enabled():
            self._survivors_np = ~_np.asarray(self._doomed, dtype=bool)
        return self._survivors_np

    # -- per-attribute columns -------------------------------------------

    def column(self, attribute: str) -> Column:
        cached = self._columns.get(attribute)
        if cached is not None:
            return cached
        if not self._ancestor_has("_columns", attribute):
            return super().column(attribute)
        # materialize the parent's view (recursively derived if need be)
        parent = self._parent_store.column(attribute)
        if self._doomed is not None:
            column = self._derive_column_delete(parent, attribute)
        else:
            column = self._derive_column_insert(parent, attribute)
        self._columns[attribute] = column
        return column

    def _derive_column_insert(self, parent: Column, attribute: str) -> Column:
        position = self.schema.position(attribute)
        codes = list(parent.codes)
        if self.shared is not None:
            # cluster-aware: new values intern into the global append-only
            # table, so existing codes stay stable across the cluster
            table = self.shared.column(attribute)
            intern = table.intern
            appended = [intern(row[position]) for row in self._inserted]
            codes.extend(appended)
            return Column(attribute, codes, table.values, table.code_of)
        values, code_of = parent.values, parent.code_of
        copied = False
        appended: list[int] = []
        get = code_of.get
        for row in self._inserted:
            value = row[position]
            code = get(value)
            if code is None:
                if not copied:
                    # copy-on-write: the parent's dictionaries stay frozen
                    values = list(values)
                    code_of = dict(code_of)
                    get = code_of.get
                    copied = True
                code = len(values)
                code_of[value] = code
                values.append(value)
            appended.append(code)
        codes.extend(appended)
        codes_np = None
        if parent._codes_np is not None and numpy_enabled():
            codes_np = _np.concatenate(
                [parent._codes_np, _np.asarray(appended, dtype=_np.int32)]
            )
        return Column(attribute, codes, values, code_of, codes_np)

    def _derive_column_delete(self, parent: Column, attribute: str) -> Column:
        codes_np = None
        # both the mask and the parent array must be live: codes_array()
        # returns an already-cached array even after REPRO_NUMPY=0, while
        # the mask builder respects the knob — guard on the mask
        mask = self._survivor_mask_np()
        if mask is not None:
            parent_arr = parent.codes_array()
            if parent_arr is not None:
                codes_np = parent_arr[mask]
                codes = codes_np.tolist()
        if codes_np is None:
            codes = [c for c, d in zip(parent.codes, self._doomed) if not d]
        # dictionaries are shared as-is: values whose last row died remain
        # as stale decode entries, which every consumer tolerates (codes
        # never reference them; constant-form pruning just prunes less)
        return Column(attribute, codes, parent.values, parent.code_of, codes_np)

    # -- composite key columns -------------------------------------------

    def key_column(self, attributes: Sequence[str]) -> KeyColumn:
        attributes = tuple(attributes)
        cached = self._key_columns.get(attributes)
        if cached is not None:
            return cached
        if len(attributes) < 2 or not self._ancestor_has(
            "_key_columns", attributes
        ):
            # empty/single-attribute keys reuse the (derived) column path;
            # unknown composites build fresh
            return super().key_column(attributes)
        parent = self._parent_store.key_column(attributes)
        if self._doomed is not None:
            key = self._derive_key_delete(parent, attributes)
        else:
            key = self._derive_key_insert(parent, attributes)
        self._key_columns[attributes] = key
        return key

    def _derive_key_insert(
        self, parent: KeyColumn, attributes: tuple[str, ...]
    ) -> KeyColumn:
        positions = self.schema.positions(attributes)
        # O(groups) combo index rebuild, then one probe per inserted row —
        # first-seen ordinals extend exactly as a fresh hash build would
        index = {combo: g for g, combo in enumerate(parent.values)}
        values = parent.values
        copied = False
        codes = list(parent.codes)
        get = index.get
        for row in self._inserted:
            combo = tuple(row[p] for p in positions)
            group = get(combo)
            if group is None:
                if not copied:
                    values = list(values)
                    copied = True
                group = len(values)
                index[combo] = group
                values.append(combo)
            codes.append(group)
        return KeyColumn(attributes, codes, values)

    def _derive_key_delete(
        self, parent: KeyColumn, attributes: tuple[str, ...]
    ) -> KeyColumn:
        # compact: renumber surviving groups in (child) first-seen order so
        # no phantom empty group survives into group indexes or σ scans
        remap = [-1] * parent.n_groups
        values: list[tuple] = []
        codes: list[int] = []
        append = codes.append
        parent_values = parent.values
        for code, flag in zip(parent.codes, self._doomed):
            if flag:
                continue
            group = remap[code]
            if group < 0:
                group = len(values)
                remap[code] = group
                values.append(parent_values[code])
            append(group)
        return KeyColumn(attributes, codes, values)
