"""Relational substrate: schemas, in-memory relations, predicates, CSV io.

This package is the single-site "DBMS" everything else builds on — the
paper assumes each site runs a local relational engine (MySQL in the
authors' testbed) capable of selection, projection, join and GROUP BY.
"""

from .predicate import (
    And,
    Atom,
    Eq,
    FalsePred,
    Ge,
    Gt,
    InSet,
    Le,
    Lt,
    Ne,
    Not,
    NotInSet,
    Or,
    Predicate,
    TruePred,
    compatible_with_bindings,
    satisfiable,
)
from .columnar import Column, ColumnStore, KeyColumn, column_store, numpy_enabled
from .csvio import infer_column_types, load_csv, save_csv
from .delta import (
    DeltaRelation,
    DerivedColumnStore,
    incremental_enabled,
    prune_delta_history,
)
from .index import HashIndex
from .relation import Relation
from .schema import Schema, SchemaError
from .shareddict import (
    SharedColumn,
    SharedComboDictionary,
    SharedDictionary,
    SharedPairDictionary,
    shared_dict_on,
)

__all__ = [
    "And",
    "Atom",
    "Eq",
    "FalsePred",
    "Ge",
    "Gt",
    "InSet",
    "Le",
    "Lt",
    "Ne",
    "Not",
    "NotInSet",
    "Or",
    "Predicate",
    "TruePred",
    "Relation",
    "HashIndex",
    "Column",
    "ColumnStore",
    "DeltaRelation",
    "DerivedColumnStore",
    "KeyColumn",
    "column_store",
    "incremental_enabled",
    "numpy_enabled",
    "prune_delta_history",
    "SharedColumn",
    "SharedComboDictionary",
    "SharedDictionary",
    "SharedPairDictionary",
    "shared_dict_on",
    "Schema",
    "SchemaError",
    "compatible_with_bindings",
    "satisfiable",
    "infer_column_types",
    "load_csv",
    "save_csv",
]
