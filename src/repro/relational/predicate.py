"""Boolean predicates over relation rows.

Horizontal fragments are defined by selection predicates ``F_i``
(``D_i = σ_{F_i}(D)``, Section II-B).  Besides evaluation, the detection
algorithms need one static-analysis primitive (Section IV-A): deciding
whether ``F_i ∧ F_φ`` is *satisfiable*, where ``F_φ`` is the conjunction of
``B = b`` atoms contributed by the constant entries of a pattern tuple.  When
it is not, no tuple of fragment ``D_i`` can match the pattern, so the
fragment can be skipped without shipping anything.

The satisfiability test is sound and conservative: it returns ``False`` only
when the conjunction is definitely unsatisfiable.  Predicates are first
pushed to negation normal form and expanded to DNF; each conjunct is then
checked attribute by attribute (equalities, disequalities, memberships and
order constraints).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from .schema import Schema


class Predicate:
    """Base class for row predicates; composable with ``&``, ``|``, ``~``."""

    def evaluate(self, row: Sequence[object], schema: Schema) -> bool:
        raise NotImplementedError

    def __call__(self, row: Sequence[object], schema: Schema) -> bool:
        return self.evaluate(row, schema)

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    # Negation-normal-form helpers; subclasses override.
    def negate(self) -> "Predicate":
        return Not(self)

    def dnf(self) -> list[list["Atom"]]:
        """Disjunctive normal form as a list of conjunctions of atoms."""
        raise NotImplementedError


class Atom(Predicate):
    """A single comparison on one attribute."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def dnf(self) -> list[list["Atom"]]:
        return [[self]]


def _try_order(op, left: object, right: object) -> bool:
    """Order comparison that treats incomparable values as non-matching."""
    try:
        return op(left, right)
    except TypeError:
        return False


class TruePred(Predicate):
    """Always true (the fragment predicate of an unrestricted fragment)."""

    def evaluate(self, row: Sequence[object], schema: Schema) -> bool:
        return True

    def negate(self) -> Predicate:
        return FalsePred()

    def dnf(self) -> list[list[Atom]]:
        return [[]]

    def __repr__(self) -> str:
        return "TRUE"


class FalsePred(Predicate):
    """Always false."""

    def evaluate(self, row: Sequence[object], schema: Schema) -> bool:
        return False

    def negate(self) -> Predicate:
        return TruePred()

    def dnf(self) -> list[list[Atom]]:
        return []

    def __repr__(self) -> str:
        return "FALSE"


class Eq(Atom):
    """``attribute = value``."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: object) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return row[schema.position(self.attribute)] == self.value

    def negate(self) -> Predicate:
        return Ne(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}={self.value!r}"


class Ne(Atom):
    """``attribute ≠ value``."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value: object) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return row[schema.position(self.attribute)] != self.value

    def negate(self) -> Predicate:
        return Eq(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}≠{self.value!r}"


class InSet(Atom):
    """``attribute ∈ values``."""

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[object]) -> None:
        super().__init__(attribute)
        self.values = frozenset(values)

    def evaluate(self, row, schema):
        return row[schema.position(self.attribute)] in self.values

    def negate(self) -> Predicate:
        return NotInSet(self.attribute, self.values)

    def __repr__(self) -> str:
        return f"{self.attribute}∈{sorted(map(repr, self.values))}"


class NotInSet(Atom):
    """``attribute ∉ values``."""

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[object]) -> None:
        super().__init__(attribute)
        self.values = frozenset(values)

    def evaluate(self, row, schema):
        return row[schema.position(self.attribute)] not in self.values

    def negate(self) -> Predicate:
        return InSet(self.attribute, self.values)

    def __repr__(self) -> str:
        return f"{self.attribute}∉{sorted(map(repr, self.values))}"


class Lt(Atom):
    """``attribute < value`` (strict upper bound)."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return _try_order(lambda a, b: a < b, row[schema.position(self.attribute)], self.value)

    def negate(self) -> Predicate:
        return Ge(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}<{self.value!r}"


class Le(Atom):
    """``attribute ≤ value``."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return _try_order(lambda a, b: a <= b, row[schema.position(self.attribute)], self.value)

    def negate(self) -> Predicate:
        return Gt(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}≤{self.value!r}"


class Gt(Atom):
    """``attribute > value`` (strict lower bound)."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return _try_order(lambda a, b: a > b, row[schema.position(self.attribute)], self.value)

    def negate(self) -> Predicate:
        return Le(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}>{self.value!r}"


class Ge(Atom):
    """``attribute ≥ value``."""

    __slots__ = ("value",)

    def __init__(self, attribute: str, value) -> None:
        super().__init__(attribute)
        self.value = value

    def evaluate(self, row, schema):
        return _try_order(lambda a, b: a >= b, row[schema.position(self.attribute)], self.value)

    def negate(self) -> Predicate:
        return Lt(self.attribute, self.value)

    def __repr__(self) -> str:
        return f"{self.attribute}≥{self.value!r}"


class And(Predicate):
    """Conjunction."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Predicate]) -> None:
        self.parts = tuple(parts)

    def evaluate(self, row, schema):
        return all(p.evaluate(row, schema) for p in self.parts)

    def negate(self) -> Predicate:
        return Or(p.negate() for p in self.parts)

    def dnf(self) -> list[list[Atom]]:
        product = itertools.product(*(p.dnf() for p in self.parts))
        return [[atom for conj in combo for atom in conj] for combo in product]

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Predicate]) -> None:
        self.parts = tuple(parts)

    def evaluate(self, row, schema):
        return any(p.evaluate(row, schema) for p in self.parts)

    def negate(self) -> Predicate:
        return And(p.negate() for p in self.parts)

    def dnf(self) -> list[list[Atom]]:
        return [conj for p in self.parts for conj in p.dnf()]

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation (pushed inward for analysis)."""

    __slots__ = ("part",)

    def __init__(self, part: Predicate) -> None:
        self.part = part

    def evaluate(self, row, schema):
        return not self.part.evaluate(row, schema)

    def negate(self) -> Predicate:
        return self.part

    def dnf(self) -> list[list[Atom]]:
        return self.part.negate().dnf()

    def __repr__(self) -> str:
        return f"¬{self.part!r}"


# ---------------------------------------------------------------------------
# Satisfiability analysis
# ---------------------------------------------------------------------------


def _conjunct_satisfiable(atoms: Sequence[Atom]) -> bool:
    """Whether one conjunction of atoms has a satisfying assignment.

    Conservative: unknown interactions count as satisfiable.
    """
    by_attr: dict[str, list[Atom]] = {}
    for atom in atoms:
        by_attr.setdefault(atom.attribute, []).append(atom)
    return all(_attr_constraints_satisfiable(group) for group in by_attr.values())


def _attr_constraints_satisfiable(atoms: Sequence[Atom]) -> bool:
    eq_values = {a.value for a in atoms if isinstance(a, Eq)}
    if len(eq_values) > 1:
        return False
    ne_values = {a.value for a in atoms if isinstance(a, Ne)}
    in_sets = [a.values for a in atoms if isinstance(a, InSet)]
    not_in = set().union(*(a.values for a in atoms if isinstance(a, NotInSet))) if any(
        isinstance(a, NotInSet) for a in atoms
    ) else set()
    uppers = [(a.value, True) for a in atoms if isinstance(a, Lt)]
    uppers += [(a.value, False) for a in atoms if isinstance(a, Le)]
    lowers = [(a.value, True) for a in atoms if isinstance(a, Gt)]
    lowers += [(a.value, False) for a in atoms if isinstance(a, Ge)]

    if eq_values:
        value = next(iter(eq_values))
        if value in ne_values or value in not_in:
            return False
        if any(value not in s for s in in_sets):
            return False
        for bound, strict in uppers:
            if not _try_order(lambda a, b: a < b if strict else a <= b, value, bound):
                return False
        for bound, strict in lowers:
            if not _try_order(lambda a, b: a > b if strict else a >= b, value, bound):
                return False
        return True

    if in_sets:
        candidates = frozenset.intersection(*map(frozenset, in_sets))
        candidates = {v for v in candidates if v not in ne_values and v not in not_in}
        if not candidates:
            return False
        if uppers or lowers:
            return any(
                all(
                    _try_order(lambda a, b: a < b if s else a <= b, v, bound)
                    for bound, s in uppers
                )
                and all(
                    _try_order(lambda a, b: a > b if s else a >= b, v, bound)
                    for bound, s in lowers
                )
                for v in candidates
            )
        return True

    # Only ranges / disequalities: unsatisfiable only on a provable empty range.
    for (ub, us), (lb, ls) in itertools.product(uppers, lowers):
        try:
            if ub < lb or (ub == lb and (us or ls)):
                return False
        except TypeError:
            continue
    return True


def satisfiable(predicate: Predicate) -> bool:
    """Whether ``predicate`` has a satisfying row (conservative, sound)."""
    return any(_conjunct_satisfiable(conj) for conj in predicate.dnf())


def compatible_with_bindings(
    predicate: Predicate, bindings: Mapping[str, object]
) -> bool:
    """Whether ``predicate ∧ ⋀ (A = bindings[A])`` is satisfiable.

    This is the Section IV-A pruning test: ``predicate`` is a fragment's
    ``F_i`` and ``bindings`` are the constant entries ``F_φ`` of a pattern
    tuple's LHS.  ``False`` means no tuple of the fragment can match the
    pattern, so the fragment is skipped for that pattern.
    """
    pattern_atoms: list[Atom] = [Eq(a, v) for a, v in bindings.items()]
    return any(
        _conjunct_satisfiable(list(conj) + pattern_atoms)
        for conj in predicate.dnf()
    )
