"""Relation schemas.

A :class:`Schema` names a relation, fixes an ordered list of attributes and
designates a key.  Tuples of a relation with this schema are plain Python
tuples whose positions follow ``schema.attributes``; the schema provides the
attribute-name to position mapping used everywhere else in the library.

The paper (Section II) works with a single relation schema ``R`` over
``attr(R)`` with a designated key ``key(R)``; vertical fragments get derived
schemas via :meth:`Schema.project`.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown attributes."""


class Schema:
    """An ordered relation schema with a designated key.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"EMP"``.
    attributes:
        Ordered attribute names; must be unique and non-empty.
    key:
        Attributes forming the key.  Defaults to the first attribute.
    """

    __slots__ = ("name", "attributes", "key", "_positions", "_positions_cache")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        key: Sequence[str] | None = None,
    ) -> None:
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attributes in schema {name!r}")
        if key is None:
            key = (attributes[0],)
        key = tuple(key)
        missing = [a for a in key if a not in attributes]
        if missing:
            raise SchemaError(f"key attributes {missing} not in schema {name!r}")
        self.name = name
        self.attributes = attributes
        self.key = key
        self._positions = {a: i for i, a in enumerate(attributes)}
        self._positions_cache: dict[tuple[str, ...], tuple[int, ...]] = {}

    # -- lookups ---------------------------------------------------------

    def position(self, attribute: str) -> int:
        """Return the column index of ``attribute``."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.name!r} "
                f"(has {list(self.attributes)})"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return column indexes for several attributes, in the given order.

        Memoized per attribute tuple — every detector resolves the same
        LHS/RHS lists once per query, so repeated lookups are one dict
        probe.
        """
        key = tuple(attributes)
        cached = self._positions_cache.get(key)
        if cached is None:
            cached = tuple(self.position(a) for a in key)
            self._positions_cache[key] = cached
        return cached

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self.attributes)

    # -- derivations -----------------------------------------------------

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Schema":
        """Schema of a projection onto ``attributes`` (order preserved as given).

        The key of the derived schema is the original key if fully retained,
        otherwise the full attribute list (the projection may not have a key).
        """
        attributes = tuple(attributes)
        for a in attributes:
            self.position(a)  # validates
        if all(k in attributes for k in self.key):
            key: tuple[str, ...] = self.key
        else:
            key = attributes
        return Schema(name or f"{self.name}[{','.join(attributes)}]", attributes, key)

    def key_positions(self) -> tuple[int, ...]:
        """Column indexes of the key attributes."""
        return self.positions(self.key)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {list(self.attributes)!r}, key={list(self.key)!r})"
