"""CSV import/export for relations.

Small convenience layer so examples can persist generated datasets and users
can load their own data into the detectors.  Values are written as strings;
``load_csv`` can optionally coerce chosen columns back to ``int``/``float``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .relation import Relation
from .schema import Schema


def save_csv(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        writer.writerows(relation.rows)


def infer_column_types(relation: Relation) -> Relation:
    """Coerce string columns that look numeric to ``int``/``float``.

    A column converts when every value parses as an integer (or, failing
    that, as a float).  Keeps CSV round-trips compatible with CFDs whose
    pattern constants are numeric (the parser reads bare digits as ints).
    """

    def as_int(text: object) -> int | None:
        if isinstance(text, str) and text.strip().lstrip("+-").isdigit():
            return int(text)
        return None

    def as_float(text: object) -> float | None:
        if not isinstance(text, str):
            return None
        try:
            return float(text)
        except ValueError:
            return None

    columns = list(zip(*relation.rows)) if relation.rows else []
    converters: dict[int, Callable[[object], object]] = {}
    for position, column in enumerate(columns):
        if all(as_int(value) is not None for value in column):
            converters[position] = lambda v: int(v)
        elif all(as_float(value) is not None for value in column):
            converters[position] = lambda v: float(v)
    if not converters:
        return relation
    rows = [
        tuple(
            converters[p](value) if p in converters else value
            for p, value in enumerate(row)
        )
        for row in relation.rows
    ]
    return Relation(relation.schema, rows, copy=False)


def load_csv(
    path: str | Path,
    name: str | None = None,
    key: Sequence[str] | None = None,
    converters: Mapping[str, Callable[[str], object]] | None = None,
) -> Relation:
    """Read a relation from a headered CSV file.

    Parameters
    ----------
    name:
        Relation name; defaults to the file stem.
    key:
        Key attributes; defaults to the first column.
    converters:
        Optional per-column parsers, e.g. ``{"salary": int}``.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        schema = Schema(name or path.stem, header, key=key)
        if converters:
            positions = [
                (schema.position(attr), fn) for attr, fn in converters.items()
            ]
            rows = []
            for raw in reader:
                row = list(raw)
                for pos, fn in positions:
                    row[pos] = fn(row[pos])
                rows.append(tuple(row))
        else:
            rows = [tuple(raw) for raw in reader]
    return Relation(schema, rows, copy=False)
