"""In-memory relations and relational operators.

This is the local "DBMS" each simulated site runs.  It provides exactly the
operators the paper's detection machinery needs: selection, projection
(with or without duplicate elimination), key-based natural join (used to
reconstruct vertically partitioned relations), union, and hash group-by
(the engine behind the SQL GROUP BY detection technique of [2]).

Rows are plain tuples positioned according to ``relation.schema.attributes``.
Because relations are immutable values, each one lazily grows a cached
columnar view (:mod:`repro.relational.columnar`) that ``group_by``,
``join`` and :class:`~repro.relational.index.HashIndex` share, so repeated
hashing of the same attribute combinations is paid once per relation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .schema import Schema, SchemaError


def _sort_key(value: object) -> tuple:
    """A total order over mixed-type values: numbers first, numerically."""
    if isinstance(value, (int, float)):
        return (0, "", value)
    if isinstance(value, str):
        return (1, "str", value)
    return (1, type(value).__name__, str(value))


class Relation:
    """A bag of tuples under a :class:`Schema` — the unit every detector eats.

    Rows are plain tuples positioned by ``schema.attributes``.  Relations
    are treated as **immutable values** throughout the library; that
    contract is what lets each relation lazily grow a cached columnar view
    (:func:`repro.relational.column_store`) that ``group_by``, ``join``,
    ``HashIndex``, the fused detection engines and the distributed
    detectors' σ scans all share without invalidation — and what lets the
    parallel scheduler hand fragments to threads or resident worker
    processes without copies or locks.

    The constructor validates and copies ``rows`` by default; pass
    ``copy=False`` for rows you own and will not mutate (the operators
    below do this for their freshly-built row lists).
    """

    __slots__ = ("schema", "rows", "_colstore")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Sequence[object]] = (),
        copy: bool = True,
    ) -> None:
        self.schema = schema
        if copy:
            width = len(schema)
            prepared = []
            for row in rows:
                row = tuple(row)
                if len(row) != width:
                    raise SchemaError(
                        f"row of width {len(row)} does not fit schema "
                        f"{schema.name!r} of width {width}: {row!r}"
                    )
                prepared.append(row)
            self.rows = prepared
        else:
            self.rows = list(rows)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dicts(
        cls, schema: Schema, records: Iterable[Mapping[str, object]]
    ) -> "Relation":
        """Build a relation from attribute-name to value mappings."""
        attrs = schema.attributes
        return cls(schema, (tuple(rec[a] for a in attrs) for rec in records), copy=False)

    def to_dicts(self) -> list[dict[str, object]]:
        """Return rows as attribute-name to value dictionaries."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self.rows]

    # -- basics ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def value(self, row: Sequence[object], attribute: str) -> object:
        """Value of ``attribute`` in ``row``."""
        return row[self.schema.position(attribute)]

    def distinct(self) -> "Relation":
        """Duplicate-eliminated copy (preserves first-seen order)."""
        return Relation(self.schema, dict.fromkeys(self.rows), copy=False)

    # -- operators -------------------------------------------------------

    def select(self, predicate: Callable[[tuple, Schema], bool]) -> "Relation":
        """``σ_predicate``: rows for which ``predicate(row, schema)`` holds.

        Accepts either a :class:`repro.relational.predicate.Predicate` or any
        callable of ``(row, schema)``.
        """
        evaluate = getattr(predicate, "evaluate", predicate)
        schema = self.schema
        return Relation(
            schema, (row for row in self.rows if evaluate(row, schema)), copy=False
        )

    def project(
        self,
        attributes: Sequence[str],
        dedupe: bool = False,
        name: str | None = None,
    ) -> "Relation":
        """``π_attributes``; set semantics when ``dedupe`` is true."""
        positions = self.schema.positions(attributes)
        rows: Iterable[tuple] = (tuple(row[p] for p in positions) for row in self.rows)
        if dedupe:
            rows = dict.fromkeys(rows)
        return Relation(self.schema.project(attributes, name=name), rows, copy=False)

    def union(self, other: "Relation") -> "Relation":
        """Bag union of two relations over the same attribute list."""
        if other.schema.attributes != self.schema.attributes:
            raise SchemaError(
                f"union over different attribute lists: "
                f"{self.schema.attributes} vs {other.schema.attributes}"
            )
        return Relation(self.schema, self.rows + other.rows, copy=False)

    def join(self, other: "Relation", on: Sequence[str] | None = None) -> "Relation":
        """Natural join on ``on`` (defaults to this relation's key).

        Used to reconstruct a vertically partitioned relation
        (``D = ⋈ D_i`` on ``key(R)``).  The result schema carries this
        relation's attributes followed by the other's non-join attributes.
        """
        if on is None:
            on = self.schema.key
        on = tuple(on)
        left_pos = self.schema.positions(on)
        right_pos = other.schema.positions(on)
        right_rest = [a for a in other.schema.attributes if a not in on]
        right_rest_pos = other.schema.positions(right_rest)

        overlap = set(right_rest) & set(self.schema.attributes)
        if overlap:
            raise SchemaError(
                f"join would duplicate non-join attributes {sorted(overlap)}"
            )

        from .columnar import column_store

        # build side: the other relation's cached group index on the join key
        index = column_store(other).group_index(on)
        other_rows = other.rows

        out_schema = Schema(
            f"{self.schema.name}⋈{other.schema.name}",
            self.schema.attributes + tuple(right_rest),
            key=self.schema.key,
        )
        out_rows = []
        for row in self.rows:
            ids = index.get(tuple(row[p] for p in left_pos))
            if ids:
                for i in ids:
                    match = other_rows[i]
                    out_rows.append(row + tuple(match[p] for p in right_rest_pos))
        return Relation(out_schema, out_rows, copy=False)

    def group_by(self, attributes: Sequence[str]) -> dict[tuple, list[tuple]]:
        """Hash group-by: grouping-key tuple -> rows in first-seen order.

        Backed by the relation's cached columnar group index, so grouping
        by the same attributes twice hashes the rows only once.
        """
        from .columnar import column_store

        index = column_store(self).group_index(tuple(attributes))
        rows = self.rows
        return {key: [rows[i] for i in ids] for key, ids in index.items()}

    # -- updates (delta versions) ----------------------------------------

    def insert(self, rows: Iterable[Sequence[object]]) -> "Relation":
        """A new relation version with ``rows`` appended.

        Relations stay immutable: the result is a
        :class:`~repro.relational.delta.DeltaRelation` that records the
        inserted rows as provenance and shares this relation's columnar
        caches structurally (dictionary-append encoding — see
        :mod:`repro.relational.delta`), so deriving and re-detecting cost
        O(|ΔD|)-ish instead of a full re-encode.  An empty batch returns
        ``self`` — a no-op allocates nothing.
        """
        from .delta import insert_rows

        return insert_rows(self, rows)

    def delete(self, keys_or_predicate) -> "Relation":
        """A new relation version with the matching rows removed.

        ``keys_or_predicate`` is an iterable of key values (projections on
        ``schema.key``; bare values accepted for single-attribute keys) or
        any predicate callable of ``(row, schema)``.  The result is a
        :class:`~repro.relational.delta.DeltaRelation` carrying the
        deleted rows as provenance and a tombstone mask that derived
        columnar caches filter through.  An empty key batch returns
        ``self`` — a no-op allocates nothing.
        """
        from .delta import delete_rows

        return delete_rows(self, keys_or_predicate)

    def sorted_by(self, attributes: Sequence[str]) -> "Relation":
        """Rows sorted lexicographically by ``attributes``, type-aware.

        Numeric values order numerically (and before non-numeric ones);
        other values order by type name then string form, so mixed-type
        columns still get a stable total order without ``1, 10, 2``-style
        stringified misordering.
        """
        positions = self.schema.positions(attributes)
        keyed = sorted(
            self.rows,
            key=lambda row: tuple(_sort_key(row[p]) for p in positions),
        )
        return Relation(self.schema, keyed, copy=False)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and sorted(
            map(repr, self.rows)
        ) == sorted(map(repr, other.rows))

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self.rows)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A small aligned text rendering (for examples and debugging)."""
        attrs = self.schema.attributes
        shown = self.rows[:limit]
        cells = [list(map(str, attrs))] + [[str(v) for v in row] for row in shown]
        widths = [max(len(r[i]) for r in cells) for i in range(len(attrs))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        ]
        lines.insert(1, "  ".join("-" * w for w in widths))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
