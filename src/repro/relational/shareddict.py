"""Cluster-scoped shared dictionaries: one value ↔ code table per cluster.

Each fragment's :class:`~repro.relational.columnar.ColumnStore` dictionary-
encodes *locally*: code 3 at site 1 and code 3 at site 2 generally decode
to different values, so local codes cannot cross sites.  This module adds
the cluster-wide layer: global interning tables shared by all fragments of
one cluster, so that equal values (or value combinations) carry the *same*
integer code at every site.  With that invariant, the distributed
detectors ship int codes instead of value tuples, and the coordinator-side
merge — grouping the received ``(X, A)`` projections and spotting groups
with two distinct RHS combinations — runs entirely on code pairs, decoding
only the handful of violating ``X`` values at the end.

The dictionaries follow the federated-summary playbook: a fragment sends
its *local dictionary* (the distinct combinations, a fraction of its rows)
to the coordinator **once**; the coordinator interns them, in site order
and local first-seen order, into the global table and keeps the resulting
local-code → global-code translation.  Every later detection against the
same cluster ships only codes.  Like the paper's ``lstat`` statistics
exchange, the one-off dictionary shipment is accounted as control traffic,
not tuple shipment; the per-row payload is what
:attr:`~repro.distributed.network.ShipmentRecord.n_codes` counts.

Three granularities, one idea:

* :class:`SharedColumn` / :class:`SharedDictionary` — per-attribute global
  tables.  :meth:`SharedDictionary.store_for` builds **cluster-aware
  column stores**: fragments encode against the shared tables, so
  ``fragment_a.column("CC").codes`` and ``fragment_b.column("CC").codes``
  are directly comparable ints (the property suite asserts codes decode to
  the same values on every fragment).
* :class:`SharedPairDictionary` — per-variable-CFD ``(X, Y)`` projection
  interner: each shipped row collapses to a single ``(x_code, y_code)``
  pair regardless of attribute width.  Used by the horizontal detectors.
* :class:`SharedComboDictionary` — whole-combination interner (one code
  per distinct ``X ∪ A`` union row).  Used by CLUSTDETECT, whose
  coordinators re-run several member CFDs and therefore need the full
  combination back.

All interning is deterministic (site order, then local first-seen order),
so parallel and serial detection produce identical codes — and identical
reports.

Thread-safety contract: every shared table is mutated under a
per-dictionary lock (the same discipline ``normalize.py`` applies to its
parse memos with ``_MEMO_LOCK``).  Interning is a check-then-act sequence,
so without the lock two racing threads — concurrent fragment scans under
``REPRO_PARALLEL=thread``, or concurrent sessions of the resident service
— can assign two codes to one value or append one value twice, silently
corrupting every coded shipment that follows.  Reads stay lock-free: the
tables are append-only and a published entry never changes, so a
``code_of`` hit is final (entries are published values-first, making
``values[code]`` valid the instant the code is visible).
"""

from __future__ import annotations

import threading

from typing import Sequence

from .columnar import ColumnStore
from .relation import Relation


def _intern(lock: threading.Lock, code_of: dict, values: list, value) -> int:
    """Append-only get-or-assign: the one interning primitive every
    shared table here builds on.

    Lock-free on the hot path — a hit in ``code_of`` is immutable once
    published — and double-checked under ``lock`` on a miss so exactly
    one thread assigns the code.  ``values.append`` runs *before* the
    ``code_of`` publish: a concurrent reader that sees the code can
    always decode it.
    """
    code = code_of.get(value)
    if code is not None:
        return code
    with lock:
        code = code_of.get(value)
        if code is None:
            code = len(values)
            values.append(value)
            code_of[value] = code
    return code


class SharedColumn:
    """One attribute's cluster-global dictionary: value ↔ code, append-only."""

    __slots__ = ("attribute", "values", "code_of", "_lock")

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self.values: list[object] = []
        self.code_of: dict[object, int] = {}
        self._lock = threading.Lock()

    def intern(self, value: object) -> int:
        """The global code of ``value``, assigning the next one if new."""
        return _intern(self._lock, self.code_of, self.values, value)

    @property
    def n_distinct(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"SharedColumn({self.attribute!r}, {len(self.values)} values)"


class SharedDictionary:
    """Per-attribute global tables for all fragments of one cluster.

    :meth:`store_for` returns a cluster-aware
    :class:`~repro.relational.columnar.ColumnStore` whose columns encode
    against these tables: the store's ``values`` list *is* the shared
    (growing) global list, so a code obtained at any fragment decodes to
    the same value at every other fragment of the cluster.
    """

    __slots__ = ("_columns", "_stores", "_lock")

    def __init__(self) -> None:
        self._columns: dict[str, SharedColumn] = {}
        #: id(relation) -> (relation, store); the strong reference keeps
        #: the id stable for the cache's lifetime (see :meth:`store_for`)
        self._stores: dict[int, tuple[Relation, ColumnStore]] = {}
        #: reentrant: building a store under the lock interns through
        #: :meth:`column` on the same dictionary
        self._lock = threading.RLock()

    def column(self, attribute: str) -> SharedColumn:
        """The global table of ``attribute`` (created on first use)."""
        shared = self._columns.get(attribute)
        if shared is not None:
            return shared
        with self._lock:
            shared = self._columns.get(attribute)
            if shared is None:
                shared = SharedColumn(attribute)
                self._columns[attribute] = shared
        return shared

    def store_for(self, relation: Relation) -> ColumnStore:
        """A cluster-aware column store of ``relation`` (cached per object).

        Kept inside the dictionary — *not* in the relation's own
        ``_colstore`` slot — so the same fragment can carry both a local
        store (first-seen local codes) and a cluster store (global codes)
        without the two colliding.  The cache entry holds the relation
        itself: the id-keyed lookup is only sound while the keyed object
        is alive (slotted relations cannot be weak-referenced), and a
        cluster dictionary outliving its fragments would be meaningless
        anyway — the interned codes describe exactly those fragments.
        """
        entry = self._stores.get(id(relation))
        if entry is not None and entry[0] is relation:
            return entry[1]
        with self._lock:
            entry = self._stores.get(id(relation))
            if entry is not None and entry[0] is relation:
                return entry[1]
            store = self._derived_store(relation)
            if store is None:
                store = ColumnStore(relation, shared=self)
            self._stores[id(relation)] = (relation, store)
        return store

    def _derived_store(self, relation):
        """A structurally shared store for a delta version, when possible.

        When ``relation`` is a :class:`~repro.relational.delta.DeltaRelation`
        whose parent already has a cluster-aware store here, the child's
        store derives from it: inserted values intern into the global
        (append-only) tables, deletions filter codes through the tombstone
        mask — so cluster codes stay stable across relation versions.
        """
        from .delta import DerivedColumnStore, incremental_enabled

        parent = getattr(relation, "delta_parent", None)
        if parent is None or not incremental_enabled():
            return None
        entry = self._stores.get(id(parent))
        if entry is None or entry[0] is not parent:
            return None
        return DerivedColumnStore(
            relation,
            entry[1],
            inserted=relation.delta_inserted,
            doomed=relation.delta_doomed,
            shared=self,
        )

    def __repr__(self) -> str:
        return f"SharedDictionary({len(self._columns)} attributes)"


class SharedPairDictionary:
    """Global ``(X, Y)`` projection codes for one variable CFD.

    A shipped projection row over ``X ∪ A`` becomes the pair
    ``(x_code, y_code)``: ``x_code`` interns the ``X`` sub-tuple,
    ``y_code`` the RHS sub-tuple.  The coordinator merge needs nothing
    else — a σ bucket violates at ``x`` exactly when two pairs with the
    same ``x_code`` carry different ``y_code``s — and only the violating
    ``x_code``s are decoded (:attr:`x_values`).

    :meth:`translate` interns one fragment's distinct combinations and
    memoizes the local → global translation per site, implementing the
    "dictionary ships once" protocol described in the module docstring.
    """

    __slots__ = (
        "lhs_width",
        "x_values",
        "x_code_of",
        "y_values",
        "y_code_of",
        "_site_pairs",
        "_lock",
    )

    def __init__(self, lhs_width: int) -> None:
        self.lhs_width = lhs_width
        self.x_values: list[tuple] = []
        self.x_code_of: dict[tuple, int] = {}
        self.y_values: list[tuple] = []
        self.y_code_of: dict[tuple, int] = {}
        self._site_pairs: dict[object, list[tuple[int, int]]] = {}
        self._lock = threading.Lock()

    def pairs_for(self, site_key: object) -> list[tuple[int, int]] | None:
        """The memoized translation of one site, or ``None`` if not built."""
        return self._site_pairs.get(site_key)

    def intern_x(self, x: tuple) -> int:
        """The global code of one ``X`` projection (assigned if new).

        The append-only primitive behind incremental detection: a delta
        row's combination interns through the same tables the initial
        run's dictionaries populated, so pre-update codes never move.
        """
        return _intern(self._lock, self.x_code_of, self.x_values, x)

    def intern_y(self, y: tuple) -> int:
        """The global code of one RHS projection (assigned if new)."""
        return _intern(self._lock, self.y_code_of, self.y_values, y)

    def translate(
        self, site_key: object, distincts: Sequence[tuple]
    ) -> list[tuple[int, int]]:
        """Intern a fragment's distinct ``X ∪ A`` combinations, in order.

        Returns (and memoizes) ``pairs`` with ``pairs[g]`` the global
        ``(x_code, y_code)`` of the fragment's local combination ``g``.
        Deterministic: callers intern sites in site order, and within one
        site ``distincts`` comes in the fragment's first-seen order.
        """
        width = self.lhs_width
        lock = self._lock
        x_code_of, y_code_of = self.x_code_of, self.y_code_of
        x_values, y_values = self.x_values, self.y_values
        pairs: list[tuple[int, int]] = []
        for combo in distincts:
            # lock-free hits; _intern re-checks under the lock on a miss
            x = combo[:width]
            x_code = x_code_of.get(x)
            if x_code is None:
                x_code = _intern(lock, x_code_of, x_values, x)
            y = combo[width:]
            y_code = y_code_of.get(y)
            if y_code is None:
                y_code = _intern(lock, y_code_of, y_values, y)
            pairs.append((x_code, y_code))
        with lock:
            self._site_pairs[site_key] = pairs
        return pairs

    def __repr__(self) -> str:
        return (
            f"SharedPairDictionary({len(self.x_values)} X, "
            f"{len(self.y_values)} Y values, {len(self._site_pairs)} sites)"
        )


class SharedComboDictionary:
    """Global codes for whole attribute-union combinations (CLUSTDETECT).

    One code per distinct combination over the CFD cluster's attribute
    union; :attr:`values` decodes.  Coordinators dedupe the received codes
    and run the member CFDs' GROUP BY detection over the *distinct*
    decoded combinations — conflict existence does not depend on
    multiplicity, so the merge stays proportional to distinct combinations
    while the shipment accounting keeps honest row counts.
    """

    __slots__ = ("values", "code_of", "_site_codes", "_lock")

    def __init__(self) -> None:
        self.values: list[tuple] = []
        self.code_of: dict[tuple, int] = {}
        self._site_codes: dict[object, list[int]] = {}
        self._lock = threading.Lock()

    def codes_for(self, site_key: object) -> list[int] | None:
        return self._site_codes.get(site_key)

    def intern(self, combo: tuple) -> int:
        """The global code of one combination (assigned if new).

        The append-only primitive behind incremental CLUSTDETECT: a delta
        row's combination interns through the same table the initial
        run's translations populated, so codes obtained before an update
        stay valid after it — the invariant that lets a resident
        coordinator patch its per-combination counts in place.
        """
        return _intern(self._lock, self.code_of, self.values, combo)

    def translate(self, site_key: object, distincts: Sequence[tuple]) -> list[int]:
        """Intern one fragment's distinct combinations; memoized per site."""
        lock = self._lock
        code_of, values = self.code_of, self.values
        codes: list[int] = []
        for combo in distincts:
            # lock-free hits; _intern re-checks under the lock on a miss
            code = code_of.get(combo)
            if code is None:
                code = _intern(lock, code_of, values, combo)
            codes.append(code)
        with lock:
            self._site_codes[site_key] = codes
        return codes

    def __repr__(self) -> str:
        return (
            f"SharedComboDictionary({len(self.values)} combos, "
            f"{len(self._site_codes)} sites)"
        )


#: guards cache creation in :func:`shared_dict_on` across *all* owners —
#: installs are rare (once per (cluster, CFD) key), so one module lock
#: beats threading a lock through every owner type
_SHARED_DICTS_LOCK = threading.Lock()


def shared_dict_on(owner, key, factory):
    """A cluster-cached shared dictionary: ``owner._shared_dicts[key]``.

    Clusters are immutable, so the dictionaries (and the per-site
    translations memoized inside them) stay valid for the owner's
    lifetime; repeated detections against one cluster skip re-interning
    entirely.  Unhashable keys (exotic pattern entries) and slotted owners
    degrade gracefully to a fresh dictionary per call — correct, just not
    memoized.

    Cache probes are lock-free; cache *installs* (of ``_shared_dicts``
    itself and of each dictionary) are double-checked under a module lock
    so every thread asking one owner for one key gets the same table —
    two dictionaries for one key would split the cluster's value↔code
    space in half.
    """
    try:
        cache = owner._shared_dicts
    except AttributeError:
        with _SHARED_DICTS_LOCK:
            try:
                cache = owner._shared_dicts
            except AttributeError:
                cache = {}
                try:
                    owner._shared_dicts = cache
                except AttributeError:  # slotted stand-in: no caching
                    return factory()
    try:
        shared = cache.get(key)
    except TypeError:  # unhashable key: no caching
        return factory()
    if shared is None:
        with _SHARED_DICTS_LOCK:
            shared = cache.get(key)
            if shared is None:
                shared = factory()
                cache[key] = shared
    return shared
