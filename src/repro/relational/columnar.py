"""Dictionary-encoded columnar execution backend.

The row store (:class:`~repro.relational.relation.Relation`) keeps tuples,
which is what the paper's formalism talks about — but every hot query in
this library (σ partitioning, GROUP BY detection, hash joins) only compares
values for *equality*.  A dictionary-encoded column replaces each value by a
small integer code, after which those comparisons become integer
comparisons over contiguous code arrays, and repeated group-bys over the
same attributes become free: the grouping is computed once and cached.

Three views are built lazily, per relation, and cached on the relation
itself (relations are treated as immutable values throughout the library,
so the caches never need invalidation):

* :class:`Column` — one attribute as ``codes`` (row -> int code), ``values``
  (code -> value) and ``code_of`` (value -> code);
* :class:`KeyColumn` — the composite over an attribute *list*: ``codes``
  assigns every row the ordinal of its distinct value combination, and
  ``values`` decodes an ordinal back to the value tuple.  This is the
  dictionary-encoded form of a GROUP BY key;
* ``group_index`` — the classic hash index (value tuple -> row ids),
  derived from a :class:`KeyColumn`; :class:`~repro.relational.index.HashIndex`,
  :meth:`Relation.group_by` and :meth:`Relation.join` all share it.

Codes are canonically stored in plain lists: CPython indexes lists faster
than it unboxes array elements, and nothing here *requires* numpy.  When
numpy is importable (the optional ``fast`` extra; disable explicitly with
``REPRO_NUMPY=0``) the store additionally acts as an **array backend**:

* the encoding pass itself is vectorized — ``np.unique(...,
  return_inverse=True)`` replaces the per-row dictionary probe for
  numeric columns, with the sorted codes remapped so the first-seen-order
  contract of the list backend is preserved bit-for-bit (string, mixed
  and NaN-carrying columns keep the dictionary loop, which beats a
  wide-element sort there);
* composite keys combine the per-attribute code arrays arithmetically in
  one int64 mixed-radix pass instead of hashing row tuples;
* :meth:`Column.codes_array` / :meth:`KeyColumn.codes_array` expose the
  codes as cached ``int32`` ndarrays, which the vectorized folds of the
  ``fused-numpy`` detection engine (:mod:`repro.core.fused`) consume.

Both representations describe the same encoding, so every consumer — the
pure-Python fused folds, ``HashIndex``, ``group_by``, ``join``, the
distributed detectors — works unchanged whichever backend built the store.
Vectorized encoding kicks in at :data:`VECTORIZE_MIN_ROWS` rows; below
that the dictionary loop wins on constant factors.
"""

from __future__ import annotations

import os
from typing import Sequence

try:  # optional array backend — the library never requires numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: below this many rows the dictionary loop beats ``np.unique`` on constant
#: factors; tests force the vectorized path by patching this to 0.
VECTORIZE_MIN_ROWS = 256


def numpy_enabled() -> bool:
    """Whether the optional numpy array backend is active.

    True when numpy is importable and ``REPRO_NUMPY`` is not ``"0"`` — the
    environment override exists so the pure-Python paths can be exercised
    (and benchmarked) on machines that do have numpy installed.
    """
    return _np is not None and os.environ.get("REPRO_NUMPY", "1") != "0"


def _first_seen_remap(sorted_values, first_index, inverse):
    """Remap ``np.unique`` output from sorted order to first-seen order.

    Returns ``(codes, decode)`` where ``codes[i]`` numbers distinct values
    by first appearance — the contract of the dictionary encoder — and
    ``decode`` lists the (still numpy-boxed) values in that order.
    """
    order = _np.argsort(first_index)  # sorted ordinal -> first-seen position
    rank = _np.empty(len(order), dtype=_np.int64)
    rank[order] = _np.arange(len(order), dtype=_np.int64)
    return rank[inverse].astype(_np.int32), sorted_values[order]


def _encode_values_numpy(raw: list):
    """Vectorized dictionary encoding of one *numeric* attribute, or ``None``.

    Only numeric columns take this path; everything else — strings, whose
    cached hashes make the dictionary loop faster than a wide-element sort
    anyway; mixed columns, which ``np.asarray`` would silently stringify;
    arbitrary objects; int64-overflowing integers — falls back (returns
    ``None``).  A float result additionally must survive a value-exact
    round trip: an int/float mix upcasts to float64, where ints beyond
    2**53 collapse onto the same float and NaNs (which a Python dict keys
    by identity) compare unequal to themselves — either would silently
    diverge from the dictionary backend, and the two must agree
    bit-for-bit.  Benign conflations (1 / 1.0 / True) round-trip as equal,
    exactly as a dict conflates those keys.
    """
    try:
        arr = _np.asarray(raw)
    except (OverflowError, ValueError):  # ints beyond int64, odd shapes
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "biuf":
        return None
    if arr.dtype.kind == "f" and arr.tolist() != raw:
        return None
    sorted_values, first_index, inverse = _np.unique(
        arr, return_index=True, return_inverse=True
    )
    codes_arr, decode = _first_seen_remap(sorted_values, first_index, inverse)
    values = decode.tolist()  # unbox to plain Python values
    code_of = {value: code for code, value in enumerate(values)}
    return codes_arr.tolist(), values, code_of, codes_arr


class Column:
    """One attribute of a relation, dictionary-encoded.

    ``codes[i]`` is the code of row ``i``'s value; ``values[c]`` decodes a
    code; ``code_of[v]`` encodes a value (absent values of the domain are
    simply missing — a probe with ``code_of.get`` answers "does any row
    carry this constant?" in O(1)).
    """

    __slots__ = ("attribute", "codes", "values", "code_of", "_codes_np")

    def __init__(
        self,
        attribute: str,
        codes: list[int],
        values: list[object],
        code_of: dict[object, int],
        codes_np=None,
    ) -> None:
        self.attribute = attribute
        self.codes = codes
        self.values = values
        self.code_of = code_of
        self._codes_np = codes_np

    @property
    def n_distinct(self) -> int:
        return len(self.values)

    def codes_array(self):
        """The codes as a cached ``int32`` ndarray (``None`` without numpy).

        Built natively by the vectorized encoder; otherwise converted from
        the list on first use.  The two views describe the same encoding.
        """
        if self._codes_np is None and numpy_enabled():
            self._codes_np = _np.asarray(self.codes, dtype=_np.int32)
        return self._codes_np

    def __repr__(self) -> str:
        return (
            f"Column({self.attribute!r}, {len(self.codes)} rows, "
            f"{len(self.values)} distinct)"
        )


class KeyColumn:
    """A composite (multi-attribute) dictionary-encoded column.

    ``codes[i]`` is the ordinal of row ``i``'s distinct value *combination*
    over ``attributes``; ``values[g]`` is that combination as a tuple, in
    first-seen order.  Equal to the grouping a hash GROUP BY would compute,
    in a form that downstream passes can consume with two list lookups per
    row.
    """

    __slots__ = ("attributes", "codes", "values", "_codes_np")

    def __init__(
        self,
        attributes: tuple[str, ...],
        codes: list[int],
        values: list[tuple],
        codes_np=None,
    ) -> None:
        self.attributes = attributes
        self.codes = codes
        self.values = values
        self._codes_np = codes_np

    @property
    def n_groups(self) -> int:
        return len(self.values)

    def codes_array(self):
        """The group ordinals as a cached ``int32`` ndarray (see
        :meth:`Column.codes_array`)."""
        if self._codes_np is None and numpy_enabled():
            self._codes_np = _np.asarray(self.codes, dtype=_np.int32)
        return self._codes_np

    def __repr__(self) -> str:
        return (
            f"KeyColumn({list(self.attributes)}, {len(self.codes)} rows, "
            f"{len(self.values)} groups)"
        )


class ColumnStore:
    """Lazily built, cached columnar views of one (immutable) relation.

    Obtain through :func:`column_store`, which hangs the store off the
    relation so every consumer — the fused detector, ``HashIndex``,
    ``group_by``, ``join`` — shares one set of columns and group indexes.

    ``shared`` makes the store **cluster-aware**: pass a
    :class:`~repro.relational.shareddict.SharedDictionary` and every column
    encodes against the cluster's global value ↔ code tables instead of a
    private first-seen numbering, so codes are directly comparable across
    all fragments built over the same dictionary (cluster-aware stores are
    obtained through :meth:`SharedDictionary.store_for`, which caches them
    separately from the relation's own local store).
    """

    __slots__ = (
        "schema",
        "rows",
        "shared",
        "_columns",
        "_key_columns",
        "_group_indexes",
        "scratch",
    )

    def __init__(self, relation, shared=None) -> None:
        self.schema = relation.schema
        self.rows = relation.rows
        #: cluster-scoped :class:`SharedDictionary`, or ``None`` for a
        #: plain (fragment-local) store
        self.shared = shared
        self._columns: dict[str, Column] = {}
        self._key_columns: dict[tuple[str, ...], KeyColumn] = {}
        self._group_indexes: dict[tuple[str, ...], dict[tuple, list[int]]] = {}
        #: free-form memo space for engines that adapt to reuse (e.g. the
        #: vectorized folds switch key-collection strategy on repeat runs)
        self.scratch: dict = {}

    # -- per-attribute columns -------------------------------------------

    def column(self, attribute: str) -> Column:
        """The dictionary-encoded column of ``attribute`` (cached)."""
        cached = self._columns.get(attribute)
        if cached is not None:
            return cached
        position = self.schema.position(attribute)
        if self.shared is not None:
            # cluster-aware encoding: intern through the cluster's global
            # table; the column's decode views *are* the shared (growing)
            # lists, so codes compare across fragments.  The vectorized
            # first-seen encoder below cannot apply — global codes are not
            # a function of this fragment alone.
            table = self.shared.column(attribute)
            intern = table.intern
            codes = [intern(row[position]) for row in self.rows]
            column = Column(attribute, codes, table.values, table.code_of)
            self._columns[attribute] = column
            return column
        if (
            self.rows
            and len(self.rows) >= VECTORIZE_MIN_ROWS
            and numpy_enabled()
            # cheap prefilter on the first value: a string/object column
            # would only be rejected by the encoder after a throwaway
            # wide-dtype array conversion (full checks still run inside)
            and isinstance(self.rows[0][position], (bool, int, float))
        ):
            raw = [row[position] for row in self.rows]
            encoded = _encode_values_numpy(raw)
            if encoded is not None:
                codes, values, code_of, codes_arr = encoded
                column = Column(attribute, codes, values, code_of, codes_arr)
                self._columns[attribute] = column
                return column
        codes: list[int] = []
        values: list[object] = []
        code_of: dict[object, int] = {}
        append = codes.append
        get = code_of.get
        for row in self.rows:
            value = row[position]
            code = get(value)
            if code is None:
                code = len(values)
                code_of[value] = code
                values.append(value)
            append(code)
        column = Column(attribute, codes, values, code_of)
        self._columns[attribute] = column
        return column

    # -- composite key columns -------------------------------------------

    def key_column(self, attributes: Sequence[str]) -> KeyColumn:
        """The composite column over ``attributes`` (cached per tuple)."""
        attributes = tuple(attributes)
        cached = self._key_columns.get(attributes)
        if cached is not None:
            return cached
        if not attributes:
            # degenerate GROUP BY (): every row in the single empty group
            key = KeyColumn(attributes, [0] * len(self.rows), [()])
            self._key_columns[attributes] = key
            return key
        if len(attributes) == 1:
            # reuse the per-attribute codes; only the decode side is new
            column = self.column(attributes[0])
            key = KeyColumn(
                attributes,
                column.codes,
                [(v,) for v in column.values],
                column._codes_np,
            )
            self._key_columns[attributes] = key
            return key
        columns = [self.column(a) for a in attributes]
        if len(self.rows) >= VECTORIZE_MIN_ROWS and numpy_enabled():
            key = self._key_column_numpy(attributes, columns)
            if key is not None:
                self._key_columns[attributes] = key
                return key
        code_arrays = [column.codes for column in columns]
        value_arrays = [column.values for column in columns]
        codes: list[int] = []
        values: list[tuple] = []
        index: dict[tuple, int] = {}
        append = codes.append
        get = index.get
        for combo in zip(*code_arrays):
            group = get(combo)
            if group is None:
                group = len(values)
                index[combo] = group
                values.append(
                    tuple(decode[c] for decode, c in zip(value_arrays, combo))
                )
            append(group)
        key = KeyColumn(attributes, codes, values)
        self._key_columns[attributes] = key
        return key

    def _key_column_numpy(
        self, attributes: tuple[str, ...], columns: list[Column]
    ) -> KeyColumn | None:
        """Vectorized composite encoding: one mixed-radix int64 pass.

        Each row's combination is packed into a single int64 (per-attribute
        code weighted by the later attributes' alphabet sizes), grouped
        with one ``np.unique`` and remapped to first-seen order.  Returns
        ``None`` when the packed key could overflow int64 — the hash loop
        handles that (rare, very-high-cardinality) case.
        """
        capacity = 1
        for column in columns:
            capacity *= max(column.n_distinct, 1)
            if capacity > 2 ** 62:
                return None
        combined = columns[0].codes_array().astype(_np.int64)
        for column in columns[1:]:
            combined = combined * max(column.n_distinct, 1) + column.codes_array()
        sorted_keys, first_index, inverse = _np.unique(
            combined, return_index=True, return_inverse=True
        )
        codes_arr, _ = _first_seen_remap(sorted_keys, first_index, inverse)
        # decode each group from its first occurrence's per-attribute codes
        firsts = _np.sort(first_index).tolist()
        code_lists = [column.codes for column in columns]
        value_lists = [column.values for column in columns]
        values = [
            tuple(vl[cl[i]] for vl, cl in zip(value_lists, code_lists))
            for i in firsts
        ]
        return KeyColumn(attributes, codes_arr.tolist(), values, codes_arr)

    # -- hash group index -------------------------------------------------

    def group_index(self, attributes: Sequence[str]) -> dict[tuple, list[int]]:
        """Value tuple -> row ids, in first-seen order (cached per tuple).

        The shared backing of ``HashIndex``, ``Relation.group_by`` and the
        build side of ``Relation.join``.  Callers must not mutate the
        returned dict or its lists.
        """
        attributes = tuple(attributes)
        cached = self._group_indexes.get(attributes)
        if cached is not None:
            return cached
        key = self.key_column(attributes)
        buckets: list[list[int]] = [[] for _ in key.values]
        for i, group in enumerate(key.codes):
            buckets[group].append(i)
        # skip empty buckets: fresh stores never produce them, but a
        # delete-derived store may keep stale dictionary entries whose
        # groups no surviving row references (see repro.relational.delta)
        index = {key.values[g]: ids for g, ids in enumerate(buckets) if ids}
        self._group_indexes[attributes] = index
        return index

    def __repr__(self) -> str:
        return (
            f"ColumnStore({self.schema.name!r}, {len(self.rows)} rows, "
            f"{len(self._columns)} columns built)"
        )


def column_store(relation) -> ColumnStore:
    """The relation's cached :class:`ColumnStore`, built on first use.

    The store is stowed in the relation's ``_colstore`` slot; objects
    without that slot (duck-typed relation stand-ins) still work, they just
    rebuild per call.
    """
    store = getattr(relation, "_colstore", None)
    if store is None:
        store = ColumnStore(relation)
        try:
            relation._colstore = store
        except AttributeError:  # no slot on a relation-like stand-in
            pass
    return store
