"""Dictionary-encoded columnar execution backend.

The row store (:class:`~repro.relational.relation.Relation`) keeps tuples,
which is what the paper's formalism talks about — but every hot query in
this library (σ partitioning, GROUP BY detection, hash joins) only compares
values for *equality*.  A dictionary-encoded column replaces each value by a
small integer code, after which those comparisons become integer
comparisons over contiguous code arrays, and repeated group-bys over the
same attributes become free: the grouping is computed once and cached.

Three views are built lazily, per relation, and cached on the relation
itself (relations are treated as immutable values throughout the library,
so the caches never need invalidation):

* :class:`Column` — one attribute as ``codes`` (row -> int code), ``values``
  (code -> value) and ``code_of`` (value -> code);
* :class:`KeyColumn` — the composite over an attribute *list*: ``codes``
  assigns every row the ordinal of its distinct value combination, and
  ``values`` decodes an ordinal back to the value tuple.  This is the
  dictionary-encoded form of a GROUP BY key;
* ``group_index`` — the classic hash index (value tuple -> row ids),
  derived from a :class:`KeyColumn`; :class:`~repro.relational.index.HashIndex`,
  :meth:`Relation.group_by` and :meth:`Relation.join` all share it.

Codes are stored in plain lists rather than ``array('I')``: CPython indexes
lists faster than it unboxes array elements, and nothing here assumes
numpy.  The fused detector (:mod:`repro.core.fused`) consumes these views
directly.
"""

from __future__ import annotations

from typing import Sequence


class Column:
    """One attribute of a relation, dictionary-encoded.

    ``codes[i]`` is the code of row ``i``'s value; ``values[c]`` decodes a
    code; ``code_of[v]`` encodes a value (absent values of the domain are
    simply missing — a probe with ``code_of.get`` answers "does any row
    carry this constant?" in O(1)).
    """

    __slots__ = ("attribute", "codes", "values", "code_of")

    def __init__(
        self,
        attribute: str,
        codes: list[int],
        values: list[object],
        code_of: dict[object, int],
    ) -> None:
        self.attribute = attribute
        self.codes = codes
        self.values = values
        self.code_of = code_of

    @property
    def n_distinct(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"Column({self.attribute!r}, {len(self.codes)} rows, "
            f"{len(self.values)} distinct)"
        )


class KeyColumn:
    """A composite (multi-attribute) dictionary-encoded column.

    ``codes[i]`` is the ordinal of row ``i``'s distinct value *combination*
    over ``attributes``; ``values[g]`` is that combination as a tuple, in
    first-seen order.  Equal to the grouping a hash GROUP BY would compute,
    in a form that downstream passes can consume with two list lookups per
    row.
    """

    __slots__ = ("attributes", "codes", "values")

    def __init__(
        self,
        attributes: tuple[str, ...],
        codes: list[int],
        values: list[tuple],
    ) -> None:
        self.attributes = attributes
        self.codes = codes
        self.values = values

    @property
    def n_groups(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"KeyColumn({list(self.attributes)}, {len(self.codes)} rows, "
            f"{len(self.values)} groups)"
        )


class ColumnStore:
    """Lazily built, cached columnar views of one (immutable) relation.

    Obtain through :func:`column_store`, which hangs the store off the
    relation so every consumer — the fused detector, ``HashIndex``,
    ``group_by``, ``join`` — shares one set of columns and group indexes.
    """

    __slots__ = ("schema", "rows", "_columns", "_key_columns", "_group_indexes")

    def __init__(self, relation) -> None:
        self.schema = relation.schema
        self.rows = relation.rows
        self._columns: dict[str, Column] = {}
        self._key_columns: dict[tuple[str, ...], KeyColumn] = {}
        self._group_indexes: dict[tuple[str, ...], dict[tuple, list[int]]] = {}

    # -- per-attribute columns -------------------------------------------

    def column(self, attribute: str) -> Column:
        """The dictionary-encoded column of ``attribute`` (cached)."""
        cached = self._columns.get(attribute)
        if cached is not None:
            return cached
        position = self.schema.position(attribute)
        codes: list[int] = []
        values: list[object] = []
        code_of: dict[object, int] = {}
        append = codes.append
        get = code_of.get
        for row in self.rows:
            value = row[position]
            code = get(value)
            if code is None:
                code = len(values)
                code_of[value] = code
                values.append(value)
            append(code)
        column = Column(attribute, codes, values, code_of)
        self._columns[attribute] = column
        return column

    # -- composite key columns -------------------------------------------

    def key_column(self, attributes: Sequence[str]) -> KeyColumn:
        """The composite column over ``attributes`` (cached per tuple)."""
        attributes = tuple(attributes)
        cached = self._key_columns.get(attributes)
        if cached is not None:
            return cached
        if not attributes:
            # degenerate GROUP BY (): every row in the single empty group
            key = KeyColumn(attributes, [0] * len(self.rows), [()])
            self._key_columns[attributes] = key
            return key
        if len(attributes) == 1:
            # reuse the per-attribute codes; only the decode side is new
            column = self.column(attributes[0])
            key = KeyColumn(
                attributes, column.codes, [(v,) for v in column.values]
            )
            self._key_columns[attributes] = key
            return key
        code_arrays = [self.column(a).codes for a in attributes]
        value_arrays = [self.column(a).values for a in attributes]
        codes: list[int] = []
        values: list[tuple] = []
        index: dict[tuple, int] = {}
        append = codes.append
        get = index.get
        for combo in zip(*code_arrays):
            group = get(combo)
            if group is None:
                group = len(values)
                index[combo] = group
                values.append(
                    tuple(decode[c] for decode, c in zip(value_arrays, combo))
                )
            append(group)
        key = KeyColumn(attributes, codes, values)
        self._key_columns[attributes] = key
        return key

    # -- hash group index -------------------------------------------------

    def group_index(self, attributes: Sequence[str]) -> dict[tuple, list[int]]:
        """Value tuple -> row ids, in first-seen order (cached per tuple).

        The shared backing of ``HashIndex``, ``Relation.group_by`` and the
        build side of ``Relation.join``.  Callers must not mutate the
        returned dict or its lists.
        """
        attributes = tuple(attributes)
        cached = self._group_indexes.get(attributes)
        if cached is not None:
            return cached
        key = self.key_column(attributes)
        buckets: list[list[int]] = [[] for _ in key.values]
        for i, group in enumerate(key.codes):
            buckets[group].append(i)
        index = {key.values[g]: ids for g, ids in enumerate(buckets)}
        self._group_indexes[attributes] = index
        return index

    def __repr__(self) -> str:
        return (
            f"ColumnStore({self.schema.name!r}, {len(self.rows)} rows, "
            f"{len(self._columns)} columns built)"
        )


def column_store(relation) -> ColumnStore:
    """The relation's cached :class:`ColumnStore`, built on first use.

    The store is stowed in the relation's ``_colstore`` slot; objects
    without that slot (duck-typed relation stand-ins) still work, they just
    rebuild per call.
    """
    store = getattr(relation, "_colstore", None)
    if store is None:
        store = ColumnStore(relation)
        try:
            relation._colstore = store
        except AttributeError:  # no slot on a relation-like stand-in
            pass
    return store
