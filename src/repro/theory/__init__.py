"""Complexity artifacts: solvers, proof reductions, brute-force optima."""

from .hittingset import (
    HittingSetError,
    greedy_hitting_set,
    hitting_set_size,
    is_hitting_set,
    minimum_hitting_set,
)
from .optimal import (
    Move,
    all_moves,
    locally_checkable_after,
    minimum_shipment_count,
    minimum_shipments,
)
from .reductions import (
    HittingSetInstance,
    MHDInstance,
    MHRInstance,
    MRPInstance,
    MVDInstance,
    MVRInstance,
    SetCoverInstance,
    theorem1_cover_shipments,
    theorem1_reduction,
    theorem2_reduction,
    theorem3_reduction,
    theorem4_reduction,
    theorem8_reduction,
)
from .setcover import (
    SetCoverError,
    greedy_set_cover,
    has_cover_of_size,
    minimum_set_cover,
    set_cover_size,
)

__all__ = [
    "HittingSetError",
    "greedy_hitting_set",
    "hitting_set_size",
    "is_hitting_set",
    "minimum_hitting_set",
    "Move",
    "all_moves",
    "locally_checkable_after",
    "minimum_shipment_count",
    "minimum_shipments",
    "HittingSetInstance",
    "MHDInstance",
    "MHRInstance",
    "MRPInstance",
    "MVDInstance",
    "MVRInstance",
    "SetCoverInstance",
    "theorem1_cover_shipments",
    "theorem1_reduction",
    "theorem2_reduction",
    "theorem3_reduction",
    "theorem4_reduction",
    "theorem8_reduction",
    "SetCoverError",
    "greedy_set_cover",
    "has_cover_of_size",
    "minimum_set_cover",
    "set_cover_size",
]
