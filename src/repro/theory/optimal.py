"""Ground-truth optima for tiny instances (brute force).

Theorem 1 shows minimizing data shipment is NP-complete, so the Section IV
algorithms are heuristics.  For instances small enough to enumerate, this
module computes the true minimum set ``M`` of tuple shipments after which Σ
is locally checkable — used by tests to (a) confirm the heuristics are
never *better* than optimal (they cannot be) and are often close, and (b)
validate the forward direction of the reduction constructions.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

from ..core import CFD, detect_violations
from ..distributed import Cluster
from ..relational import Relation

#: a shipment ``m(dest, src, row)``: ship ``row`` to site ``dest`` from ``src``
Move = tuple[int, int, tuple]


def locally_checkable_after(
    cluster: Cluster, sigma: Sequence[CFD], moves: Iterable[Move]
) -> bool:
    """Whether ``Vioπ(Σ, D) = ⋃_i Vioπ(Σ, D'_i)`` with ``D'_i = D_i ∪ M(i)``."""
    schema = cluster.schema
    extra: dict[int, list[tuple]] = {}
    for dest, _src, row in moves:
        extra.setdefault(dest, []).append(row)

    expected = detect_violations(
        cluster.reconstruct(), list(sigma), collect_tuples=False
    ).violations
    found = set()
    for site in cluster.sites:
        rows = site.fragment.rows + extra.get(site.index, [])
        local = Relation(schema, rows, copy=False)
        found |= detect_violations(local, list(sigma), collect_tuples=False).violations
    return found == expected


def all_moves(cluster: Cluster) -> list[Move]:
    """Every possible single-tuple shipment in the cluster."""
    moves = []
    for site in cluster.sites:
        for row in site.fragment.rows:
            moves.extend(
                (dest, site.index, row)
                for dest in range(cluster.n_sites)
                if dest != site.index
            )
    return moves


def minimum_shipments(
    cluster: Cluster,
    sigma: Sequence[CFD],
    max_size: int | None = None,
    weight: Callable[[Move], int] | None = None,
) -> list[Move] | None:
    """An exact minimum-weight shipment set, or ``None`` within ``max_size``.

    Enumerates move subsets by increasing cardinality (or total ``weight``
    when given, still by cardinality layers), so the first feasible subset
    found at a layer is cardinality-minimal; among that layer the cheapest
    by weight is returned.  Exponential — tiny instances only.
    """
    sigma = list(sigma)
    if locally_checkable_after(cluster, sigma, []):
        return []
    moves = all_moves(cluster)
    limit = max_size if max_size is not None else len(moves)
    for size in range(1, limit + 1):
        feasible = [
            combo
            for combo in itertools.combinations(moves, size)
            if locally_checkable_after(cluster, sigma, combo)
        ]
        if feasible:
            if weight is None:
                return list(feasible[0])
            return list(min(feasible, key=lambda c: sum(map(weight, c))))
    return None


def minimum_shipment_count(
    cluster: Cluster, sigma: Sequence[CFD], max_size: int | None = None
) -> int | None:
    """Size of a minimum shipment set (``None`` if not found within bounds)."""
    result = minimum_shipments(cluster, sigma, max_size=max_size)
    return None if result is None else len(result)
