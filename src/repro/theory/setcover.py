"""Minimum set cover: the source problem of the paper's reductions.

All four NP-completeness proofs (Theorems 1–4) reduce from MINIMUM SET
COVER (the appendix uses the 3-element-subsets variant, still NP-complete
[15]).  This module provides an exact branch-and-bound solver for the small
instances the reduction tests use, plus the classical ``ln n`` greedy.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence


class SetCoverError(ValueError):
    """Raised when no cover exists (the subsets do not span the universe)."""


def _normalize(
    universe: Iterable[Hashable],
    subsets: Mapping[Hashable, Iterable[Hashable]] | Sequence[Iterable[Hashable]],
) -> tuple[set, dict]:
    universe = set(universe)
    if isinstance(subsets, Mapping):
        named = {name: set(s) & universe for name, s in subsets.items()}
    else:
        named = {i: set(s) & universe for i, s in enumerate(subsets)}
    if universe - set().union(*named.values()) if named else universe:
        raise SetCoverError("subsets do not cover the universe")
    return universe, named


def greedy_set_cover(
    universe: Iterable[Hashable],
    subsets: Mapping[Hashable, Iterable[Hashable]] | Sequence[Iterable[Hashable]],
) -> list[Hashable]:
    """Greedy cover: repeatedly take the subset covering most remaining."""
    universe, named = _normalize(universe, subsets)
    remaining = set(universe)
    cover: list[Hashable] = []
    while remaining:
        best = max(named, key=lambda name: (len(named[name] & remaining), -hash(name) % 97))
        gain = named[best] & remaining
        if not gain:
            raise SetCoverError("subsets do not cover the universe")
        cover.append(best)
        remaining -= gain
    return cover


def minimum_set_cover(
    universe: Iterable[Hashable],
    subsets: Mapping[Hashable, Iterable[Hashable]] | Sequence[Iterable[Hashable]],
) -> list[Hashable]:
    """An exact minimum cover via branch and bound.

    Branches on the uncovered element with the fewest candidate subsets;
    the greedy solution provides the initial upper bound.
    """
    universe, named = _normalize(universe, subsets)
    if not universe:
        return []
    coverers: dict[Hashable, list[Hashable]] = {
        element: [name for name, s in named.items() if element in s]
        for element in universe
    }
    best: list[Hashable] = greedy_set_cover(universe, named)

    def search(remaining: set, chosen: list[Hashable]) -> None:
        nonlocal best
        if not remaining:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        if len(chosen) + 1 >= len(best):
            # Even one more subset cannot beat the incumbent unless it
            # finishes the cover; cheap lower bound.
            if len(chosen) + 1 < len(best) + 1:
                for name in coverers[next(iter(remaining))]:
                    if remaining <= named[name] and len(chosen) + 1 < len(best):
                        best = chosen + [name]
                        return
            return
        pivot = min(remaining, key=lambda element: len(coverers[element]))
        for name in coverers[pivot]:
            search(remaining - named[name], chosen + [name])

    search(set(universe), [])
    return best


def set_cover_size(
    universe: Iterable[Hashable],
    subsets: Mapping[Hashable, Iterable[Hashable]] | Sequence[Iterable[Hashable]],
) -> int:
    """Size of a minimum cover."""
    return len(minimum_set_cover(universe, subsets))


def has_cover_of_size(
    universe: Iterable[Hashable],
    subsets: Mapping[Hashable, Iterable[Hashable]] | Sequence[Iterable[Hashable]],
    k: int,
) -> bool:
    """The decision problem MSC: does a cover of size ``<= k`` exist?"""
    try:
        return set_cover_size(universe, subsets) <= k
    except SetCoverError:
        return False
