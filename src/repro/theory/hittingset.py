"""Minimum hitting set — the source problem of Theorem 8's reduction.

HITTING SET is the dual of SET COVER: hitting every subset of a collection
``C ⊆ 2^X`` with the fewest elements of ``X`` is covering the universe
``C`` with the element-indexed sets ``{C_i : x ∈ C_i}``.  We solve through
that duality with the exact solver of :mod:`repro.theory.setcover`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .setcover import SetCoverError, greedy_set_cover, minimum_set_cover


class HittingSetError(ValueError):
    """Raised when no hitting set exists (some subset is empty)."""


def _dualize(
    elements: Iterable[Hashable], collection: Sequence[Iterable[Hashable]]
) -> tuple[list[frozenset], dict]:
    subsets = [frozenset(s) for s in collection]
    if any(not s for s in subsets):
        raise HittingSetError("an empty subset cannot be hit")
    elements = set(elements) | set().union(*subsets) if subsets else set(elements)
    duals = {
        x: {i for i, s in enumerate(subsets) if x in s} for x in elements
    }
    return subsets, duals


def minimum_hitting_set(
    elements: Iterable[Hashable], collection: Sequence[Iterable[Hashable]]
) -> list[Hashable]:
    """An exact minimum hitting set."""
    subsets, duals = _dualize(elements, collection)
    if not subsets:
        return []
    try:
        return minimum_set_cover(range(len(subsets)), duals)
    except SetCoverError as exc:  # pragma: no cover - guarded by _dualize
        raise HittingSetError(str(exc)) from exc


def greedy_hitting_set(
    elements: Iterable[Hashable], collection: Sequence[Iterable[Hashable]]
) -> list[Hashable]:
    """Greedy hitting set (hit the most unhit subsets first)."""
    subsets, duals = _dualize(elements, collection)
    if not subsets:
        return []
    return greedy_set_cover(range(len(subsets)), duals)


def hitting_set_size(
    elements: Iterable[Hashable], collection: Sequence[Iterable[Hashable]]
) -> int:
    """Size of a minimum hitting set."""
    return len(minimum_hitting_set(elements, collection))


def is_hitting_set(
    candidate: Iterable[Hashable], collection: Sequence[Iterable[Hashable]]
) -> bool:
    """Whether ``candidate`` intersects every subset of the collection."""
    chosen = set(candidate)
    return all(chosen & set(s) for s in collection)
