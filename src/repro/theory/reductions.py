"""The NP-hardness reduction constructions of the paper's appendix.

These build, from a MINIMUM SET COVER or HITTING SET instance, the exact
detection/refinement instances used in the proofs of Theorems 1–4 and 8.
They serve three purposes: executable documentation of the proofs,
generators of adversarial test inputs, and — where feasible — machine
checks of the reductions' forward directions:

* Theorem 1 (horizontal, min shipment): given a cover we materialize the
  proof's shipment set ``M`` and verify that Σ becomes locally checkable
  with byte size exactly ``K'`` (:func:`theorem1_cover_shipments`).
* Theorem 8 (minimum refinement): the construction is small enough that
  the *exact* refinement solver can be compared against the exact hitting
  set size — the full equivalence of the reduction
  (:func:`theorem8_reduction`).
* Theorems 2–4 are materialized structurally (fragments, Σ, bounds) with
  their proof-prescribed shapes.

Values are padded to a fixed width ``l`` and the special value ``c`` has
width ``l' = 6·m·l + 1``, mirroring the size gadget that forces the
intended shipment direction in the proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import CFD, parse_cfd
from ..distributed import Cluster
from ..partition.vertical import VerticalPartition
from ..relational import Relation, Schema
from .optimal import Move


@dataclass(frozen=True)
class SetCoverInstance:
    """An MSC instance ``(X, C, K)`` with 3-element subsets."""

    elements: tuple[str, ...]
    subsets: tuple[tuple[str, str, str], ...]
    k: int

    def __post_init__(self) -> None:
        for subset in self.subsets:
            if len(set(subset)) != 3:
                raise ValueError(f"subset {subset} must have 3 distinct elements")
            unknown = set(subset) - set(self.elements)
            if unknown:
                raise ValueError(f"subset {subset} uses unknown elements {unknown}")


@dataclass(frozen=True)
class HittingSetInstance:
    """A HITTING SET instance ``(X, C, K)``."""

    elements: tuple[str, ...]
    subsets: tuple[tuple[str, ...], ...]
    k: int


# ---------------------------------------------------------------------------
# Theorem 1: MSC -> minimum horizontal detection (MHD)
# ---------------------------------------------------------------------------


@dataclass
class MHDInstance:
    """The Theorem 1 artifact: Σ, a horizontally partitioned ``D`` and K'."""

    cluster: Cluster
    sigma: list[CFD]
    k_prime: int
    value_width: int
    c_width: int
    v_site: int
    u_site: int
    element_of_site: dict[int, tuple[str, str, str]]

    def move_bytes(self, move: Move) -> int:
        """Shipment size of one tuple, in padded symbols."""
        _dest, _src, row = move
        return sum(len(str(v)) for v in row)


def _pad(value: str, width: int) -> str:
    if len(value) > width:
        raise ValueError(f"value {value!r} wider than the padding width {width}")
    return value.ljust(width, "#")


def theorem1_reduction(msc: SetCoverInstance) -> MHDInstance:
    """Build the MHD instance of the Theorem 1 proof."""
    m = len(msc.elements)
    n = len(msc.subsets)
    raw_values = list(msc.elements) + [f"p_{x}" for x in msc.elements]
    raw_values += ["b", "q", "d"] + [str(i) for i in range(n + 2)]
    width = max(len(v) for v in raw_values)

    def pad(v: str) -> str:
        return _pad(v, width)

    elements = [pad(x) for x in msc.elements]
    primed = [pad(f"p_{x}") for x in msc.elements]
    b, b_prime, d = pad("b"), pad("q"), pad("d")
    c_width = 6 * m * width + 1
    c = "c" * c_width
    xu_values = elements + primed

    schema = Schema(
        "T1", ["A1", "A2", "A3", "Bu", "B", "N"],
        key=["A1", "A2", "A3", "Bu", "B", "N"],
    )

    fragments: list[Relation] = []
    names: list[str] = []
    element_of_site: dict[int, tuple[str, str, str]] = {}
    for i, subset in enumerate(msc.subsets):
        a1, a2, a3 = sorted(subset)
        row = (pad(a1), pad(a2), pad(a3), d, b, pad(str(i + 1)))
        fragments.append(Relation(schema, [row]))
        names.append(f"D{i + 1}")
        element_of_site[i] = (pad(a1), pad(a2), pad(a3))

    def block(b_value: str, n_value: str) -> Relation:
        rows = []
        for xa in elements:
            for xu in xu_values:
                rows.append((xa, c, c, xu, b_value, n_value))
                rows.append((c, xa, c, xu, b_value, n_value))
                rows.append((c, c, xa, xu, b_value, n_value))
        return Relation(schema, rows)

    fragments.append(block(b_prime, pad("0")))
    names.append("V")
    fragments.append(block(b, pad(str(n + 1))))
    names.append("U")

    cluster = Cluster.from_fragments(fragments, names=names)
    sigma = [
        parse_cfd("([A1] -> [B])", name="A1->B"),
        parse_cfd("([A2] -> [B])", name="A2->B"),
        parse_cfd("([A3] -> [B])", name="A3->B"),
        parse_cfd("([Bu] -> [B])", name="Bu->B"),
    ]
    k_prime = 2 * m * (2 * c_width + 4 * width) + msc.k * 6 * width
    return MHDInstance(
        cluster=cluster,
        sigma=sigma,
        k_prime=k_prime,
        value_width=width,
        c_width=c_width,
        v_site=n,
        u_site=n + 1,
        element_of_site=element_of_site,
    )


def theorem1_cover_shipments(
    instance: MHDInstance, cover: Sequence[int]
) -> list[Move]:
    """The proof's forward construction: a cover induces shipments ``M``.

    Ships (a) the tuple of each ``D_i`` in the cover to the site of ``V``
    and (b) ``2m`` tuples of ``U`` — for every element, one per position it
    does not occupy in its covering subset, carrying the ``2m`` distinct
    ``Bu`` values — after which Σ is locally checkable at ``V``.
    """
    cluster = instance.cluster
    v = instance.v_site
    u_fragment = cluster.fragment(instance.u_site)
    moves: list[Move] = []

    # (a) cover fragments
    position_of: dict[str, int] = {}
    for i in cover:
        row = cluster.fragment(i).rows[0]
        moves.append((v, i, row))
        for position in range(3):
            position_of.setdefault(row[position], position)

    uncovered = [
        x
        for site, triple in instance.element_of_site.items()
        for x in triple
        if x not in position_of
    ]
    if uncovered:
        raise ValueError(f"not a cover: elements {sorted(set(uncovered))} missed")

    # (b) U tuples: element x at both positions it does not occupy in its
    # covering subset; assign the 2m distinct Bu values bijectively.
    u_index = {
        (row[0], row[1], row[2], row[3]): row for row in u_fragment.rows
    }
    xu_values = sorted({row[3] for row in u_fragment.rows})
    xu_iter = iter(xu_values)
    c = "c" * instance.c_width
    for x, position in sorted(position_of.items()):
        for other in range(3):
            if other == position:
                continue
            pattern = [c, c, c]
            pattern[other] = x
            xu = next(xu_iter)
            row = u_index[(pattern[0], pattern[1], pattern[2], xu)]
            moves.append((v, instance.u_site, row))
    return moves


# ---------------------------------------------------------------------------
# Theorem 2: MSC -> minimum vertical detection (structural artifact)
# ---------------------------------------------------------------------------


@dataclass
class MVDInstance:
    """The Theorem 2 artifact: Σ and a two-fragment vertical partition."""

    partition: VerticalPartition
    instance: Relation
    sigma: list[CFD]
    k_prime: int


def theorem2_reduction(msc: SetCoverInstance) -> MVDInstance:
    """Build the MVD instance of the Theorem 2 proof (structure only).

    Same data as Theorem 1 plus a key and a wide ``W`` column forcing the
    shipment direction, vertically split into
    ``R1(A1, A2, A3, Bu, key)`` and ``R2(B, key, W)``.
    """
    mhd = theorem1_reduction(msc)
    m = len(msc.elements)
    base = mhd.cluster.reconstruct()
    w = "w" * (sum(len(str(v)) for row in base.rows for v in row) + 1)
    schema = Schema(
        "T2", ["key", "A1", "A2", "A3", "Bu", "B", "W"], key=["key"]
    )
    rows = [
        (i,) + row[:5] + (w,) for i, row in enumerate(base.rows)
    ]
    instance = Relation(schema, rows)
    partition = VerticalPartition(
        schema, {"R1": ["key", "A1", "A2", "A3", "Bu"], "R2": ["key", "B", "W"]}
    )
    k_prime = 5 * m * (2 * mhd.c_width + 4 * mhd.value_width) + msc.k * 6 * mhd.value_width
    return MVDInstance(partition, instance, mhd.sigma, k_prime)


# ---------------------------------------------------------------------------
# Theorem 3: MSC -> minimum horizontal response time (structural artifact)
# ---------------------------------------------------------------------------


@dataclass
class MHRInstance:
    """The Theorem 3 artifact: one FD over (A, B), n+1 fragments."""

    cluster: Cluster
    sigma: list[CFD]
    k_prime: int


def theorem3_reduction(msc: SetCoverInstance) -> MHRInstance:
    """Build the MHR instance of the Theorem 3 proof."""
    m = len(msc.elements)
    schema = Schema("T3", ["A", "B"], key=["A", "B"])
    fragments = []
    names = []
    for i, subset in enumerate(msc.subsets):
        rows = [(x, h) for x in sorted(subset) for h in range(1, m + 1)]
        fragments.append(Relation(schema, rows))
        names.append(f"D{i + 1}")
    fragments.append(
        Relation(schema, [(x, m + 1) for x in msc.elements])
    )
    names.append(f"D{len(msc.subsets) + 1}")
    cluster = Cluster.from_fragments(fragments, names=names)
    sigma = [parse_cfd("([A] -> [B])", name="A->B")]
    return MHRInstance(cluster, sigma, msc.k + m + 1)


# ---------------------------------------------------------------------------
# Theorem 4: MSC -> minimum vertical response time (structural artifact)
# ---------------------------------------------------------------------------


@dataclass
class MVRInstance:
    """The Theorem 4 artifact: m²+m+1 attributes, n+1 vertical fragments."""

    partition: VerticalPartition
    instance: Relation
    sigma: list[CFD]
    k_prime: int


def theorem4_reduction(msc: SetCoverInstance) -> MVRInstance:
    """Build the MVR instance of the Theorem 4 proof."""
    m = len(msc.elements)
    element_pos = {x: j + 1 for j, x in enumerate(msc.elements)}
    a_attrs = [f"A{j}" for j in range(1, m + 1)]
    b_attrs = [f"B{j}" for j in range(1, m * m + 1)]
    schema = Schema("T4", ["ID"] + a_attrs + b_attrs, key=["ID"])
    rows = [
        (1,) + (1,) * m + (1,) * (m * m),
        (2,) + (1,) * m + (2,) * (m * m),
    ]
    instance = Relation(schema, rows)
    attribute_sets = {}
    for i, subset in enumerate(msc.subsets):
        attribute_sets[f"V{i + 1}"] = ["ID"] + [
            f"A{element_pos[x]}" for x in sorted(subset, key=element_pos.get)
        ]
    attribute_sets[f"V{len(msc.subsets) + 1}"] = ["ID"] + b_attrs
    partition = VerticalPartition(schema, attribute_sets)
    sigma = [
        CFD(a_attrs, b_attrs, name="A*->B*"),
    ]
    return MVRInstance(partition, instance, sigma, msc.k + 1)


# ---------------------------------------------------------------------------
# Theorem 8: HITTING SET -> minimum refinement (MRP)
# ---------------------------------------------------------------------------


@dataclass
class MRPInstance:
    """The Theorem 8 artifact: Σ and an (n+1)-fragment vertical partition."""

    partition: VerticalPartition
    sigma: list[CFD]
    k: int


def theorem8_reduction(hs: HittingSetInstance) -> MRPInstance:
    """Build the MRP instance of the Theorem 8 proof.

    Schema: a key, one attribute ``A_x`` per element, attributes
    ``E_1..E_n``; fragments ``R_i = {key} ∪ {A_x : x ∈ C_i}`` plus
    ``R_0 = {key, E_1..E_n}``; Σ holds ``A_x → A_y`` for every ordered pair
    and ``E_i → A_x`` for every ``x ∈ C_i``.  A minimum augmentation has
    the size of a minimum hitting set.
    """
    a_attr = {x: f"A_{x}" for x in hs.elements}
    e_attrs = [f"E{i + 1}" for i in range(len(hs.subsets))]
    schema = Schema(
        "T8", ["key"] + [a_attr[x] for x in hs.elements] + e_attrs, key=["key"]
    )
    attribute_sets: dict[str, list[str]] = {"R0": ["key"] + e_attrs}
    for i, subset in enumerate(hs.subsets):
        attribute_sets[f"R{i + 1}"] = ["key"] + [a_attr[x] for x in subset]
    partition = VerticalPartition(schema, attribute_sets)

    sigma: list[CFD] = []
    for x in hs.elements:
        for y in hs.elements:
            if x != y:
                sigma.append(
                    CFD([a_attr[x]], [a_attr[y]], name=f"{a_attr[x]}->{a_attr[y]}")
                )
    for i, subset in enumerate(hs.subsets):
        for x in subset:
            sigma.append(
                CFD([e_attrs[i]], [a_attr[x]], name=f"{e_attrs[i]}->{a_attr[x]}")
            )
    return MRPInstance(partition, sigma, hs.k)
