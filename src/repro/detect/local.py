"""Local validation in horizontal fragments (Section IV-A).

Two cases avoid data shipment altogether:

* **Constant CFDs** (Proposition 5): a single tuple suffices to witness a
  violation, so each site checks its own fragment.
* **Inapplicable fragments**: when the fragmentation predicate ``F_i`` is
  inconsistent with the pattern condition ``F_φ`` (the constants of the
  pattern's LHS), no tuple of ``D_i`` can match the pattern, so the site
  is skipped for that pattern.
"""

from __future__ import annotations

from typing import Iterable

from ..core import CFD, VariableCFD, is_wildcard, normalize
from ..core.epatterns import is_predicate
from ..distributed import Site
from ..relational import compatible_with_bindings


def is_constant_cfd(cfd: CFD) -> bool:
    """Whether every pattern tuple binds every RHS attribute to a constant.

    Such CFDs are exactly those checkable locally in *any* horizontal
    partition (Proposition 5).
    """
    normalized = normalize(cfd)
    return not normalized.variables


def locally_checkable(cfd: CFD) -> bool:
    """Alias of :func:`is_constant_cfd` for horizontal partitions."""
    return is_constant_cfd(cfd)


def pattern_condition(
    variable: VariableCFD, ordinal: int
) -> dict[str, object]:
    """``F_φ`` for one pattern row: its LHS constants as attribute bindings."""
    row = variable.patterns[ordinal]
    return {
        attr: value
        for attr, value in zip(variable.lhs, row)
        if not is_wildcard(value) and not is_predicate(value)
    }


def applicable_patterns(site: Site, variable: VariableCFD) -> list[int]:
    """Pattern ordinals whose ``F_i ∧ F_φ`` is satisfiable at ``site``.

    Sites without a known fragmentation predicate participate in every
    pattern (the test must stay sound: prune only on certain emptiness).
    """
    if site.predicate is None:
        return list(range(len(variable.patterns)))
    return [
        ordinal
        for ordinal in range(len(variable.patterns))
        if compatible_with_bindings(
            site.predicate, pattern_condition(variable, ordinal)
        )
    ]


def applicable_sites(
    sites: Iterable[Site], variable: VariableCFD
) -> list[Site]:
    """Sites where at least one pattern of the CFD may match."""
    return [site for site in sites if applicable_patterns(site, variable)]
