"""The naive baseline of Section III-A: ship everything to one site.

Partition kind: horizontal.  Shipping strategy: none worth the name —
ships every fragment (whole tuples, all attributes, uncoded) to a coordinator,
reconstructs ``D`` and runs the centralized detector (the fused columnar
engine, via the :func:`repro.core.detect_violations` dispatcher).  Exists
to quantify how much traffic the real algorithms save; the paper dismisses
it as incurring "excessive network traffic".
"""

from __future__ import annotations

from typing import Iterable

from ..core import CFD, detect_violations
from ..distributed import Cluster, CostBreakdown, DetectionOutcome, ShipmentLog
from ..relational import Relation
from . import base


def naive_detect(
    cluster: Cluster, cfds: CFD | Iterable[CFD], coordinator: int | None = None
) -> DetectionOutcome:
    """Reconstruct ``D`` at one site and detect centrally.

    The coordinator defaults to the largest site (least traffic for this
    baseline).
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)

    if coordinator is None:
        sizes = [len(site.fragment) for site in cluster.sites]
        coordinator = max(range(len(sizes)), key=sizes.__getitem__)

    log = ShipmentLog()
    width = len(cluster.schema)
    rows: list[tuple] = []
    for site in cluster.sites:
        rows.extend(site.fragment.rows)
        if site.index != coordinator and len(site.fragment):
            log.ship(
                coordinator,
                site.index,
                len(site.fragment),
                len(site.fragment) * width,
                tag="naive",
            )

    model = cluster.cost_model
    transfer = model.transfer_time(log.outgoing_by_source())
    relation = Relation(cluster.schema, rows, copy=False)
    report = detect_violations(relation, cfds, collect_tuples=True)
    check = model.check_time(model.check_ops(len(rows), n_queries=len(cfds)))

    cost = CostBreakdown(stages=[base.stage(0.0, transfer, check)])
    return DetectionOutcome(
        algorithm="NAIVE",
        report=report,
        shipments=log,
        cost=cost,
        details={"coordinator": coordinator},
    )
