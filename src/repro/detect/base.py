"""Shared plumbing of the horizontal detection algorithms (Section IV).

All three single-CFD algorithms follow the same skeleton:

1. normalize the CFD; check its constant normal forms locally at every
   site (Proposition 5 — no shipment);
2. for each variable normal form, every (applicable) site scans its
   fragment once, partitions the matching tuples with the σ function of
   Section IV-B and gathers the ``lstat`` statistics;
3. the statistics are exchanged (control traffic), coordinators are chosen
   by an algorithm-specific rule, the ``(X, A)`` projections are shipped,
   and each coordinator runs the local GROUP BY detection.

This module implements the skeleton; the algorithm modules plug in their
coordinator-selection strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import (
    ConstantCFD,
    CFD,
    PatternIndex,
    VariableCFD,
    ViolationReport,
    detect_constants,
    detect_variables,
    normalize,
)
from ..distributed import (
    Cluster,
    CostBreakdown,
    CostModel,
    ShipmentLog,
    Site,
    StageTimes,
)
from ..relational import Relation, Schema, column_store, compatible_with_bindings
from .local import applicable_patterns


@dataclass
class SitePartition:
    """One site's share of the σ partition of a variable CFD.

    ``buckets[l]`` holds the ``(X, A)`` projections of the tuples ``t`` of
    the site's fragment with ``σ(t) = l`` (``H_i^l`` in the paper);
    ``lstat[l] = |H_i^l|`` is the statistic the site broadcasts.
    """

    site: Site
    buckets: list[list[tuple]]
    participated: bool

    @property
    def lstat(self) -> list[int]:
        return [len(bucket) for bucket in self.buckets]


def ship_projection_schema(schema: Schema, variable: VariableCFD) -> Schema:
    """Schema of the shipped ``π_{X ∪ A}`` projection."""
    return schema.project(variable.attributes)


def partition_fragment(
    fragment: Relation,
    variable: VariableCFD,
    index: PatternIndex,
    intern: dict[tuple, tuple] | None = None,
) -> list[list[tuple]]:
    """σ-partition one fragment: per-pattern buckets of ``π_{X ∪ A}`` rows.

    Columnar: the fragment's cached composite key column assigns each row
    the ordinal of its distinct ``X ∪ A`` combination, σ is probed once per
    distinct combination, and each row costs two list lookups.  Fragments
    checked against several CFDs (or several algorithms) reuse the same
    encoded columns.

    ``intern`` is an optional cross-fragment intern table: distinct
    projections are canonicalized through it once per fragment, so equal
    rows shipped from different sites arrive at the coordinator as one
    shared tuple object (within one fragment the key column already
    interns — every row of a group reuses the group's value tuple).
    """
    buckets: list[list[tuple]] = [[] for _ in variable.patterns]
    if not fragment.rows:
        return buckets
    key = column_store(fragment).key_column(variable.attributes)
    lhs_width = len(variable.lhs)
    values = key.values
    ordinals = [index.first_match(combo[:lhs_width]) for combo in values]
    if intern is not None:
        values = [
            intern.setdefault(combo, combo) if ordinals[g] is not None else combo
            for g, combo in enumerate(values)
        ]
    for g in key.codes:
        ordinal = ordinals[g]
        if ordinal is not None:
            buckets[ordinal].append(values[g])
    return buckets


def partition_site(
    site: Site,
    variable: VariableCFD,
    index: PatternIndex,
    intern: dict[tuple, tuple] | None = None,
) -> SitePartition:
    """Compute ``σ_i`` at one site: buckets ``H_i^l`` and their sizes.

    Applies the Section IV-A pruning rule first: when the site's
    fragmentation predicate is incompatible with every pattern of the CFD,
    the site does not participate at all (no scan, no statistics).
    """
    if not applicable_patterns(site, variable):
        empty: list[list[tuple]] = [[] for _ in variable.patterns]
        return SitePartition(site, empty, participated=False)
    return SitePartition(
        site,
        partition_fragment(site.fragment, variable, index, intern),
        participated=True,
    )


def partition_cluster(
    cluster: Cluster, variable: VariableCFD
) -> tuple[list[SitePartition], PatternIndex]:
    """Run :func:`partition_site` at every site of the cluster.

    One intern table is shared across the sites, so the ``(X, A)``
    projections later merged at coordinators are deduplicated to one tuple
    object per distinct combination cluster-wide.
    """
    index = PatternIndex(variable.patterns)
    intern: dict[tuple, tuple] = {}
    partitions = [
        partition_site(site, variable, index, intern) for site in cluster.sites
    ]
    return partitions, index


def scan_stage_time(
    cluster: Cluster, partitions: Sequence[SitePartition]
) -> float:
    """Time of the parallel statistics scan: slowest participating site."""
    model = cluster.cost_model
    times = [
        model.scan_time(len(part.site.fragment))
        for part in partitions
        if part.participated
    ]
    return max(times, default=0.0)


def exchange_statistics(cluster: Cluster, log: ShipmentLog) -> None:
    """Account the all-to-all ``lstat`` broadcast as control traffic."""
    n = cluster.n_sites
    log.record_control(n * (n - 1))


def ship_buckets(
    cluster: Cluster,
    partitions: Sequence[SitePartition],
    coordinators: Sequence[int],
    log: ShipmentLog,
    tag: str,
    width: int,
) -> list[list[tuple]]:
    """Ship every bucket to its pattern's coordinator; return merged data.

    Returns ``merged[l]`` = the rows of ``⋃_i H_i^l`` as available at the
    coordinator of pattern ``l`` (local rows are not shipped, only counted
    into the merged relation).
    """
    merged: list[list[tuple]] = [[] for _ in coordinators]
    for part in partitions:
        source = part.site.index
        for ordinal, bucket in enumerate(part.buckets):
            if not bucket:
                continue
            dest = coordinators[ordinal]
            if dest != source:
                log.ship(
                    dest,
                    source,
                    len(bucket),
                    len(bucket) * width,
                    tag=f"{tag}#p{ordinal}",
                )
            merged[ordinal].extend(bucket)
    return merged


def local_constant_checks(
    cluster: Cluster, constants: Sequence[ConstantCFD]
) -> ViolationReport:
    """Proposition 5: validate constant CFDs at each site, no shipment.

    Each site runs one fused pass over its fragment for all the constant
    forms applicable there, instead of one scan per (site, form).
    """
    report = ViolationReport()
    for site in cluster.sites:
        applicable = [
            constant
            for constant in constants
            # F_i ∧ F_φ unsatisfiable: φ not applicable at this site
            if site.predicate is None
            or compatible_with_bindings(site.predicate, constant.condition())
        ]
        if applicable:
            report.merge(
                detect_constants(site.fragment, applicable, collect_tuples=True)
            )
    return report


def coordinator_check(
    cluster: Cluster,
    variable: VariableCFD,
    coordinators: Sequence[int],
    merged: Sequence[Sequence[tuple]],
) -> tuple[ViolationReport, float]:
    """Run the per-pattern detection at each coordinator.

    Returns the merged report and the check-stage time: coordinators work
    in parallel, so the stage lasts as long as the busiest site.
    """
    model: CostModel = cluster.cost_model
    schema = ship_projection_schema(cluster.schema, variable)
    report = ViolationReport()
    ops_per_site: dict[int, float] = {}
    for ordinal, rows in enumerate(merged):
        if not rows:
            continue
        single = VariableCFD(
            source=variable.source,
            lhs=variable.lhs,
            rhs=variable.rhs,
            patterns=(variable.patterns[ordinal],),
        )
        relation = Relation(schema, rows, copy=False)
        report.merge(detect_variables(relation, [single], collect_tuples=False))
        site = coordinators[ordinal]
        ops_per_site[site] = ops_per_site.get(site, 0.0) + model.check_ops(
            len(rows)
        )
    check_time = max(
        (model.check_time(ops) for ops in ops_per_site.values()), default=0.0
    )
    return report, check_time


def normalize_for_detection(cfd: CFD):
    """Normalize and sanity-check a CFD for the distributed algorithms."""
    return normalize(cfd)


def empty_outcome_parts() -> tuple[ShipmentLog, CostBreakdown]:
    return ShipmentLog(), CostBreakdown()


def stage(scan: float, transfer: float, check: float) -> StageTimes:
    return StageTimes(scan=scan, transfer=transfer, check=check)
