"""Shared plumbing of the horizontal detection algorithms (Section IV).

All three single-CFD algorithms follow the same skeleton:

1. normalize the CFD; check its constant normal forms locally at every
   site (Proposition 5 — no shipment);
2. for each variable normal form, every (applicable) site scans its
   fragment once, partitions the matching tuples with the σ function of
   Section IV-B and gathers the ``lstat`` statistics;
3. the statistics are exchanged (control traffic), coordinators are chosen
   by an algorithm-specific rule, the ``(X, A)`` projections are shipped,
   and each coordinator runs the local GROUP BY detection.

This module implements the skeleton; the algorithm modules plug in their
coordinator-selection strategies.

Since PR 3 the skeleton executes on two subsystems layered over the
columnar backend:

* **Parallel fragment scans** — step 2 runs one
  :func:`partition_fragment_summary` per site through
  :func:`repro.core.parallel.map_fragments`, concurrently when
  ``REPRO_WORKERS`` asks for it (threads by default,
  ``REPRO_PARALLEL=process`` for fragment-resident worker processes).
  Results come back in site order, so parallel runs are bit-identical to
  serial ones.
* **Shared dictionaries** — each cluster keeps one
  :class:`~repro.relational.shareddict.SharedPairDictionary` per variable
  CFD.  A fragment's scan returns its *local* distinct ``X ∪ A``
  combinations once (the local dictionary, shipped like the ``lstat``
  control traffic); afterwards every bucket crosses sites as ``(x_code,
  y_code)`` int pairs, and :func:`coordinator_check` detects conflicts
  directly on the code pairs, decoding only the violating ``X`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core import (
    ConstantCFD,
    CFD,
    PatternIndex,
    VariableCFD,
    Violation,
    ViolationReport,
    detect_constants,
    normalize,
    pattern_index,
)
from ..core.parallel import map_fragments
from ..distributed import (
    Cluster,
    CostBreakdown,
    CostModel,
    ShipmentLog,
    Site,
    StageTimes,
)
from ..relational import (
    Relation,
    Schema,
    SharedPairDictionary,
    column_store,
    compatible_with_bindings,
    shared_dict_on,
)
from .local import applicable_patterns


@dataclass
class CodedBucket:
    """One σ bucket of one fragment, in dictionary-coded form.

    ``count`` is ``|H_i^l|`` — how many of the fragment's rows fall in the
    bucket (the statistic broadcast as ``lstat`` and the number of rows a
    shipment of this bucket counts).  ``codes`` lists the *local* distinct
    ``X ∪ A`` combination codes present, in the fragment's first-seen
    order; the coordinator translates them to cluster-global ``(x_code,
    y_code)`` pairs through the site's
    :class:`~repro.relational.shareddict.SharedPairDictionary` entry.
    """

    count: int = 0
    codes: list[int] = field(default_factory=list)

    def __len__(self) -> int:  # rows in the bucket, as the paper counts
        return self.count


@dataclass
class SitePartition:
    """One site's share of the σ partition of a variable CFD.

    ``buckets[l]`` summarizes the tuples ``t`` of the site's fragment with
    ``σ(t) = l`` (``H_i^l`` in the paper); ``lstat[l] = |H_i^l|`` is the
    statistic the site broadcasts.  ``pairs`` maps the fragment's local
    combination codes to the cluster-global ``(x_code, y_code)`` pairs of
    ``shared`` — the translation the coordinator applies when merging.
    """

    site: Site
    buckets: list[CodedBucket]
    participated: bool
    pairs: list[tuple[int, int]] = field(default_factory=list)
    shared: SharedPairDictionary | None = None

    @property
    def lstat(self) -> list[int]:
        return [bucket.count for bucket in self.buckets]


@dataclass
class MergedBucket:
    """One pattern's merged bucket ``⋃_i H_i^l`` as seen by its coordinator.

    ``rows`` counts the member tuples (what the check-cost model charges);
    ``pairs`` holds the received distinct ``(x_code, y_code)`` pairs — the
    code arrays the coordinator-side merge runs on.
    """

    rows: int = 0
    pairs: list[tuple[int, int]] = field(default_factory=list)


def ship_projection_schema(schema: Schema, variable: VariableCFD) -> Schema:
    """Schema of the shipped ``π_{X ∪ A}`` projection."""
    return schema.project(variable.attributes)


def group_occupancy(fragment: Relation, attributes: Sequence[str]) -> list[int]:
    """Rows per distinct combination of ``attributes`` (cached per store).

    A pure function of the fragment's composite key column, so it is
    memoized in the store's scratch space: repeat detections skip the
    per-row pass entirely.
    """
    store = column_store(fragment)
    key = store.key_column(attributes)
    cache_key = ("occupancy", tuple(attributes))
    cached = store.scratch.get(cache_key)
    if cached is not None:
        return cached
    codes_arr = key.codes_array()
    if codes_arr is not None:
        import numpy as np

        occupancy = np.bincount(codes_arr, minlength=key.n_groups).tolist()
    else:
        occupancy = [0] * key.n_groups
        for g in key.codes:
            occupancy[g] += 1
    store.scratch[cache_key] = occupancy
    return occupancy


def partition_fragment_summary(
    fragment: Relation,
    variable: VariableCFD,
    need_values: bool = True,
    index: PatternIndex | None = None,
):
    """σ-partition one fragment into dictionary-coded bucket summaries.

    The worker-side scan of step 2: the fragment's cached composite key
    column assigns each row the ordinal of its distinct ``X ∪ A``
    combination, σ is probed once per *distinct* combination, and each
    bucket is summarized as (row count, distinct local codes present).

    Returns ``(counts, bucket_codes, values)`` where ``values`` is the
    fragment's local dictionary (distinct combinations, first-seen order)
    when ``need_values`` — the coordinator asks for it only the first time
    it sees this fragment; afterwards codes suffice.  Runs unchanged in a
    thread, in a fragment-resident worker process, or inline.
    """
    n_patterns = len(variable.patterns)
    counts = [0] * n_patterns
    bucket_codes: list[list[int]] = [[] for _ in range(n_patterns)]
    if not fragment.rows:
        return counts, bucket_codes, [] if need_values else None
    if index is None:
        # memoized per tableau — worker processes build each σ trie once
        # and reuse it across work orders
        index = pattern_index(variable.patterns)
    key = column_store(fragment).key_column(variable.attributes)
    occupancy = group_occupancy(fragment, variable.attributes)
    lhs_width = len(variable.lhs)
    first_match = index.first_match
    for g, combo in enumerate(key.values):
        occ = occupancy[g]
        if not occ:
            # phantom group: a delete-derived store may keep dictionary
            # entries no surviving row references (repro.relational.delta);
            # shipping their codes would fabricate conflicts
            continue
        ordinal = first_match(combo[:lhs_width])
        if ordinal is None:
            continue
        counts[ordinal] += occ
        bucket_codes[ordinal].append(g)
    return counts, bucket_codes, key.values if need_values else None


def partition_cluster(
    cluster: Cluster, variable: VariableCFD
) -> tuple[list[SitePartition], PatternIndex]:
    """Run the σ scan at every site of the cluster, concurrently if asked.

    The per-site scans go through
    :func:`repro.core.parallel.map_fragments` (honouring
    ``REPRO_WORKERS`` / ``REPRO_PARALLEL``); translation into the
    cluster's shared dictionary happens coordinator-side afterwards, in
    site order, so codes — and therefore reports — are identical whatever
    the concurrency.  The dictionary (and each site's translation) is
    cached on the cluster, so only the first detection of a variable CFD
    pays the interning pass.
    """
    index = pattern_index(variable.patterns)
    shared: SharedPairDictionary = shared_dict_on(
        cluster,
        ("pairs", variable),
        lambda: SharedPairDictionary(len(variable.lhs)),
    )
    sites = cluster.sites
    n_patterns = len(variable.patterns)
    participating = [
        i for i, site in enumerate(sites) if applicable_patterns(site, variable)
    ]
    # the σ trie is not shipped to workers: they rebuild it once from the
    # (memoized) tableau, keeping the per-task payload small
    tasks = [
        (i, (variable, shared.pairs_for(i) is None))
        for i in participating
    ]
    fragments = [site.fragment for site in sites]
    results = map_fragments(
        cluster, fragments, partition_fragment_summary, tasks
    )

    by_site = dict(zip(participating, results))
    partitions: list[SitePartition] = []
    for i, site in enumerate(sites):
        result = by_site.get(i)
        if result is None:
            empty = [CodedBucket() for _ in range(n_patterns)]
            partitions.append(SitePartition(site, empty, False, [], shared))
            continue
        counts, bucket_codes, values = result
        pairs = shared.pairs_for(i)
        if pairs is None:
            pairs = shared.translate(i, values)
        buckets = [
            CodedBucket(count, codes)
            for count, codes in zip(counts, bucket_codes)
        ]
        partitions.append(SitePartition(site, buckets, True, pairs, shared))
    return partitions, index


def scan_stage_time(
    cluster: Cluster, partitions: Sequence[SitePartition]
) -> float:
    """Time of the parallel statistics scan: slowest participating site."""
    model = cluster.cost_model
    times = [
        model.scan_time(len(part.site.fragment))
        for part in partitions
        if part.participated
    ]
    return max(times, default=0.0)


def exchange_statistics(cluster: Cluster, log: ShipmentLog) -> None:
    """Account the all-to-all ``lstat`` broadcast as control traffic."""
    n = cluster.n_sites
    log.record_control(n * (n - 1))


def ship_buckets(
    cluster: Cluster,
    partitions: Sequence[SitePartition],
    coordinators: Sequence[int],
    log: ShipmentLog,
    tag: str,
    width: int,
) -> list[MergedBucket]:
    """Ship every bucket to its pattern's coordinator; return merged data.

    Returns ``merged[l]`` = the coded view of ``⋃_i H_i^l`` as available
    at the coordinator of pattern ``l`` (local rows are not shipped, only
    counted into the merged bucket).  Shipments are dictionary-coded: a
    row crosses the wire as one ``(x_code, y_code)`` pair whatever its
    attribute width, which the log records via ``n_codes``.
    """
    merged = [MergedBucket() for _ in coordinators]
    for part in partitions:
        source = part.site.index
        pairs = part.pairs
        for ordinal, bucket in enumerate(part.buckets):
            if not bucket.count:
                continue
            dest = coordinators[ordinal]
            if dest != source:
                log.ship(
                    dest,
                    source,
                    bucket.count,
                    bucket.count * width,
                    tag=f"{tag}#p{ordinal}",
                    n_codes=2 * bucket.count,
                )
            target = merged[ordinal]
            target.rows += bucket.count
            target.pairs.extend(map(pairs.__getitem__, bucket.codes))
    return merged


def conflicting_x_codes(pairs: Sequence[tuple[int, int]]) -> set[int]:
    """``x`` codes taking at least two distinct ``y`` codes in ``pairs``.

    The coordinator-side merge: one pass over the received code pairs, no
    value materialization.  Equal values carry equal codes cluster-wide
    (the shared-dictionary invariant), so this is exactly the GROUP BY
    conflict test of the centralized detector.
    """
    first: dict[int, int] = {}
    conflicts: set[int] = set()
    for x, y in pairs:
        f = first.setdefault(x, y)
        if f != y:
            conflicts.add(x)
    return conflicts


def local_constant_checks(
    cluster: Cluster, constants: Sequence[ConstantCFD]
) -> ViolationReport:
    """Proposition 5: validate constant CFDs at each site, no shipment.

    Each site runs one fused pass over its fragment for all the constant
    forms applicable there, instead of one scan per (site, form).
    """
    report = ViolationReport()
    for site in cluster.sites:
        applicable = [
            constant
            for constant in constants
            # F_i ∧ F_φ unsatisfiable: φ not applicable at this site
            if site.predicate is None
            or compatible_with_bindings(site.predicate, constant.condition())
        ]
        if applicable:
            report.merge(
                detect_constants(site.fragment, applicable, collect_tuples=True)
            )
    return report


def coordinator_check(
    cluster: Cluster,
    variable: VariableCFD,
    coordinators: Sequence[int],
    merged: Sequence[MergedBucket],
    shared: SharedPairDictionary,
) -> tuple[ViolationReport, float]:
    """Run the per-pattern detection at each coordinator, on code pairs.

    Each coordinator groups its received ``(x_code, y_code)`` pairs and
    reports the ``x`` codes carrying two distinct ``y`` codes — the
    centralized GROUP BY detection collapsed onto the shared dictionary's
    codes; only violating ``X`` values are decoded.  Returns the merged
    report and the check-stage time: coordinators work in parallel, so the
    stage lasts as long as the busiest site (charged for the full row
    counts, not the coded distincts — the model follows the paper).
    """
    model: CostModel = cluster.cost_model
    report = ViolationReport()
    ops_per_site: dict[int, float] = {}
    x_values = shared.x_values
    for ordinal, bucket in enumerate(merged):
        if not bucket.rows:
            continue
        for x_code in conflicting_x_codes(bucket.pairs):
            report.add(
                Violation(
                    cfd=variable.source,
                    lhs_attributes=variable.lhs,
                    lhs_values=x_values[x_code],
                )
            )
        site = coordinators[ordinal]
        ops_per_site[site] = ops_per_site.get(site, 0.0) + model.check_ops(
            bucket.rows
        )
    check_time = max(
        (model.check_time(ops) for ops in ops_per_site.values()), default=0.0
    )
    return report, check_time


def normalize_for_detection(cfd: CFD):
    """Normalize and sanity-check a CFD for the distributed algorithms."""
    return normalize(cfd)


def empty_outcome_parts() -> tuple[ShipmentLog, CostBreakdown]:
    return ShipmentLog(), CostBreakdown()


def stage(scan: float, transfer: float, check: float) -> StageTimes:
    return StageTimes(scan=scan, transfer=transfer, check=check)
