"""Algorithm CLUSTDETECT (Section IV-C): merge CFDs with overlapping LHS.

Partition kind: horizontal.  Paper section: IV-C, Fig. 3(f)–(i).  Two CFDs
``(X → A, Tp)`` and ``(X' → B, T'p)`` are merged when ``X ⊆ X'`` or
``X' ⊆ X``.  For each resulting cluster the data is partitioned once, by
the tableaux *projected onto the shared attributes* ``X ∩ X'``; a
coordinator is designated per projected pattern; and each coordinator runs
the detection queries of every member CFD on the tuples it received.  A
tuple matching several member CFDs is thus shipped once per cluster rather
than once per CFD, which is where CLUSTDETECT's savings over SEQDETECT come
from.

Shipping strategy: the fragment scans run concurrently under
``REPRO_WORKERS`` and each shipped row crosses the network as a *single*
int — its combination's code in the CFD cluster's
:class:`~repro.relational.shareddict.SharedComboDictionary` (the
coordinator needs whole combinations back, because every member CFD
projects them differently).  Coordinators dedupe the received codes and
run the members' GROUP BY queries over the distinct decoded combinations
— conflict existence is multiplicity-free, so this is exactly the
row-level answer.

Correctness: tuples agreeing on a member's full LHS ``X'`` also agree on
``X ∩ X' ⊆ X'``, hence land at the same coordinator, so every violating
pair is co-located (the Lemma 6 argument, applied per member).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core import (
    CFD,
    PatternIndex,
    VariableCFD,
    ViolationReport,
    detect_variables,
    is_wildcard,
    normalize,
    pattern_index,
    sort_patterns_by_generality,
)
from ..core.parallel import map_fragments
from ..distributed import Cluster, DetectionOutcome, ShipmentLog
from ..relational import (
    Relation,
    SharedComboDictionary,
    column_store,
    shared_dict_on,
)
from . import base
from .pat import Strategy, make_select_min_response, select_max_stat


@dataclass
class CFDCluster:
    """One group of merged variable CFDs and its projected tableau."""

    members: list[VariableCFD]
    shared: tuple[str, ...]
    projected: tuple[tuple[object, ...], ...]
    attributes: tuple[str, ...]
    name: str

    @property
    def member_names(self) -> list[str]:
        return [member.source for member in self.members]


def _overlapping(a: VariableCFD, b: VariableCFD) -> bool:
    """The paper's merge condition: one LHS contains the other."""
    sa, sb = set(a.lhs), set(b.lhs)
    return sa <= sb or sb <= sa


def cluster_cfds(
    variables: Sequence[VariableCFD], schema_order: Sequence[str]
) -> list[CFDCluster]:
    """Group variable CFDs by the LHS-overlap condition (union-find)."""
    parent = list(range(len(variables)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(variables)):
        for j in range(i + 1, len(variables)):
            if _overlapping(variables[i], variables[j]):
                parent[find(i)] = find(j)

    groups: dict[int, list[VariableCFD]] = {}
    for i, variable in enumerate(variables):
        groups.setdefault(find(i), []).append(variable)

    order = {attr: pos for pos, attr in enumerate(schema_order)}
    clusters = []
    for members in groups.values():
        shared_set = set(members[0].lhs)
        for member in members[1:]:
            shared_set &= set(member.lhs)
        shared = tuple(sorted(shared_set, key=order.__getitem__))

        projected_rows: dict[tuple, None] = {}
        for member in members:
            positions = [member.lhs.index(attr) for attr in shared]
            for row in member.patterns:
                projected_rows.setdefault(tuple(row[p] for p in positions))
        projected = tuple(sort_patterns_by_generality(projected_rows))

        attr_set = {a for member in members for a in member.attributes}
        attributes = tuple(sorted(attr_set, key=order.__getitem__))
        name = "+".join(sorted({m.source for m in members}))
        clusters.append(
            CFDCluster(
                members=members,
                shared=shared,
                projected=projected,
                attributes=attributes,
                name=name,
            )
        )
    return clusters


def cluster_fragment_summary(
    fragment: Relation, group: CFDCluster, need_values: bool = True
):
    """One scan of a fragment serving every member CFD of the cluster.

    Columnar: the attribute union is encoded once, member matches and the
    projected σ ordinal are resolved per *distinct* combination, and each
    bucket comes back as (row count, distinct local combination codes) —
    ready for the shared-dictionary translation at the coordinator — plus
    the per-member matching counts used for check-cost accounting.
    ``need_values`` additionally returns the fragment's local dictionary
    (its distinct combinations), which the coordinator requests only once
    per fragment.  Module-level and self-contained so the parallel
    scheduler can run it in a fragment-resident worker process.
    """
    n_buckets = len(group.projected)
    n_members = len(group.members)
    counts = [0] * n_buckets
    bucket_codes: list[list[int]] = [[] for _ in range(n_buckets)]
    member_counts = [[0] * n_members for _ in range(n_buckets)]
    if not fragment.rows:
        return counts, bucket_codes, member_counts, [] if need_values else None

    projected_index = pattern_index(group.projected)
    key = column_store(fragment).key_column(group.attributes)
    occupancy = base.group_occupancy(fragment, group.attributes)
    attr_pos = {attr: i for i, attr in enumerate(group.attributes)}
    member_data = [
        (
            tuple(attr_pos[a] for a in member.lhs),
            pattern_index(member.patterns),
        )
        for member in group.members
    ]
    shared_positions = tuple(attr_pos[a] for a in group.shared)
    for g, combo in enumerate(key.values):
        matched = [
            m
            for m, (positions, index) in enumerate(member_data)
            if index.matches_any(tuple(combo[p] for p in positions))
        ]
        if not matched:
            continue
        xc = tuple(combo[p] for p in shared_positions)
        ordinal = projected_index.first_match(xc)
        if ordinal is None:  # cannot happen: member match ⇒ projected match
            raise AssertionError(
                "tuple matched a member CFD but no projected pattern"
            )
        n = occupancy[g]
        counts[ordinal] += n
        bucket_codes[ordinal].append(g)
        for m in matched:
            member_counts[ordinal][m] += n
    return counts, bucket_codes, member_counts, key.values if need_values else None


def clust_detect(
    cluster: Cluster,
    cfds: Iterable[CFD],
    strategy: str | Strategy = "s",
) -> DetectionOutcome:
    """Detect violations of Σ with LHS-overlap clustering.

    ``strategy`` selects coordinators per projected pattern: ``"s"``
    (max-stat, minimizing shipment) or ``"rt"`` (greedy response time), as
    in the single-CFD algorithms.
    """
    cfds = list(cfds)
    if isinstance(strategy, str):
        if strategy == "s":
            pick: Strategy = select_max_stat
        elif strategy == "rt":
            pick = make_select_min_response(cluster)
        else:
            raise ValueError(f"unknown strategy {strategy!r}; use 's' or 'rt'")
    else:
        pick = strategy

    report = ViolationReport()
    log = ShipmentLog()
    variables: list[VariableCFD] = []
    for cfd in cfds:
        normalized = normalize(cfd)
        report.merge(base.local_constant_checks(cluster, normalized.constants))
        variables.extend(normalized.variables)

    groups = cluster_cfds(variables, cluster.schema.attributes)
    model = cluster.cost_model
    cost_stages = []
    chosen: dict[str, list[int]] = {}

    for group in groups:
        # one shared combination dictionary per CFD cluster, cached on the
        # data cluster so repeat detections reuse the interned codes
        shared: SharedComboDictionary = shared_dict_on(
            cluster,
            ("combo",) + tuple(group.members),
            SharedComboDictionary,
        )
        fragments = [site.fragment for site in cluster.sites]
        tasks = [
            (i, (group, shared.codes_for(i) is None))
            for i in range(len(fragments))
        ]
        summaries = map_fragments(
            cluster, fragments, cluster_fragment_summary, tasks
        )
        site_results = []
        for i, (counts, bucket_codes, member_counts, values) in enumerate(
            summaries
        ):
            codes = shared.codes_for(i)
            if codes is None:
                codes = shared.translate(i, values)
            site_results.append((counts, bucket_codes, codes, member_counts))
        scan = max(
            (model.scan_time(len(site.fragment)) for site in cluster.sites),
            default=0.0,
        )
        base.exchange_statistics(cluster, log)

        lstat = [counts for counts, _codes, _pairs, _mc in site_results]
        coordinators = pick(cluster, lstat)
        chosen[group.name] = coordinators

        width = len(group.attributes)
        stage_log = ShipmentLog()
        merged_rows = [0] * len(group.projected)
        # distinct global combination codes per bucket, deduped across
        # sites in site order (the coordinator's working set)
        merged_codes: list[dict[int, None]] = [
            {} for _ in group.projected
        ]
        total_counts = [
            [0] * len(group.members) for _ in group.projected
        ]
        for site, (counts, bucket_codes, codes, member_counts) in zip(
            cluster.sites, site_results
        ):
            for ordinal, count in enumerate(counts):
                if not count:
                    continue
                dest = coordinators[ordinal]
                if dest != site.index:
                    stage_log.ship(
                        dest,
                        site.index,
                        count,
                        count * width,
                        tag=f"{group.name}#p{ordinal}",
                        # one combination code per row on the wire
                        n_codes=count,
                    )
                merged_rows[ordinal] += count
                bucket = merged_codes[ordinal]
                for g in bucket_codes[ordinal]:
                    bucket[codes[g]] = None
                for m in range(len(group.members)):
                    total_counts[ordinal][m] += member_counts[ordinal][m]
        transfer = model.transfer_time(stage_log.outgoing_by_source())
        log.merge(stage_log)

        schema = cluster.schema.project(group.attributes)
        decode = shared.values
        ops_per_site: dict[int, float] = {}
        for ordinal, rows in enumerate(merged_rows):
            if not rows:
                continue
            # decode the distinct combinations and run every member's GROUP
            # BY over them — conflict existence is multiplicity-free, so
            # the distinct working set answers exactly like the full rows
            relation = Relation(
                schema,
                [decode[code] for code in merged_codes[ordinal]],
                copy=False,
            )
            site_index = coordinators[ordinal]
            # Routing scan of the received bucket, then one GROUP BY per member
            # over its own matching tuples.
            ops = float(rows)
            for m, member in enumerate(group.members):
                report.merge(
                    detect_variables(relation, [member], collect_tuples=False)
                )
                ops += model.check_ops(total_counts[ordinal][m])
            ops_per_site[site_index] = ops_per_site.get(site_index, 0.0) + ops
        check = max(
            (model.check_time(ops) for ops in ops_per_site.values()),
            default=0.0,
        )
        cost_stages.append(base.stage(scan, transfer, check))

    from ..distributed import CostBreakdown

    return DetectionOutcome(
        algorithm="CLUSTDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=cost_stages),
        details={
            "clusters": [group.name for group in groups],
            "coordinators": chosen,
        },
    )
