"""Algorithm CLUSTDETECT (Section IV-C): merge CFDs with overlapping LHS.

Partition kind: horizontal.  Paper section: IV-C, Fig. 3(f)–(i).  Two CFDs
``(X → A, Tp)`` and ``(X' → B, T'p)`` are merged when ``X ⊆ X'`` or
``X' ⊆ X``.  For each resulting cluster the data is partitioned once, by
the tableaux *projected onto the shared attributes* ``X ∩ X'``; a
coordinator is designated per projected pattern; and each coordinator runs
the detection queries of every member CFD on the tuples it received.  A
tuple matching several member CFDs is thus shipped once per cluster rather
than once per CFD, which is where CLUSTDETECT's savings over SEQDETECT come
from.

Shipping strategy: the fragment scans run concurrently under
``REPRO_WORKERS`` and each shipped row crosses the network as a *single*
int — its combination's code in the CFD cluster's
:class:`~repro.relational.shareddict.SharedComboDictionary` (the
coordinator needs whole combinations back, because every member CFD
projects them differently).  Coordinators dedupe the received codes and
run the members' GROUP BY queries over the distinct decoded combinations
— conflict existence is multiplicity-free, so this is exactly the
row-level answer.

Correctness: tuples agreeing on a member's full LHS ``X'`` also agree on
``X ∩ X' ⊆ X'``, hence land at the same coordinator, so every violating
pair is co-located (the Lemma 6 argument, applied per member).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core import (
    CFD,
    PatternIndex,
    VariableCFD,
    ViolationReport,
    detect_variables,
    is_wildcard,
    normalize,
    pattern_index,
    sort_patterns_by_generality,
)
from ..core.fused import _resolve_vectorize
from ..core.incremental import (
    ConstantFolds,
    TransitionCounter,
    VariableGroupState,
    commit_counters,
    counters_report,
)
from ..core.parallel import map_fragments
from ..distributed import Cluster, CostBreakdown, DetectionOutcome, ShipmentLog
from ..relational import (
    Relation,
    SharedComboDictionary,
    column_store,
    compatible_with_bindings,
    shared_dict_on,
)
from . import base
from .pat import Strategy, make_select_min_response, select_max_stat


@dataclass
class CFDCluster:
    """One group of merged variable CFDs and its projected tableau."""

    members: list[VariableCFD]
    shared: tuple[str, ...]
    projected: tuple[tuple[object, ...], ...]
    attributes: tuple[str, ...]
    name: str

    @property
    def member_names(self) -> list[str]:
        return [member.source for member in self.members]


def _overlapping(a: VariableCFD, b: VariableCFD) -> bool:
    """The paper's merge condition: one LHS contains the other."""
    sa, sb = set(a.lhs), set(b.lhs)
    return sa <= sb or sb <= sa


def cluster_cfds(
    variables: Sequence[VariableCFD], schema_order: Sequence[str]
) -> list[CFDCluster]:
    """Group variable CFDs by the LHS-overlap condition (union-find)."""
    parent = list(range(len(variables)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(variables)):
        for j in range(i + 1, len(variables)):
            if _overlapping(variables[i], variables[j]):
                parent[find(i)] = find(j)

    groups: dict[int, list[VariableCFD]] = {}
    for i, variable in enumerate(variables):
        groups.setdefault(find(i), []).append(variable)

    order = {attr: pos for pos, attr in enumerate(schema_order)}
    clusters = []
    for members in groups.values():
        shared_set = set(members[0].lhs)
        for member in members[1:]:
            shared_set &= set(member.lhs)
        shared = tuple(sorted(shared_set, key=order.__getitem__))

        projected_rows: dict[tuple, None] = {}
        for member in members:
            positions = [member.lhs.index(attr) for attr in shared]
            for row in member.patterns:
                projected_rows.setdefault(tuple(row[p] for p in positions))
        projected = tuple(sort_patterns_by_generality(projected_rows))

        attr_set = {a for member in members for a in member.attributes}
        attributes = tuple(sorted(attr_set, key=order.__getitem__))
        name = "+".join(sorted({m.source for m in members}))
        clusters.append(
            CFDCluster(
                members=members,
                shared=shared,
                projected=projected,
                attributes=attributes,
                name=name,
            )
        )
    return clusters


def cluster_fragment_summary(
    fragment: Relation, group: CFDCluster, need_values: bool = True
):
    """One scan of a fragment serving every member CFD of the cluster.

    Columnar: the attribute union is encoded once, member matches and the
    projected σ ordinal are resolved per *distinct* combination, and each
    bucket comes back as (row count, distinct local combination codes) —
    ready for the shared-dictionary translation at the coordinator — plus
    the per-member matching counts used for check-cost accounting.
    ``need_values`` additionally returns the fragment's local dictionary
    (its distinct combinations), which the coordinator requests only once
    per fragment.  Module-level and self-contained so the parallel
    scheduler can run it in a fragment-resident worker process.
    """
    n_buckets = len(group.projected)
    n_members = len(group.members)
    counts = [0] * n_buckets
    bucket_codes: list[list[int]] = [[] for _ in range(n_buckets)]
    member_counts = [[0] * n_members for _ in range(n_buckets)]
    if not fragment.rows:
        return counts, bucket_codes, member_counts, [] if need_values else None

    projected_index = pattern_index(group.projected)
    key = column_store(fragment).key_column(group.attributes)
    occupancy = base.group_occupancy(fragment, group.attributes)
    attr_pos = {attr: i for i, attr in enumerate(group.attributes)}
    member_data = [
        (
            tuple(attr_pos[a] for a in member.lhs),
            pattern_index(member.patterns),
        )
        for member in group.members
    ]
    shared_positions = tuple(attr_pos[a] for a in group.shared)
    for g, combo in enumerate(key.values):
        matched = [
            m
            for m, (positions, index) in enumerate(member_data)
            if index.matches_any(tuple(combo[p] for p in positions))
        ]
        if not matched:
            continue
        xc = tuple(combo[p] for p in shared_positions)
        ordinal = projected_index.first_match(xc)
        if ordinal is None:  # cannot happen: member match ⇒ projected match
            raise AssertionError(
                "tuple matched a member CFD but no projected pattern"
            )
        n = occupancy[g]
        counts[ordinal] += n
        bucket_codes[ordinal].append(g)
        for m in matched:
            member_counts[ordinal][m] += n
    return counts, bucket_codes, member_counts, key.values if need_values else None


def _resolve_strategy(cluster: Cluster, strategy: str | Strategy) -> Strategy:
    """Coordinator-selection strategy: ``"s"``, ``"rt"`` or a callable."""
    if isinstance(strategy, str):
        if strategy == "s":
            return select_max_stat
        if strategy == "rt":
            return make_select_min_response(cluster)
        raise ValueError(f"unknown strategy {strategy!r}; use 's' or 'rt'")
    return strategy


def clust_detect(
    cluster: Cluster,
    cfds: Iterable[CFD],
    strategy: str | Strategy = "s",
) -> DetectionOutcome:
    """Detect violations of Σ with LHS-overlap clustering.

    ``strategy`` selects coordinators per projected pattern: ``"s"``
    (max-stat, minimizing shipment) or ``"rt"`` (greedy response time), as
    in the single-CFD algorithms.
    """
    cfds = list(cfds)
    pick = _resolve_strategy(cluster, strategy)

    report = ViolationReport()
    log = ShipmentLog()
    variables: list[VariableCFD] = []
    for cfd in cfds:
        normalized = normalize(cfd)
        report.merge(base.local_constant_checks(cluster, normalized.constants))
        variables.extend(normalized.variables)

    groups = cluster_cfds(variables, cluster.schema.attributes)
    model = cluster.cost_model
    cost_stages = []
    chosen: dict[str, list[int]] = {}

    for group in groups:
        # one shared combination dictionary per CFD cluster, cached on the
        # data cluster so repeat detections reuse the interned codes
        shared: SharedComboDictionary = shared_dict_on(
            cluster,
            ("combo",) + tuple(group.members),
            SharedComboDictionary,
        )
        fragments = [site.fragment for site in cluster.sites]
        tasks = [
            (i, (group, shared.codes_for(i) is None))
            for i in range(len(fragments))
        ]
        summaries = map_fragments(
            cluster, fragments, cluster_fragment_summary, tasks
        )
        site_results = []
        for i, (counts, bucket_codes, member_counts, values) in enumerate(
            summaries
        ):
            codes = shared.codes_for(i)
            if codes is None:
                codes = shared.translate(i, values)
            site_results.append((counts, bucket_codes, codes, member_counts))
        scan = max(
            (model.scan_time(len(site.fragment)) for site in cluster.sites),
            default=0.0,
        )
        base.exchange_statistics(cluster, log)

        lstat = [counts for counts, _codes, _pairs, _mc in site_results]
        coordinators = pick(cluster, lstat)
        chosen[group.name] = coordinators

        width = len(group.attributes)
        stage_log = ShipmentLog()
        merged_rows = [0] * len(group.projected)
        # distinct global combination codes per bucket, deduped across
        # sites in site order (the coordinator's working set)
        merged_codes: list[dict[int, None]] = [
            {} for _ in group.projected
        ]
        total_counts = [
            [0] * len(group.members) for _ in group.projected
        ]
        for site, (counts, bucket_codes, codes, member_counts) in zip(
            cluster.sites, site_results
        ):
            for ordinal, count in enumerate(counts):
                if not count:
                    continue
                dest = coordinators[ordinal]
                if dest != site.index:
                    stage_log.ship(
                        dest,
                        site.index,
                        count,
                        count * width,
                        tag=f"{group.name}#p{ordinal}",
                        # one combination code per row on the wire
                        n_codes=count,
                    )
                merged_rows[ordinal] += count
                bucket = merged_codes[ordinal]
                for g in bucket_codes[ordinal]:
                    bucket[codes[g]] = None
                for m in range(len(group.members)):
                    total_counts[ordinal][m] += member_counts[ordinal][m]
        transfer = model.transfer_time(stage_log.outgoing_by_source())
        log.merge(stage_log)

        schema = cluster.schema.project(group.attributes)
        decode = shared.values
        ops_per_site: dict[int, float] = {}
        for ordinal, rows in enumerate(merged_rows):
            if not rows:
                continue
            # decode the distinct combinations and run every member's GROUP
            # BY over them — conflict existence is multiplicity-free, so
            # the distinct working set answers exactly like the full rows
            relation = Relation(
                schema,
                [decode[code] for code in merged_codes[ordinal]],
                copy=False,
            )
            site_index = coordinators[ordinal]
            # Routing scan of the received bucket, then one GROUP BY per member
            # over its own matching tuples.
            ops = float(rows)
            for m, member in enumerate(group.members):
                report.merge(
                    detect_variables(relation, [member], collect_tuples=False)
                )
                ops += model.check_ops(total_counts[ordinal][m])
            ops_per_site[site_index] = ops_per_site.get(site_index, 0.0) + ops
        check = max(
            (model.check_time(ops) for ops in ops_per_site.values()),
            default=0.0,
        )
        cost_stages.append(base.stage(scan, transfer, check))

    from ..distributed import CostBreakdown

    return DetectionOutcome(
        algorithm="CLUSTDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=cost_stages),
        details={
            "clusters": [group.name for group in groups],
            "coordinators": chosen,
        },
    )


# -- incremental sessions ------------------------------------------------------


def scan_clust_delta_summary(
    fragment: Relation, group: CFDCluster, inserted, deleted
):
    """One site's scan of its *delta rows* for one CFD cluster.

    The incremental counterpart of :func:`cluster_fragment_summary`: for
    each projected pattern returns the signed ``combination → ±count``
    summary (cancelled combinations dropped), the row-event count and the
    signed row-count change.  ``fragment`` supplies only the schema — the
    scan never touches resident rows, which keeps the update cost
    independent of ``|D_i|``.  Module-level and self-contained so the
    parallel scheduler can run it in a fragment-resident worker process.
    """
    schema = fragment.schema
    n_buckets = len(group.projected)
    combo_deltas: list[dict] = [{} for _ in range(n_buckets)]
    row_events = [0] * n_buckets
    net_rows = [0] * n_buckets
    if not inserted and not deleted:
        return combo_deltas, row_events, net_rows
    projected_index = pattern_index(group.projected)
    attr_pos = schema.positions(group.attributes)
    combo_pos = {attr: i for i, attr in enumerate(group.attributes)}
    member_data = [
        (
            tuple(combo_pos[a] for a in member.lhs),
            pattern_index(member.patterns),
        )
        for member in group.members
    ]
    shared_positions = tuple(combo_pos[a] for a in group.shared)
    match_cache: dict[tuple, int | None] = {}
    for sign, rows in ((-1, deleted), (1, inserted)):
        for row in rows:
            combo = tuple(row[p] for p in attr_pos)
            ordinal = match_cache.get(combo, -1)
            if ordinal == -1:
                if any(
                    index.matches_any(tuple(combo[p] for p in positions))
                    for positions, index in member_data
                ):
                    ordinal = projected_index.first_match(
                        tuple(combo[p] for p in shared_positions)
                    )
                else:
                    ordinal = None
                match_cache[combo] = ordinal
            if ordinal is None:
                continue
            deltas = combo_deltas[ordinal]
            count = deltas.get(combo, 0) + sign
            if count:
                deltas[combo] = count
            else:
                del deltas[combo]
            row_events[ordinal] += 1
            net_rows[ordinal] += sign
    return combo_deltas, row_events, net_rows


class _ClusterGroupState:
    """One CFD cluster's resident coordinator state."""

    __slots__ = (
        "group",
        "shared",
        "coordinators",
        "combo_counts",
        "member_states",
        "bucket_rows",
        "schema",
    )

    def __init__(self, group, shared, coordinators, schema) -> None:
        self.group = group
        self.shared = shared
        self.coordinators = list(coordinators)
        #: per projected pattern: global combo code -> resident row count
        self.combo_counts: list[dict[int, int]] = [
            {} for _ in group.projected
        ]
        #: per projected pattern, per member CFD: the GROUP-BY state over
        #: the bucket's *distinct* combinations (conflict existence is
        #: multiplicity-free, exactly like the one-shot coordinator)
        self.member_states: list[list[VariableGroupState]] = [
            [
                VariableGroupState(member, collect_tuples=False)
                for member in group.members
            ]
            for _ in group.projected
        ]
        self.bucket_rows = [0] * len(group.projected)
        self.schema = schema

    def patch(
        self,
        ordinal: int,
        deltas: Mapping[tuple, int],
        violations: TransitionCounter,
        keys: TransitionCounter,
    ) -> None:
        """Apply one site's signed combination counts to one bucket."""
        counts = self.combo_counts[ordinal]
        intern = self.shared.intern
        entered: list[tuple] = []
        left: list[tuple] = []
        for combo, count in deltas.items():
            code = intern(combo)
            new = counts.get(code, 0) + count
            if new > 0:
                counts[code] = new
                if new == count:
                    entered.append(combo)
            elif new == 0:
                del counts[code]
                left.append(combo)
            else:
                raise ValueError(
                    "coordinator state underflow: a site deleted rows it "
                    "never reported"
                )
        for sign, combos in ((-1, left), (1, entered)):
            if not combos:
                continue
            batch = Relation(self.schema, combos, copy=False)
            for state in self.member_states[ordinal]:
                state.fold(batch, sign, violations, keys)


class IncrementalClustDetector:
    """A resident CLUSTDETECT session over one cluster and CFD set Σ.

    :meth:`detect` runs the one-shot LHS-overlap algorithm once and keeps
    every coordinator's per-combination counts *and* per-member GROUP-BY
    states resident; :meth:`update` / :meth:`apply_updates` then absorb
    insert/delete batches in O(|ΔD|): each updated site σ-scans only its
    delta, new combinations intern append-only into the cluster's
    :class:`~repro.relational.shareddict.SharedComboDictionary` (codes
    from the initial run never move), and the coordinators receive signed
    ``(combo_code, count)`` pairs — a combination's conflict contribution
    changes exactly when its resident count crosses zero, which is when
    it enters or leaves the distinct working set the member CFDs group
    over.

    Sessions are *single-writer* (no internal lock): concurrent callers
    must serialize externally — the resident service does so with one
    lock per managed session (see :mod:`repro.serve`).
    """

    def __init__(
        self,
        cluster: Cluster,
        cfds: Iterable[CFD],
        strategy: str | Strategy = "s",
    ) -> None:
        self.cluster = cluster
        self.cfds = [cfds] if isinstance(cfds, CFD) else list(cfds)
        self._pick = _resolve_strategy(cluster, strategy)
        self.fragments: list[Relation] = [
            site.fragment for site in cluster.sites
        ]
        self._wrap_keys = len(cluster.schema.key_positions()) == 1
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        variables: list[VariableCFD] = []
        constants = []
        for cfd in self.cfds:
            normalized = normalize(cfd)
            constants.extend(normalized.constants)
            variables.extend(normalized.variables)
        self._constants = [
            ConstantFolds(
                [
                    constant
                    for constant in constants
                    if site.predicate is None
                    or compatible_with_bindings(
                        site.predicate, constant.condition()
                    )
                ]
            )
            for site in cluster.sites
        ]
        self._groups = cluster_cfds(variables, cluster.schema.attributes)
        self._states: list[_ClusterGroupState] = []
        self._log = ShipmentLog()
        self._cost = CostBreakdown()
        self._detected = False

    # -- initial run ------------------------------------------------------

    def detect(self) -> DetectionOutcome:
        """The full one-shot run; builds the resident coordinator state.

        One run per session, like the horizontal sessions: re-running
        would fold stale rows on top of live counters.
        """
        if self._detected:
            raise ValueError(
                "detect() already ran for this session; updates are "
                "absorbed via update()/apply_updates() — build a new "
                "IncrementalClustDetector to re-detect from scratch"
            )
        cluster = self.cluster
        model = cluster.cost_model
        chosen: dict[str, list[int]] = {}

        for site, folds in zip(cluster.sites, self._constants):
            batch = site.fragment
            folds.fold(
                batch,
                1,
                self._violations,
                self._keys,
                _resolve_vectorize(None, batch),
            )

        for group in self._groups:
            shared: SharedComboDictionary = shared_dict_on(
                cluster,
                ("combo",) + tuple(group.members),
                SharedComboDictionary,
            )
            fragments = [site.fragment for site in cluster.sites]
            tasks = [
                (i, (group, shared.codes_for(i) is None))
                for i in range(len(fragments))
            ]
            summaries = map_fragments(
                cluster, fragments, cluster_fragment_summary, tasks
            )
            site_results = []
            for i, (counts, bucket_codes, member_counts, values) in enumerate(
                summaries
            ):
                codes = shared.codes_for(i)
                if codes is None:
                    codes = shared.translate(i, values)
                site_results.append(
                    (counts, bucket_codes, codes, member_counts)
                )
            scan = max(
                (
                    model.scan_time(len(site.fragment))
                    for site in cluster.sites
                ),
                default=0.0,
            )
            base.exchange_statistics(cluster, self._log)

            lstat = [counts for counts, _codes, _pairs, _mc in site_results]
            coordinators = self._pick(cluster, lstat)
            chosen[group.name] = list(coordinators)

            schema = cluster.schema.project(group.attributes)
            state = _ClusterGroupState(group, shared, coordinators, schema)
            width = len(group.attributes)
            stage_log = ShipmentLog()
            total_counts = [
                [0] * len(group.members) for _ in group.projected
            ]
            for site, (counts, bucket_codes, codes, member_counts) in zip(
                cluster.sites, site_results
            ):
                occupancy = base.group_occupancy(
                    site.fragment, group.attributes
                )
                for ordinal, count in enumerate(counts):
                    if not count:
                        continue
                    dest = coordinators[ordinal]
                    if dest != site.index:
                        stage_log.ship(
                            dest,
                            site.index,
                            count,
                            count * width,
                            tag=f"{group.name}#p{ordinal}",
                            n_codes=count,
                        )
                    state.bucket_rows[ordinal] += count
                    bucket = state.combo_counts[ordinal]
                    for g in bucket_codes[ordinal]:
                        code = codes[g]
                        bucket[code] = bucket.get(code, 0) + occupancy[g]
                    for m in range(len(group.members)):
                        total_counts[ordinal][m] += member_counts[ordinal][m]
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            self._log.merge(stage_log)

            decode = shared.values
            ops_per_site: dict[int, float] = {}
            for ordinal, rows in enumerate(state.bucket_rows):
                if not rows:
                    continue
                batch = Relation(
                    schema,
                    [decode[code] for code in state.combo_counts[ordinal]],
                    copy=False,
                )
                for member_state in state.member_states[ordinal]:
                    member_state.fold(
                        batch, 1, self._violations, self._keys
                    )
                site_index = coordinators[ordinal]
                ops = float(rows)
                for m in range(len(group.members)):
                    ops += model.check_ops(total_counts[ordinal][m])
                ops_per_site[site_index] = (
                    ops_per_site.get(site_index, 0.0) + ops
                )
            check = max(
                (model.check_time(ops) for ops in ops_per_site.values()),
                default=0.0,
            )
            self._cost.stages.append(base.stage(scan, transfer, check))
            self._states.append(state)

        self._detected = True
        return DetectionOutcome(
            algorithm="CLUSTDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={
                "clusters": [group.name for group in self._groups],
                "coordinators": chosen,
                "incremental": True,
            },
        )

    # -- updates ----------------------------------------------------------

    def update(self, site: int, inserted=(), deleted=()):
        """Absorb one site's batch (see :meth:`apply_updates`)."""
        return self.apply_updates({site: (inserted, deleted)})

    def apply_updates(self, updates: Mapping[int, tuple]):
        """Absorb insert/delete batches at several sites in one round.

        Mirrors
        :meth:`~repro.detect.incremental.IncrementalHorizontalDetector.apply_updates`:
        only the deltas are scanned (through the parallel scheduler),
        shipped — as signed ``(combo_code, count)`` pairs, recorded with
        ``n_codes = 2·|changed combinations|`` — and folded into the
        resident per-member GROUP-BY states.
        """
        from .incremental import IncrementalUpdate, apply_fragment_updates

        if not self._detected:
            raise ValueError("run detect() before applying updates")
        cluster = self.cluster
        model = cluster.cost_model
        self._violations.begin()
        self._keys.begin()
        update_log = ShipmentLog()

        batches = apply_fragment_updates(self.fragments, updates)
        if not batches:
            return IncrementalUpdate(
                self._commit(), self.report, update_log, base.stage(0, 0, 0)
            )

        # constants: fold each site's delta locally (Proposition 5)
        for index, inserted, removed in batches:
            folds = self._constants[index]
            for sign, rows in ((-1, removed), (1, inserted)):
                if rows:
                    batch = Relation(cluster.schema, rows, copy=False)
                    folds.fold(
                        batch,
                        sign,
                        self._violations,
                        self._keys,
                        _resolve_vectorize(None, batch),
                    )

        # clusters: σ-scan the deltas through the scheduler, site-parallel
        received_events: dict[int, int] = {}
        site_fragments = [site.fragment for site in cluster.sites]
        for state in self._states:
            tasks = [
                (index, (state.group, inserted, removed))
                for index, inserted, removed in batches
            ]
            results = map_fragments(
                cluster, site_fragments, scan_clust_delta_summary, tasks
            )
            for (index, _args), (combo_deltas, row_events, net_rows) in zip(
                tasks, results
            ):
                for ordinal, deltas in enumerate(combo_deltas):
                    if not deltas:
                        continue
                    coordinator = state.coordinators[ordinal]
                    if coordinator != index:
                        update_log.ship(
                            coordinator,
                            index,
                            row_events[ordinal],
                            row_events[ordinal] * len(state.group.attributes),
                            tag=f"{state.group.name}#p{ordinal}Δ",
                            n_codes=2 * len(deltas),
                        )
                    received_events[coordinator] = (
                        received_events.get(coordinator, 0)
                        + row_events[ordinal]
                    )
                    state.patch(
                        ordinal, deltas, self._violations, self._keys
                    )
                    state.bucket_rows[ordinal] += net_rows[ordinal]

        scan = max(
            (
                model.scan_time(len(inserted) + len(removed))
                for _index, inserted, removed in batches
            ),
            default=0.0,
        )
        transfer = model.transfer_time(update_log.outgoing_by_source())
        check = max(
            (
                model.check_time(model.check_ops(events))
                for events in received_events.values()
            ),
            default=0.0,
        )
        stage = base.stage(scan, transfer, check)
        self._cost.stages.append(stage)
        self._log.merge(update_log)
        return IncrementalUpdate(self._commit(), self.report, update_log, stage)

    # -- results ----------------------------------------------------------

    def _commit(self):
        return commit_counters(self._violations, self._keys, self._wrap_keys)

    @property
    def report(self) -> ViolationReport:
        """The full current report (fresh copy)."""
        return counters_report(self._violations, self._keys, self._wrap_keys)

    @property
    def shipments(self) -> ShipmentLog:
        """Cumulative traffic: the initial run plus every absorbed batch."""
        return self._log

    def outcome(self) -> DetectionOutcome:
        """The session as a :class:`DetectionOutcome` (cumulative)."""
        return DetectionOutcome(
            algorithm="CLUSTDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"incremental": True},
        )

    def __repr__(self) -> str:
        total = sum(len(fragment) for fragment in self.fragments)
        return (
            f"IncrementalClustDetector({len(self.cfds)} CFDs, "
            f"{len(self.fragments)} sites, {total} tuples)"
        )


def incremental_clust(
    cluster: Cluster, cfds: Iterable[CFD], strategy: str | Strategy = "s"
) -> IncrementalClustDetector:
    """An attached incremental CLUSTDETECT session (initial run included)."""
    detector = IncrementalClustDetector(cluster, cfds, strategy)
    detector.detect()
    return detector
