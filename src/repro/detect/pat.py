"""Algorithms PATDETECTS and PATDETECTRT (Section IV-B, Fig. 2).

Partition kind: horizontal.  Shipping strategy: both algorithms partition
each fragment with the σ function induced by the generality ordering of
the pattern tableau (Lemma 6) and designate a coordinator *per pattern
tuple*, distributing the detection work across sites; σ buckets cross the
network as shared-dictionary ``(x_code, y_code)`` pairs (see
:mod:`repro.relational.shareddict`) and the fragment scans run
concurrently under ``REPRO_WORKERS``.  The two differ only in the
coordinator-selection rule:

* ``PATDETECTS`` minimizes total shipment: the coordinator of pattern
  ``t_p^l`` is the site with the largest ``lstat[·, l]`` (that site would
  otherwise ship the most tuples for ``l``).
* ``PATDETECTRT`` greedily minimizes the Section III-B response-time cost
  ``costRS``: patterns are assigned in order, each to the site increasing
  the estimate the least, approximating ``check`` by
  ``|D_j ∪ M(j)| · log |D_j ∪ M(j)|``.

Each tuple attribute is shipped at most once (tuples of different patterns
go to different coordinators, but each tuple belongs to exactly one σ
bucket).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..core import CFD
from ..distributed import Cluster, DetectionOutcome
from . import base

#: a strategy maps (cluster, per-site lstat matrix) -> coordinator per pattern
Strategy = Callable[[Cluster, Sequence[Sequence[int]]], list[int]]


def select_max_stat(
    cluster: Cluster, lstat: Sequence[Sequence[int]]
) -> list[int]:
    """PATDETECTS rule: per pattern, the site holding the most matches.

    Shipping cost ``costS(λ) = Σ_i |M(i)|`` is minimized exactly by keeping
    each pattern at its largest holder (every other assignment ships that
    holder's tuples too).
    """
    n_patterns = len(lstat[0]) if lstat else 0
    coordinators = []
    for l in range(n_patterns):
        best = 0
        for i in range(len(lstat)):
            if lstat[i][l] > lstat[best][l]:
                best = i
        coordinators.append(best)
    return coordinators


def make_select_min_response(cluster: Cluster) -> Strategy:
    """PATDETECTRT rule: greedy assignment minimizing ``costRS``."""

    def select(cluster: Cluster, lstat: Sequence[Sequence[int]]) -> list[int]:
        model = cluster.cost_model
        n_sites = cluster.n_sites
        n_patterns = len(lstat[0]) if lstat else 0
        fragment_sizes = [len(site.fragment) for site in cluster.sites]
        outgoing = [0] * n_sites
        received = [0] * n_sites
        coordinators: list[int] = []
        for l in range(n_patterns):
            pattern_counts = [lstat[i][l] for i in range(n_sites)]
            total = sum(pattern_counts)
            best_site, best_cost = 0, None
            for candidate in range(n_sites):
                trial_out = list(outgoing)
                for j in range(n_sites):
                    if j != candidate:
                        trial_out[j] += pattern_counts[j]
                trial_recv = received[candidate] + (total - pattern_counts[candidate])
                transfer = model.transfer_time(
                    {j: trial_out[j] for j in range(n_sites)}
                )
                check = max(
                    model.check_time(
                        model.check_ops(
                            fragment_sizes[j]
                            + (trial_recv if j == candidate else received[j])
                        )
                    )
                    for j in range(n_sites)
                )
                cost = transfer + check
                better = best_cost is None or cost < best_cost - 1e-12
                tie = best_cost is not None and abs(cost - best_cost) <= 1e-12
                if better or (
                    tie and pattern_counts[candidate] > pattern_counts[best_site]
                ):
                    best_site, best_cost = candidate, cost
            coordinators.append(best_site)
            for j in range(n_sites):
                if j != best_site:
                    outgoing[j] += pattern_counts[j]
            received[best_site] += total - pattern_counts[best_site]
        return coordinators

    return select


def select_random(seed: int = 0) -> Strategy:
    """Ablation baseline: uniformly random coordinators."""

    def select(cluster: Cluster, lstat: Sequence[Sequence[int]]) -> list[int]:
        rng = random.Random(seed)
        n_patterns = len(lstat[0]) if lstat else 0
        return [rng.randrange(cluster.n_sites) for _ in range(n_patterns)]

    return select


def select_balanced(
    cluster: Cluster, lstat: Sequence[Sequence[int]]
) -> list[int]:
    """Load-balancing rule (Section VIII): spread coordinator work evenly.

    Patterns are assigned largest-first, each to the site whose resulting
    *received + local* detection load is smallest, preferring the max-stat
    site on ties.  Trades some shipment for a flatter check stage —
    exactly the load-balancing direction the paper's future work names.
    """
    n_sites = len(lstat)
    n_patterns = len(lstat[0]) if lstat else 0
    totals = [
        sum(lstat[i][l] for i in range(n_sites)) for l in range(n_patterns)
    ]
    load = [0] * n_sites
    assignment = [0] * n_patterns
    for l in sorted(range(n_patterns), key=lambda l: -totals[l]):
        best = min(
            range(n_sites),
            key=lambda s: (load[s] + totals[l], -lstat[s][l], s),
        )
        assignment[l] = best
        load[best] += totals[l]
    return assignment


def select_min_stat(
    cluster: Cluster, lstat: Sequence[Sequence[int]]
) -> list[int]:
    """Ablation baseline: the *worst* choice under the shipment objective."""
    n_patterns = len(lstat[0]) if lstat else 0
    coordinators = []
    for l in range(n_patterns):
        worst = 0
        for i in range(len(lstat)):
            if lstat[i][l] < lstat[worst][l]:
                worst = i
        coordinators.append(worst)
    return coordinators


def _pat_detect(
    cluster: Cluster,
    cfd: CFD,
    strategy: Strategy,
    algorithm: str,
) -> DetectionOutcome:
    normalized = base.normalize_for_detection(cfd)
    log, cost = base.empty_outcome_parts()
    report = base.local_constant_checks(cluster, normalized.constants)
    chosen: dict[str, list[int]] = {}

    for variable in normalized.variables:
        partitions, _index = base.partition_cluster(cluster, variable)
        scan = base.scan_stage_time(cluster, partitions)
        base.exchange_statistics(cluster, log)

        lstat = [part.lstat for part in partitions]
        coordinators = strategy(cluster, lstat)
        chosen[variable.source] = coordinators

        schema = base.ship_projection_schema(cluster.schema, variable)
        from ..distributed import ShipmentLog

        stage_log = ShipmentLog()
        merged = base.ship_buckets(
            cluster, partitions, coordinators, stage_log, variable.source,
            width=len(schema),
        )
        transfer = cluster.cost_model.transfer_time(
            stage_log.outgoing_by_source()
        )
        log.merge(stage_log)

        stage_report, check = base.coordinator_check(
            cluster, variable, coordinators, merged, partitions[0].shared
        )
        report.merge(stage_report)
        cost.stages.append(base.stage(scan, transfer, check))

    if not normalized.variables:
        scan = max(
            (cluster.cost_model.scan_time(len(site.fragment)) for site in cluster.sites),
            default=0.0,
        )
        cost.stages.append(base.stage(scan, 0.0, 0.0))

    return DetectionOutcome(
        algorithm=algorithm,
        report=report,
        shipments=log,
        cost=cost,
        details={"coordinators": chosen},
    )


def pat_detect_s(cluster: Cluster, cfd: CFD) -> DetectionOutcome:
    """PATDETECTS: per-pattern coordinators minimizing total shipment."""
    return _pat_detect(cluster, cfd, select_max_stat, "PATDETECTS")


def pat_detect_rt(cluster: Cluster, cfd: CFD) -> DetectionOutcome:
    """PATDETECTRT: per-pattern coordinators minimizing response time."""
    return _pat_detect(
        cluster, cfd, make_select_min_response(cluster), "PATDETECTRT"
    )


def pat_detect_with_strategy(
    cluster: Cluster, cfd: CFD, strategy: Strategy, name: str = "PATDETECT*"
) -> DetectionOutcome:
    """Run the PATDETECT skeleton with a custom coordinator strategy."""
    return _pat_detect(cluster, cfd, strategy, name)
