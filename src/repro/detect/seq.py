"""Algorithm SEQDETECT (Section IV-C): one CFD after another, pipelined.

Partition kind: horizontal; shipping strategy and coded transport are
inherited from the per-CFD algorithm it drives.  Processes the CFDs of Σ
sequentially with a single-CFD algorithm
(PATDETECTS or PATDETECTRT).  Sites pipeline the work: as soon as a site
finishes partitioning/checking the current CFD it starts on the next, so
the reported response time is the flow-shop makespan of the per-CFD stages
(see :func:`repro.distributed.pipeline_response`), not their plain sum.

The same tuple may be shipped once *per matching CFD* — the inefficiency
CLUSTDETECT removes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core import CFD, ViolationReport
from ..distributed import (
    Cluster,
    DetectionOutcome,
    ShipmentLog,
    combine_breakdowns,
)
from .pat import pat_detect_rt, pat_detect_s

_SINGLE: dict[str, Callable[[Cluster, CFD], DetectionOutcome]] = {
    "s": pat_detect_s,
    "rt": pat_detect_rt,
}


def seq_detect(
    cluster: Cluster,
    cfds: Iterable[CFD],
    single: str | Callable[[Cluster, CFD], DetectionOutcome] = "rt",
) -> DetectionOutcome:
    """Detect violations of a set Σ of CFDs sequentially.

    ``single`` picks the per-CFD algorithm: ``"s"`` (PATDETECTS), ``"rt"``
    (PATDETECTRT) or any callable with the same signature.
    """
    if isinstance(single, str):
        try:
            single = _SINGLE[single]
        except KeyError:
            raise ValueError(
                f"unknown single-CFD algorithm {single!r}; use 's' or 'rt'"
            ) from None

    report = ViolationReport()
    log = ShipmentLog()
    outcomes = []
    for cfd in cfds:
        outcome = single(cluster, cfd)
        outcomes.append(outcome)
        report.merge(outcome.report)
        log.merge(outcome.shipments)

    cost = combine_breakdowns(outcome.cost for outcome in outcomes)
    return DetectionOutcome(
        algorithm="SEQDETECT",
        report=report,
        shipments=log,
        cost=cost,
        details={"per_cfd": [o.details for o in outcomes]},
    )
