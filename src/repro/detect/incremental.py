"""Incremental distributed detection: maintain coordinator state over ΔD.

The one-shot horizontal algorithms (CTRDETECT / PATDETECTS / PATDETECTRT)
re-scan every fragment and re-ship every σ bucket per run.  This module
keeps a detection *session* alive instead: after one full run, each
coordinator's merged GROUP-BY state — per global ``x_code``, the multiset
of ``y_code``\\ s it takes, with row counts — stays resident, and a batch
of inserts/deletes at some sites is absorbed by shipping only the **coded
delta** of the affected ``(X, A)`` combinations:

1. every updated site σ-partitions *its delta rows only* (fanned out
   through the PR 3 scheduler, :func:`repro.core.parallel.map_fragments`,
   so concurrent sites scan concurrently) into per-pattern
   ``(x, y) → ±count`` summaries — inserts and deletes of the same
   combination cancel site-side and never cross the wire;
2. new values intern into the cluster's append-only
   :class:`~repro.relational.shareddict.SharedPairDictionary`, so every
   code from the initial run stays valid (the invariant that makes
   in-place patching sound);
3. each pattern's coordinator receives its delta as signed
   ``(x_code, y_code, count)`` triples — the
   :class:`~repro.distributed.network.ShipmentLog` records them with
   ``n_codes = 3·|distinct changed pairs|``, so
   :meth:`~repro.distributed.cost.CostModel.payload_bytes` shows the
   saving over a full re-shipment — and patches its counters in place; a
   group flips between clean and conflicting exactly when its distinct
   ``y_code`` count crosses two;
4. constant normal forms stay purely local (Proposition 5): each updated
   site folds its delta through :class:`~repro.core.incremental.ConstantFolds`.

Coordinators are chosen once, by the wrapped algorithm's strategy, during
the initial run and then kept — re-electing them after every batch would
force re-shipping state that already sits at the old coordinator.  The
update's simulated response time follows the same three-stage model as a
full run, with every stage driven by |ΔD| instead of |D|.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core import CFD, Violation, ViolationReport
from ..core.fused import _resolve_vectorize
from ..core.incremental import (
    ConstantFolds,
    TransitionCounter,
    ViolationDelta,
    commit_counters,
    counters_report,
)
from ..core.normalize import VariableCFD, pattern_index
from ..core.parallel import map_fragments
from ..distributed import (
    Cluster,
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    StageTimes,
)
from ..relational import Relation, column_store, compatible_with_bindings
from ..relational.delta import prune_delta_history
from . import base
from .ctr import _pick_central_coordinator
from .pat import make_select_min_response, select_max_stat


def apply_fragment_updates(
    fragments: list[Relation], updates: Mapping[int, tuple]
) -> list[tuple[int, list, list]]:
    """Advance per-site fragment versions by one round of update batches.

    ``updates`` maps site index to ``(inserted_rows, deleted)`` with
    ``deleted`` an iterable of keys or a predicate (the
    :meth:`Relation.delete` contract).  Each updated entry of
    ``fragments`` is replaced by its new
    :class:`~repro.relational.delta.DeltaRelation` version with the
    consumed provenance pruned, so a long session holds one live row list
    per site.  Returns ``(site, inserted_rows, removed_rows)`` for every
    site whose fragment actually changed — the delta streams every
    resident session folds.  Shared by the horizontal, CLUSTDETECT and
    hybrid sessions.
    """
    batches: list[tuple[int, list, list]] = []
    for index in sorted(updates):
        inserted, deleted = updates[index]
        version = fragments[index]
        is_predicate = callable(deleted) or hasattr(deleted, "evaluate")
        if not is_predicate:
            deleted = list(deleted)
        if is_predicate or deleted:
            version = version.delete(deleted)
            removed = list(getattr(version, "delta_deleted", ()))
        else:
            removed = []
        inserted = [tuple(row) for row in inserted]
        if inserted:
            version = version.insert(inserted)
        if version is fragments[index]:
            continue
        # sever consumed provenance so a long session holds one live
        # row list per site, not one per absorbed batch
        prune_delta_history(version.delta_parent)
        prune_delta_history(version)
        fragments[index] = version
        batches.append((index, inserted, removed))
    return batches


def _select_central(cluster: Cluster, lstat: Sequence[Sequence[int]]) -> list[int]:
    """CTRDETECT as a per-pattern strategy: one coordinator for every bucket."""
    site_totals = [sum(per_site) for per_site in lstat]
    coordinator = _pick_central_coordinator(site_totals)
    n_patterns = len(lstat[0]) if lstat else 0
    return [coordinator] * n_patterns


#: algorithm name -> (display name, strategy factory taking the cluster)
_ALGORITHMS: dict[str, tuple[str, Callable]] = {
    "ctr": ("CTRDETECT+Δ", lambda cluster: _select_central),
    "pat-s": ("PATDETECTS+Δ", lambda cluster: select_max_stat),
    "pat-rt": ("PATDETECTRT+Δ", make_select_min_response),
}


def scan_delta_summary(
    fragment: Relation,
    variables: Sequence[VariableCFD],
    inserted: Sequence[tuple],
    deleted: Sequence[tuple],
):
    """One site's σ scan of its *delta rows* (worker-side, O(|ΔD_i|)).

    For each variable CFD returns ``(pair_deltas, row_events, net_rows)``
    per pattern: the signed ``(x, y) → count`` summary (cancelled
    combinations dropped), how many row events (inserts + deletes) hit
    the bucket, and the signed row-count change.  ``fragment`` supplies
    only the schema — the scan never touches the resident rows, which is
    what makes the update cost independent of |D_i|.  Runs unchanged in a
    thread, a resident worker process, or inline.
    """
    schema = fragment.schema
    out = []
    for variable in variables:
        index = pattern_index(variable.patterns)
        first_match = index.first_match
        x_pos = schema.positions(variable.lhs)
        y_pos = schema.positions(variable.rhs)
        n_patterns = len(variable.patterns)
        pair_deltas: list[dict] = [{} for _ in range(n_patterns)]
        row_events = [0] * n_patterns
        net_rows = [0] * n_patterns
        match_cache: dict[tuple, int | None] = {}
        for sign, rows in ((-1, deleted), (1, inserted)):
            for row in rows:
                x = tuple(row[p] for p in x_pos)
                ordinal = match_cache.get(x, -1)
                if ordinal == -1:
                    ordinal = match_cache[x] = first_match(x)
                if ordinal is None:
                    continue
                y = tuple(row[p] for p in y_pos)
                deltas = pair_deltas[ordinal]
                count = deltas.get((x, y), 0) + sign
                if count:
                    deltas[(x, y)] = count
                else:
                    del deltas[(x, y)]
                row_events[ordinal] += 1
                net_rows[ordinal] += sign
        out.append((pair_deltas, row_events, net_rows))
    return out


class _VariableState:
    """One variable CFD's resident coordinator state."""

    __slots__ = (
        "variable",
        "shared",
        "coordinators",
        "pair_counts",
        "conflicting",
        "bucket_rows",
        "width",
        "_undo_pairs",
        "_undo_buckets",
    )

    def __init__(self, variable, shared, coordinators, width) -> None:
        self.variable = variable
        self.shared = shared
        self.coordinators = list(coordinators)
        #: x_code -> {y_code: row count}, merged across all sites
        self.pair_counts: dict[int, dict[int, int]] = {}
        self.conflicting: set[int] = set()
        self.bucket_rows = [0] * len(variable.patterns)
        self.width = width
        # transactional batches: x_code -> (y-table copy | None, was
        # conflicting), recorded on first touch; see begin()
        self._undo_pairs: dict | None = None
        self._undo_buckets: list | None = None

    def begin(self) -> None:
        """Open a transactional batch (first-touch group snapshots)."""
        self._undo_pairs = {}
        self._undo_buckets = list(self.bucket_rows)

    def commit(self) -> None:
        """Close the batch, discarding its undo log."""
        self._undo_pairs = None
        self._undo_buckets = None

    def _touch(self, x_code: int) -> None:
        undo = self._undo_pairs
        if undo is None or x_code in undo:
            return
        ys = self.pair_counts.get(x_code)
        undo[x_code] = (
            None if ys is None else dict(ys),
            x_code in self.conflicting,
        )

    def rollback(self) -> None:
        """Restore every touched group and the bucket row counts.

        The shared dictionaries stay grown (append-only: codes interned
        during a doomed batch are simply never referenced again).  A
        no-op when no batch is open.
        """
        undo = self._undo_pairs
        self._undo_pairs = None
        if undo is not None:
            for x_code, (ys, was) in undo.items():
                if ys is None:
                    self.pair_counts.pop(x_code, None)
                else:
                    self.pair_counts[x_code] = ys
                if was:
                    self.conflicting.add(x_code)
                else:
                    self.conflicting.discard(x_code)
        if self._undo_buckets is not None:
            self.bucket_rows = self._undo_buckets
            self._undo_buckets = None

    def _violation(self, x_code: int) -> Violation:
        return Violation(
            cfd=self.variable.source,
            lhs_attributes=self.variable.lhs,
            lhs_values=self.shared.x_values[x_code],
        )

    def add_rows(self, x_code: int, y_code: int, count: int) -> None:
        """Patch one combination's row count (build and update path both)."""
        self._touch(x_code)
        ys = self.pair_counts.setdefault(x_code, {})
        new = ys.get(y_code, 0) + count
        if new > 0:
            ys[y_code] = new
        elif new == 0:
            del ys[y_code]
            if not ys:
                del self.pair_counts[x_code]
        else:
            raise ValueError(
                "coordinator state underflow: a site deleted rows it never "
                "reported"
            )

    def settle(self, x_code: int, violations: TransitionCounter) -> None:
        """Re-derive one group's conflict status after patching it."""
        self._touch(x_code)
        ys = self.pair_counts.get(x_code)
        now = ys is not None and len(ys) >= 2
        was = x_code in self.conflicting
        if now and not was:
            self.conflicting.add(x_code)
            violations.add(self._violation(x_code), 1)
        elif was and not now:
            self.conflicting.discard(x_code)
            violations.add(self._violation(x_code), -1)


@dataclass
class IncrementalUpdate:
    """The result of absorbing one update batch.

    ``delta`` is what changed; ``report`` the full post-update report;
    ``shipments`` only this batch's traffic (the detector's cumulative
    log keeps growing separately); ``stage`` the batch's simulated
    scan/transfer/check times.
    """

    delta: ViolationDelta
    report: ViolationReport
    shipments: ShipmentLog
    stage: StageTimes

    @property
    def response_time(self) -> float:
        return self.stage.total


class IncrementalHorizontalDetector:
    """A resident detection session over one horizontal cluster and CFD.

    ``algorithm`` selects the wrapped coordinator strategy (``"ctr"``,
    ``"pat-s"``, ``"pat-rt"``) or pass any
    :data:`~repro.detect.pat.Strategy` callable.  :meth:`detect` runs the
    one-shot algorithm once (through the ordinary parallel scan path) and
    keeps its merged state; :meth:`update` / :meth:`apply_updates` absorb
    batches in O(|ΔD|).  :attr:`fragments` tracks the current version of
    every site's fragment (the cluster object itself stays immutable).

    Sessions are *single-writer*: fragment versions, coordinator group
    tables, counters and the cost log assume one mutation at a time, so
    every public entry point serializes on a per-session reentrant lock
    (``apply_updates`` reads :attr:`report` while holding it).
    Concurrent callers — the resident service's request threads — are
    safe; they just take turns.
    """

    def __init__(
        self,
        cluster: Cluster,
        cfd: CFD,
        algorithm: str | Callable = "pat-s",
    ) -> None:
        self.cluster = cluster
        self.cfd = cfd
        self.normalized = base.normalize_for_detection(cfd)
        if callable(algorithm):
            self.algorithm = getattr(algorithm, "__name__", "custom") + "+Δ"
            self._strategy = algorithm
        else:
            try:
                name, factory = _ALGORITHMS[algorithm]
            except KeyError:
                raise ValueError(
                    f"unknown incremental algorithm {algorithm!r}; use one "
                    f"of {sorted(_ALGORITHMS)} or pass a strategy callable"
                ) from None
            self.algorithm = name
            self._strategy = factory(cluster)
        self.fragments: list[Relation] = [
            site.fragment for site in cluster.sites
        ]
        # the constant folds carry single-attribute keys raw; the report
        # boundary wraps them back into the 1-tuple contract
        self._wrap_keys = len(cluster.schema.key_positions()) == 1
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        self._constants: list[ConstantFolds] = [
            ConstantFolds(
                [
                    constant
                    for constant in self.normalized.constants
                    if site.predicate is None
                    or compatible_with_bindings(
                        site.predicate, constant.condition()
                    )
                ]
            )
            for site in cluster.sites
        ]
        self._variables: list[_VariableState] = []
        self._log = ShipmentLog()
        self._cost = CostBreakdown()
        self._detected = False
        #: serializes every public entry point (single-writer contract)
        self._session_lock = threading.RLock()

    # -- initial run ------------------------------------------------------

    def detect(self) -> DetectionOutcome:
        """The full one-shot run; builds the resident coordinator state.

        One run per session: the scan reads the *original* cluster
        fragments, so re-running after updates would fold stale rows on
        top of live counters — start a new session instead.
        """
        with self._session_lock:
            return self._detect_locked()

    def _detect_locked(self) -> DetectionOutcome:
        if self._detected:
            raise ValueError(
                "detect() already ran for this session; updates are "
                "absorbed via update()/apply_updates() — build a new "
                "IncrementalHorizontalDetector to re-detect from scratch"
            )
        cluster = self.cluster
        model = cluster.cost_model
        chosen: dict[str, list[int]] = {}

        for site, folds in zip(cluster.sites, self._constants):
            batch = site.fragment
            folds.fold(
                batch,
                1,
                self._violations,
                self._keys,
                _resolve_vectorize(None, batch),
            )

        for variable in self.normalized.variables:
            partitions, _index = base.partition_cluster(cluster, variable)
            scan = base.scan_stage_time(cluster, partitions)
            base.exchange_statistics(cluster, self._log)

            lstat = [part.lstat for part in partitions]
            coordinators = self._strategy(cluster, lstat)
            chosen[variable.source] = list(coordinators)

            schema = base.ship_projection_schema(cluster.schema, variable)
            stage_log = ShipmentLog()
            base.ship_buckets(
                cluster, partitions, coordinators, stage_log,
                variable.source, width=len(schema),
            )
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            self._log.merge(stage_log)

            state = _VariableState(
                variable, partitions[0].shared, coordinators, len(schema)
            )
            for part in partitions:
                if not part.participated:
                    continue
                fragment = part.site.fragment
                occupancy = base.group_occupancy(fragment, variable.attributes)
                pairs = part.pairs
                for ordinal, bucket in enumerate(part.buckets):
                    for local_code in bucket.codes:
                        x_code, y_code = pairs[local_code]
                        state.add_rows(x_code, y_code, occupancy[local_code])
                    state.bucket_rows[ordinal] += bucket.count
            for x_code in list(state.pair_counts):
                state.settle(x_code, self._violations)
            self._variables.append(state)

            ops_per_site: dict[int, float] = {}
            for ordinal, rows in enumerate(state.bucket_rows):
                if rows:
                    site = coordinators[ordinal]
                    ops_per_site[site] = ops_per_site.get(
                        site, 0.0
                    ) + model.check_ops(rows)
            check = max(
                (model.check_time(ops) for ops in ops_per_site.values()),
                default=0.0,
            )
            self._cost.stages.append(base.stage(scan, transfer, check))

        if not self.normalized.variables:
            scan = max(
                (
                    model.scan_time(len(site.fragment))
                    for site in cluster.sites
                ),
                default=0.0,
            )
            self._cost.stages.append(base.stage(scan, 0.0, 0.0))

        self._detected = True
        return DetectionOutcome(
            algorithm=self.algorithm,
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"coordinators": chosen, "incremental": True},
        )

    # -- updates ----------------------------------------------------------

    def update(
        self, site: int, inserted=(), deleted=()
    ) -> IncrementalUpdate:
        """Absorb one site's batch (see :meth:`apply_updates`)."""
        return self.apply_updates({site: (inserted, deleted)})

    def apply_updates(
        self, updates: Mapping[int, tuple]
    ) -> IncrementalUpdate:
        """Absorb insert/delete batches at several sites in one round.

        ``updates`` maps site index to ``(inserted_rows, deleted)``, with
        ``deleted`` an iterable of keys or a predicate (the
        :meth:`Relation.delete` contract).  Only the deltas are scanned,
        shipped (as signed coded triples) and folded; the returned
        :class:`IncrementalUpdate` carries what changed and this batch's
        traffic/cost.

        All-or-nothing: if any part of the round fails — a schema error,
        an invalid delete, a typed scheduler failure surfacing with
        ``REPRO_POOL_DEGRADE=0`` — the session (fragment versions,
        coordinator group tables, counters, cost log) rolls back to the
        state before this call and the exception propagates.
        """
        with self._session_lock:
            return self._apply_updates_locked(updates)

    def _apply_updates_locked(
        self, updates: Mapping[int, tuple]
    ) -> IncrementalUpdate:
        if not self._detected:
            raise ValueError("run detect() before applying updates")
        cluster = self.cluster
        model = cluster.cost_model
        self._violations.begin()
        self._keys.begin()
        for state in self._variables:
            state.begin()
        update_log = ShipmentLog()
        prior_fragments = list(self.fragments)

        try:
            batches = apply_fragment_updates(self.fragments, updates)

            if not batches:
                return IncrementalUpdate(
                    self._commit(), self.report, update_log,
                    base.stage(0, 0, 0),
                )

            # constants: fold each site's delta locally (Proposition 5)
            for index, inserted, removed in batches:
                folds = self._constants[index]
                for sign, rows in ((-1, removed), (1, inserted)):
                    if rows:
                        batch = Relation(cluster.schema, rows, copy=False)
                        folds.fold(
                            batch,
                            sign,
                            self._violations,
                            self._keys,
                            _resolve_vectorize(None, batch),
                        )

            # variables: σ-scan the deltas through the scheduler,
            # site-parallel
            variables = [state.variable for state in self._variables]
            received_events: dict[int, int] = {}
            if variables:
                site_fragments = [site.fragment for site in cluster.sites]
                tasks = [
                    (index, (variables, inserted, removed))
                    for index, inserted, removed in batches
                ]
                results = map_fragments(
                    cluster, site_fragments, scan_delta_summary, tasks
                )
                for (index, _args), per_variable in zip(tasks, results):
                    for state, (pair_deltas, row_events, net_rows) in zip(
                        self._variables, per_variable
                    ):
                        shared = state.shared
                        touched: set[int] = set()
                        for ordinal, deltas in enumerate(pair_deltas):
                            if not deltas:
                                continue
                            coordinator = state.coordinators[ordinal]
                            if coordinator != index:
                                update_log.ship(
                                    coordinator,
                                    index,
                                    row_events[ordinal],
                                    row_events[ordinal] * state.width,
                                    tag=f"{state.variable.source}#p{ordinal}Δ",
                                    n_codes=3 * len(deltas),
                                )
                            # the coordinator re-checks its patched
                            # buckets whether the delta crossed the wire
                            # or was local — mirroring detect(), which
                            # charges coordinators for their own rows too
                            received_events[coordinator] = (
                                received_events.get(coordinator, 0)
                                + row_events[ordinal]
                            )
                            for (x, y), count in deltas.items():
                                x_code = shared.intern_x(x)
                                y_code = shared.intern_y(y)
                                state.add_rows(x_code, y_code, count)
                                touched.add(x_code)
                            state.bucket_rows[ordinal] += net_rows[ordinal]
                        for x_code in touched:
                            state.settle(x_code, self._violations)

            scan = max(
                (
                    model.scan_time(len(inserted) + len(removed))
                    for _index, inserted, removed in batches
                ),
                default=0.0,
            )
            transfer = model.transfer_time(update_log.outgoing_by_source())
            check = max(
                (
                    model.check_time(model.check_ops(events))
                    for events in received_events.values()
                ),
                default=0.0,
            )
        except BaseException:
            self.fragments[:] = prior_fragments
            for state in self._variables:
                state.rollback()
            self._violations.rollback()
            self._keys.rollback()
            raise
        stage = base.stage(scan, transfer, check)
        self._cost.stages.append(stage)
        self._log.merge(update_log)
        return IncrementalUpdate(self._commit(), self.report, update_log, stage)

    # -- results ----------------------------------------------------------

    def _commit(self) -> ViolationDelta:
        for state in self._variables:
            state.commit()
        return commit_counters(self._violations, self._keys, self._wrap_keys)

    @property
    def report(self) -> ViolationReport:
        """The full current report (fresh copy)."""
        with self._session_lock:
            return counters_report(
                self._violations, self._keys, self._wrap_keys
            )

    def verify(self, sample: int | None = None, seed: int = 8) -> bool:
        """Invariant check against the ``reference`` engine.

        With ``sample=None`` (the default), recomputes the full
        violation set over the union of the *current* fragment versions
        with :func:`~repro.core.detection.detect_violations_reference`
        and demands exact equality.  With an integer ``sample``, draws
        that many resident rows with ``random.Random(seed)`` and checks
        subset soundness (violations are monotone increasing in the
        rows): every violation the reference engine finds on the sample
        must already be in the maintained report — a cheap,
        false-alarm-free corruption check for long-lived sessions.

        Only violations are compared: the distributed protocol ships
        coded summaries, so (like the one-shot horizontal algorithms)
        the session does not track per-row tuple keys of variable forms.
        """
        import random

        from ..core.detection import detect_violations_reference

        with self._session_lock:
            rows = []
            for fragment in self.fragments:
                rows.extend(fragment.rows)
            maintained = set(self.report.violations)
        if sample is not None and sample < len(rows):
            rows = random.Random(seed).sample(rows, sample)
            expected = detect_violations_reference(
                Relation(self.cluster.schema, rows, copy=False),
                self.cfd,
                collect_tuples=False,
            )
            return set(expected.violations) <= maintained
        expected = detect_violations_reference(
            Relation(self.cluster.schema, rows, copy=False),
            self.cfd,
            collect_tuples=False,
        )
        return set(expected.violations) == maintained

    @property
    def shipments(self) -> ShipmentLog:
        """Cumulative traffic: the initial run plus every absorbed batch."""
        return self._log

    def outcome(self) -> DetectionOutcome:
        """The session as a :class:`DetectionOutcome` (cumulative cost/log)."""
        with self._session_lock:
            return DetectionOutcome(
                algorithm=self.algorithm,
                report=self.report,
                shipments=self._log,
                cost=self._cost,
                details={"incremental": True},
            )

    def __repr__(self) -> str:
        total = sum(len(fragment) for fragment in self.fragments)
        return (
            f"IncrementalHorizontalDetector({self.algorithm}, "
            f"{len(self.fragments)} sites, {total} tuples)"
        )


def incremental_ctr(cluster: Cluster, cfd: CFD) -> IncrementalHorizontalDetector:
    """An attached incremental CTRDETECT session (initial run included)."""
    detector = IncrementalHorizontalDetector(cluster, cfd, "ctr")
    detector.detect()
    return detector


def incremental_pat_s(cluster: Cluster, cfd: CFD) -> IncrementalHorizontalDetector:
    """An attached incremental PATDETECTS session (initial run included)."""
    detector = IncrementalHorizontalDetector(cluster, cfd, "pat-s")
    detector.detect()
    return detector


def incremental_pat_rt(cluster: Cluster, cfd: CFD) -> IncrementalHorizontalDetector:
    """An attached incremental PATDETECTRT session (initial run included)."""
    detector = IncrementalHorizontalDetector(cluster, cfd, "pat-rt")
    detector.detect()
    return detector
