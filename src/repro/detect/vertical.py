"""Detection in vertically partitioned data.

Partition kind: vertical (fragment ``i`` holds ``π_{X_i}(D)``, keyed).
Paper sections: II-C (local checkability) and VII (the semijoin direction).
The paper defers full algorithms for the vertical case to a later report,
but its Section V machinery needs a working detector: a CFD is checked
*locally* when some fragment covers all its attributes (Section II-C);
otherwise the needed attribute columns are shipped (keyed) to a coordinator
and joined before running the centralized detector — the semijoin-flavoured
plan Section VII points at.  Both the key joins and the coordinator's
detection run on the columnar backend: joins probe the fragments' cached
group indexes, and detection goes through the fused engine the
:func:`repro.core.detect_violations` dispatcher selects.

Shipping strategy: whole keyed columns, at most once per attribute, with
the payload accounted as dictionary codes (``n_codes`` — each shipped cell
is one int against the source fragment's column dictionary; the
dictionaries themselves travel once, like control traffic).  Per-CFD plans
are independent, so the planning loop runs through
:func:`repro.core.parallel.parallel_map` when ``REPRO_WORKERS`` asks for
concurrency; results merge in CFD order, keeping the outcome identical to
a serial run.

Each needed attribute column is shipped at most once: for every attribute
outside the coordinator's fragment we pick one source site holding it.

With ``prune=True`` the sources apply semijoin-style filtering before
shipping: each site keeps only the rows whose *local* attributes match the
projection of at least one pattern tuple (constants must agree; wildcards
admit everything).  Any tuple matching a full pattern matches its
projection at every site, so pruning never loses violations; it simply
avoids shipping rows the coordinator's join would discard anyway — the
semijoin idea of [25] the paper points at for the vertical case.
"""

from __future__ import annotations

from typing import Iterable

from ..core import CFD, ViolationReport, detect_violations, is_wildcard, normalize
from ..core.parallel import parallel_map
from ..distributed import (
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    VerticalCluster,
)
from ..relational import Relation
from . import base


def locally_checkable_vertical(
    cluster: VerticalCluster, cfd: CFD
) -> bool:
    """Whether some fragment covers all attributes of ``cfd``."""
    return bool(cluster.sites_with_attributes(cfd.attributes))


def _pattern_projections(cfd: CFD, attributes: list[str]) -> list[dict[str, object]]:
    """The constant bindings of each pattern's LHS, restricted to ``attributes``.

    Only LHS entries matter for matching ``D[Tp[X]]``; RHS constants are
    checked by the detection query itself.
    """
    projections = []
    for normalized in [normalize(cfd)]:
        rows = [
            dict(zip(variable.lhs, row))
            for variable in normalized.variables
            for row in variable.patterns
        ]
        rows.extend(
            dict(zip(constant.lhs, constant.values))
            for constant in normalized.constants
        )
    for row in rows:
        projections.append(
            {
                attr: value
                for attr, value in row.items()
                if attr in attributes and not is_wildcard(value)
            }
        )
    return projections


def _prune_rows(relation: Relation, projections: list[dict[str, object]]) -> Relation:
    """Rows matching at least one pattern projection (conservative filter)."""
    if any(not projection for projection in projections):
        return relation  # some pattern admits everything locally
    schema = relation.schema
    compiled = [
        [(schema.position(attr), value) for attr, value in projection.items()]
        for projection in projections
    ]
    rows = [
        row
        for row in relation.rows
        if any(all(row[p] == v for p, v in checks) for checks in compiled)
    ]
    return Relation(schema, rows, copy=False)


def vertical_detect(
    cluster: VerticalCluster,
    cfds: CFD | Iterable[CFD],
    prune: bool = False,
) -> DetectionOutcome:
    """Detect ``Vioπ(Σ, D)`` in a vertical partition."""
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)

    model = cluster.cost_model
    key = cluster.original_schema.key
    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    plans: dict[str, dict] = {}

    def plan_cfd(cfd: CFD):
        """One CFD's plan: (report, stage, stage log or None, plan dict)."""
        needed = cfd.attributes
        local_sites = cluster.sites_with_attributes(needed)
        if local_sites:
            site = local_sites[0]
            fragment = site.fragment
            cfd_report = detect_violations(fragment, cfd, collect_tuples=True)
            check = model.check_time(model.check_ops(len(fragment)))
            return cfd_report, base.stage(0.0, 0.0, check), None, {
                "local": site.name
            }

        # Coordinator: the site covering the most needed attributes.
        coverage = [
            sum(1 for a in needed if a in site.fragment.schema)
            for site in cluster.sites
        ]
        coordinator = max(range(len(coverage)), key=coverage.__getitem__)
        coord_site = cluster.sites[coordinator]
        have = [
            a for a in needed if a in coord_site.fragment.schema
        ]
        missing = [a for a in needed if a not in have]

        # One source site per missing attribute (attribute shipped once).
        sources: dict[int, list[str]] = {}
        for attribute in missing:
            holders = cluster.sites_with_attributes([attribute])
            if not holders:
                raise ValueError(
                    f"no fragment holds attribute {attribute!r}"
                )
            holder = holders[0]
            sources.setdefault(holder.index, []).append(attribute)

        stage_log = ShipmentLog()
        joined = coord_site.fragment.project(tuple(key) + tuple(have))
        if prune:
            joined = _prune_rows(
                joined, _pattern_projections(cfd, have)
            )
        for source_index, attributes in sorted(sources.items()):
            source = cluster.sites[source_index]
            column = source.fragment.project(tuple(key) + tuple(attributes))
            if prune:
                column = _prune_rows(
                    column, _pattern_projections(cfd, list(attributes))
                )
            stage_log.ship(
                coordinator,
                source_index,
                len(column),
                len(column) * len(column.schema),
                tag=cfd.name,
                # keyed columns ship dictionary-coded: one int per cell
                n_codes=len(column) * len(column.schema),
            )
            joined = joined.join(column, on=key)
        transfer = model.transfer_time(stage_log.outgoing_by_source())

        cfd_report = detect_violations(joined, cfd, collect_tuples=True)
        # Join + GROUP BY at the coordinator.
        check = model.check_time(
            model.check_ops(len(joined), n_queries=1 + len(sources))
        )
        return cfd_report, base.stage(0.0, transfer, check), stage_log, {
            "coordinator": coord_site.name,
            "shipped_from": {
                cluster.sites[i].name: attrs for i, attrs in sources.items()
            },
        }

    # Per-CFD plans are independent; run them concurrently when asked and
    # merge in CFD order so the outcome matches a serial run exactly.
    for cfd, (cfd_report, cfd_stage, stage_log, plan) in zip(
        cfds, parallel_map(plan_cfd, cfds)
    ):
        report.merge(cfd_report)
        stages.append(cfd_stage)
        if stage_log is not None:
            log.merge(stage_log)
        plans[cfd.name] = plan

    return DetectionOutcome(
        algorithm="VERTICALDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"plans": plans},
    )
