"""Detection in vertically partitioned data.

Partition kind: vertical (fragment ``i`` holds ``π_{X_i}(D)``, keyed).
Paper sections: II-C (local checkability) and VII (the semijoin direction).
The paper defers full algorithms for the vertical case to a later report,
but its Section V machinery needs a working detector: a CFD is checked
*locally* when some fragment covers all its attributes (Section II-C);
otherwise the needed attribute columns are shipped (keyed) to a coordinator
and joined before running the centralized detector — the semijoin-flavoured
plan Section VII points at.  Both the key joins and the coordinator's
detection run on the columnar backend: joins probe the fragments' cached
group indexes, and detection goes through the fused engine the
:func:`repro.core.detect_violations` dispatcher selects.

Shipping strategy: whole keyed columns, at most once per attribute, with
the payload accounted as dictionary codes (``n_codes`` — each shipped cell
is one int against the source fragment's column dictionary; the
dictionaries themselves travel once, like control traffic).  Per-CFD plans
are independent, so the planning loop runs through
:func:`repro.core.parallel.parallel_map` when ``REPRO_WORKERS`` asks for
concurrency; results merge in CFD order, keeping the outcome identical to
a serial run.

Each needed attribute column is shipped at most once: for every attribute
outside the coordinator's fragment we pick one source site holding it.

With ``prune=True`` the sources apply semijoin-style filtering before
shipping: each site keeps only the rows whose *local* attributes match the
projection of at least one pattern tuple (constants must agree; wildcards
admit everything).  Any tuple matching a full pattern matches its
projection at every site, so pruning never loses violations; it simply
avoids shipping rows the coordinator's join would discard anyway — the
semijoin idea of [25] the paper points at for the vertical case.
"""

from __future__ import annotations

from typing import Iterable

from ..core import CFD, ViolationReport, detect_violations, is_wildcard, normalize
from ..core.incremental import ViolationDelta
from ..core.parallel import parallel_map
from ..distributed import (
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    VerticalCluster,
)
from ..relational import Relation
from . import base


def locally_checkable_vertical(
    cluster: VerticalCluster, cfd: CFD
) -> bool:
    """Whether some fragment covers all attributes of ``cfd``."""
    return bool(cluster.sites_with_attributes(cfd.attributes))


def _pattern_projections(cfd: CFD, attributes: list[str]) -> list[dict[str, object]]:
    """The constant bindings of each pattern's LHS, restricted to ``attributes``.

    Only LHS entries matter for matching ``D[Tp[X]]``; RHS constants are
    checked by the detection query itself.
    """
    projections = []
    for normalized in [normalize(cfd)]:
        rows = [
            dict(zip(variable.lhs, row))
            for variable in normalized.variables
            for row in variable.patterns
        ]
        rows.extend(
            dict(zip(constant.lhs, constant.values))
            for constant in normalized.constants
        )
    for row in rows:
        projections.append(
            {
                attr: value
                for attr, value in row.items()
                if attr in attributes and not is_wildcard(value)
            }
        )
    return projections


def _prune_rows(relation: Relation, projections: list[dict[str, object]]) -> Relation:
    """Rows matching at least one pattern projection (conservative filter)."""
    if any(not projection for projection in projections):
        return relation  # some pattern admits everything locally
    schema = relation.schema
    compiled = [
        [(schema.position(attr), value) for attr, value in projection.items()]
        for projection in projections
    ]
    rows = [
        row
        for row in relation.rows
        if any(all(row[p] == v for p, v in checks) for checks in compiled)
    ]
    return Relation(schema, rows, copy=False)


def vertical_detect(
    cluster: VerticalCluster,
    cfds: CFD | Iterable[CFD],
    prune: bool = False,
) -> DetectionOutcome:
    """Detect ``Vioπ(Σ, D)`` in a vertical partition."""
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)

    model = cluster.cost_model
    key = cluster.original_schema.key
    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    plans: dict[str, dict] = {}

    def plan_cfd(cfd: CFD):
        """One CFD's plan: (report, stage, stage log or None, plan dict)."""
        needed = cfd.attributes
        local_sites = cluster.sites_with_attributes(needed)
        if local_sites:
            site = local_sites[0]
            fragment = site.fragment
            cfd_report = detect_violations(fragment, cfd, collect_tuples=True)
            check = model.check_time(model.check_ops(len(fragment)))
            return cfd_report, base.stage(0.0, 0.0, check), None, {
                "local": site.name
            }

        # Coordinator: the site covering the most needed attributes.
        coverage = [
            sum(1 for a in needed if a in site.fragment.schema)
            for site in cluster.sites
        ]
        coordinator = max(range(len(coverage)), key=coverage.__getitem__)
        coord_site = cluster.sites[coordinator]
        have = [
            a for a in needed if a in coord_site.fragment.schema
        ]
        missing = [a for a in needed if a not in have]

        # One source site per missing attribute (attribute shipped once).
        sources: dict[int, list[str]] = {}
        for attribute in missing:
            holders = cluster.sites_with_attributes([attribute])
            if not holders:
                raise ValueError(
                    f"no fragment holds attribute {attribute!r}"
                )
            holder = holders[0]
            sources.setdefault(holder.index, []).append(attribute)

        stage_log = ShipmentLog()
        joined = coord_site.fragment.project(tuple(key) + tuple(have))
        if prune:
            joined = _prune_rows(
                joined, _pattern_projections(cfd, have)
            )
        for source_index, attributes in sorted(sources.items()):
            source = cluster.sites[source_index]
            column = source.fragment.project(tuple(key) + tuple(attributes))
            if prune:
                column = _prune_rows(
                    column, _pattern_projections(cfd, list(attributes))
                )
            stage_log.ship(
                coordinator,
                source_index,
                len(column),
                len(column) * len(column.schema),
                tag=cfd.name,
                # keyed columns ship dictionary-coded: one int per cell
                n_codes=len(column) * len(column.schema),
            )
            joined = joined.join(column, on=key)
        transfer = model.transfer_time(stage_log.outgoing_by_source())

        cfd_report = detect_violations(joined, cfd, collect_tuples=True)
        # Join + GROUP BY at the coordinator.
        check = model.check_time(
            model.check_ops(len(joined), n_queries=1 + len(sources))
        )
        return cfd_report, base.stage(0.0, transfer, check), stage_log, {
            "coordinator": coord_site.name,
            "shipped_from": {
                cluster.sites[i].name: attrs for i, attrs in sources.items()
            },
        }

    # Per-CFD plans are independent; run them concurrently when asked and
    # merge in CFD order so the outcome matches a serial run exactly.
    for cfd, (cfd_report, cfd_stage, stage_log, plan) in zip(
        cfds, parallel_map(plan_cfd, cfds)
    ):
        report.merge(cfd_report)
        stages.append(cfd_stage)
        if stage_log is not None:
            log.merge(stage_log)
        plans[cfd.name] = plan

    return DetectionOutcome(
        algorithm="VERTICALDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"plans": plans},
    )


# -- incremental sessions ------------------------------------------------------


class _VerticalPlan:
    """One CFD's resident plan: a local check or a coordinator key-join."""

    __slots__ = ("cfd", "detector", "local_site", "coordinator", "sources")

    def __init__(self, cfd, detector, local_site, coordinator, sources) -> None:
        self.cfd = cfd
        self.detector = detector
        self.local_site = local_site
        self.coordinator = coordinator
        #: source site index -> attributes it ships (join plans only)
        self.sources = sources


class IncrementalVerticalDetector:
    """A resident detection session over one vertical cluster and Σ.

    :meth:`detect` runs the one-shot vertical plan once per CFD — local
    check where a fragment covers the CFD, otherwise keyed columns ship
    to a coordinator and join — and leaves an attached
    :class:`~repro.core.incremental.IncrementalDetector` behind at each
    plan's site, holding that plan's relation (the covering fragment or
    the joined projection) as resident GROUP-BY state.

    :meth:`update` then absorbs a batch of whole-tuple inserts and
    key deletes in O(|ΔD|): inserted tuples carry every attribute, so the
    *delta's* key join is just a projection — each source site ships only
    its delta's keyed column codes, and the coordinator patches its
    join-side state in place instead of re-joining ``D``.  Deletes travel
    as bare keys (the joined state indexes by key already).

    Sessions are *single-writer* (no internal lock): concurrent callers
    must serialize externally — the resident service does so with one
    lock per managed session (see :mod:`repro.serve`).
    """

    def __init__(
        self,
        cluster: VerticalCluster,
        cfds: CFD | Iterable[CFD],
        engine: str | None = None,
    ) -> None:
        from ..core import IncrementalDetector

        self.cluster = cluster
        self.cfds = [cfds] if isinstance(cfds, CFD) else list(cfds)
        self._engine = engine
        self._detector_factory = IncrementalDetector
        self.fragments: list[Relation] = [
            site.fragment for site in cluster.sites
        ]
        self._plans: list[_VerticalPlan] = []
        self._log = ShipmentLog()
        self._cost = CostBreakdown()
        self._detected = False

    # -- initial run ------------------------------------------------------

    def detect(self) -> DetectionOutcome:
        """The full one-shot run; attaches the per-plan resident state."""
        if self._detected:
            raise ValueError(
                "detect() already ran for this session; updates are "
                "absorbed via update() — build a new "
                "IncrementalVerticalDetector to re-detect from scratch"
            )
        cluster = self.cluster
        model = cluster.cost_model
        key = cluster.original_schema.key
        plans: dict[str, dict] = {}

        for cfd in self.cfds:
            needed = cfd.attributes
            local_sites = cluster.sites_with_attributes(needed)
            if local_sites:
                site = local_sites[0]
                detector = self._detector_factory(cfd, engine=self._engine)
                detector.attach(site.fragment)
                check = model.check_time(model.check_ops(len(site.fragment)))
                self._cost.stages.append(base.stage(0.0, 0.0, check))
                self._plans.append(
                    _VerticalPlan(cfd, detector, site.index, None, {})
                )
                plans[cfd.name] = {"local": site.name}
                continue

            coverage = [
                sum(1 for a in needed if a in site.fragment.schema)
                for site in cluster.sites
            ]
            coordinator = max(range(len(coverage)), key=coverage.__getitem__)
            coord_site = cluster.sites[coordinator]
            have = [a for a in needed if a in coord_site.fragment.schema]
            missing = [a for a in needed if a not in have]
            sources: dict[int, list[str]] = {}
            for attribute in missing:
                holders = cluster.sites_with_attributes([attribute])
                if not holders:
                    raise ValueError(
                        f"no fragment holds attribute {attribute!r}"
                    )
                sources.setdefault(holders[0].index, []).append(attribute)

            stage_log = ShipmentLog()
            joined = coord_site.fragment.project(tuple(key) + tuple(have))
            for source_index, attributes in sorted(sources.items()):
                source = cluster.sites[source_index]
                column = source.fragment.project(
                    tuple(key) + tuple(attributes)
                )
                stage_log.ship(
                    coordinator,
                    source_index,
                    len(column),
                    len(column) * len(column.schema),
                    tag=cfd.name,
                    n_codes=len(column) * len(column.schema),
                )
                joined = joined.join(column, on=key)
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            self._log.merge(stage_log)
            # canonical attribute order, so delta projections align
            joined = joined.project(
                tuple(dict.fromkeys(tuple(key) + tuple(needed)))
            )
            detector = self._detector_factory(cfd, engine=self._engine)
            detector.attach(joined)
            check = model.check_time(
                model.check_ops(len(joined), n_queries=1 + len(sources))
            )
            self._cost.stages.append(base.stage(0.0, transfer, check))
            self._plans.append(
                _VerticalPlan(cfd, detector, None, coordinator, sources)
            )
            plans[cfd.name] = {
                "coordinator": coord_site.name,
                "shipped_from": {
                    cluster.sites[i].name: attrs
                    for i, attrs in sources.items()
                },
            }

        self._detected = True
        return DetectionOutcome(
            algorithm="VERTICALDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"plans": plans, "incremental": True},
        )

    # -- updates ----------------------------------------------------------

    def update(self, inserted=(), deleted=()):
        """Absorb one batch of whole-tuple inserts and key deletes.

        ``inserted`` holds rows over the *original* schema (a vertical
        update is a tuple-level fact — every fragment receives its
        projection); ``deleted`` is an iterable of keys.  Predicate
        deletes would need a full scan of ``D`` and are rejected — run a
        predicate against your own copy and pass the keys.
        """
        from .incremental import IncrementalUpdate, apply_fragment_updates

        if not self._detected:
            raise ValueError("run detect() before applying updates")
        if callable(deleted) or hasattr(deleted, "evaluate"):
            raise ValueError(
                "incremental vertical sessions take key deletes, not "
                "predicates (a predicate needs a scan of D)"
            )
        cluster = self.cluster
        model = cluster.cost_model
        schema = cluster.original_schema
        width = len(schema)
        inserted = [tuple(row) for row in inserted]
        for row in inserted:
            if len(row) != width:
                from ..relational.schema import SchemaError

                raise SchemaError(
                    f"row of width {len(row)} does not fit schema "
                    f"{schema.name!r} of width {width}: {row!r}"
                )
        deleted = list(deleted)
        update_log = ShipmentLog()
        delta_rows = len(inserted) + len(deleted)

        # advance every fragment version by its projection of the batch
        fragment_updates = {}
        for i, site in enumerate(cluster.sites):
            positions = schema.positions(site.fragment.schema.attributes)
            fragment_updates[i] = (
                [tuple(row[p] for p in positions) for row in inserted],
                deleted,
            )
        apply_fragment_updates(self.fragments, fragment_updates)

        merged = ViolationDelta()
        for plan in self._plans:
            plan_schema = plan.detector.schema
            positions = schema.positions(plan_schema.attributes)
            projected = [
                tuple(row[p] for p in positions) for row in inserted
            ]
            if plan.sources:
                # the delta key-join: sources ship only their delta's
                # keyed column codes; the coordinator's join-side state
                # is patched in place by the resident detector
                for source_index, attributes in sorted(plan.sources.items()):
                    if delta_rows:
                        update_log.ship(
                            plan.coordinator,
                            source_index,
                            delta_rows,
                            delta_rows * (len(schema.key) + len(attributes)),
                            tag=f"{plan.cfd.name}Δ",
                            n_codes=delta_rows
                            * (len(schema.key) + len(attributes)),
                        )
            delta = plan.detector.update(inserted=projected, deleted=deleted)
            merged.added.merge(delta.added)
            merged.removed.merge(delta.removed)

        scan = model.scan_time(delta_rows)
        transfer = model.transfer_time(update_log.outgoing_by_source())
        check = max(
            (
                model.check_time(
                    model.check_ops(delta_rows, n_queries=1 + len(plan.sources))
                )
                for plan in self._plans
            ),
            default=0.0,
        )
        stage = base.stage(scan, transfer, check)
        self._cost.stages.append(stage)
        self._log.merge(update_log)
        return IncrementalUpdate(merged, self.report, update_log, stage)

    # -- results ----------------------------------------------------------

    @property
    def report(self) -> ViolationReport:
        """The full current report (fresh merged copy)."""
        return ViolationReport.union(
            plan.detector.report for plan in self._plans
        )

    @property
    def shipments(self) -> ShipmentLog:
        return self._log

    def outcome(self) -> DetectionOutcome:
        return DetectionOutcome(
            algorithm="VERTICALDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"incremental": True},
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalVerticalDetector({len(self.cfds)} CFDs, "
            f"{self.cluster.n_sites} fragments)"
        )


def incremental_vertical(
    cluster: VerticalCluster,
    cfds: CFD | Iterable[CFD],
    engine: str | None = None,
) -> IncrementalVerticalDetector:
    """An attached incremental vertical session (initial run included)."""
    detector = IncrementalVerticalDetector(cluster, cfds, engine)
    detector.detect()
    return detector
