"""Algorithm CTRDETECT (Section IV-B): a single coordinator per CFD.

Every site counts its tuples matching the LHS of any pattern tuple
(``lstat_i``), the counts are broadcast, and the site with the maximum
count becomes the coordinator (ties break to the smallest site, so all
sites pick the same coordinator independently).  All other sites ship the
``(X, A)`` projections of their matching tuples to it, where the violations
are detected with the centralized SQL technique.  Each tuple is shipped at
most once.
"""

from __future__ import annotations

from ..core import CFD, detect_variables
from ..distributed import Cluster, DetectionOutcome, ShipmentLog
from ..relational import Relation
from . import base


def _pick_central_coordinator(totals: list[int]) -> int:
    """Site with the maximum matching count; ties to the smallest index."""
    best = 0
    for index, count in enumerate(totals):
        if count > totals[best]:
            best = index
    return best


def ctr_detect(cluster: Cluster, cfd: CFD) -> DetectionOutcome:
    """Detect ``Vioπ(φ, D)`` with a single coordinator site."""
    normalized = base.normalize_for_detection(cfd)
    log, cost = base.empty_outcome_parts()
    report = base.local_constant_checks(cluster, normalized.constants)
    coordinators_chosen: dict[str, int] = {}

    for variable in normalized.variables:
        partitions, _index = base.partition_cluster(cluster, variable)
        scan = base.scan_stage_time(cluster, partitions)
        base.exchange_statistics(cluster, log)

        totals = [sum(part.lstat) for part in partitions]
        coordinator = _pick_central_coordinator(totals)
        coordinators_chosen[variable.source] = coordinator

        schema = base.ship_projection_schema(cluster.schema, variable)
        width = len(schema)
        merged_rows: list[tuple] = []
        stage_log = ShipmentLog()
        for part in partitions:
            rows = [row for bucket in part.buckets for row in bucket]
            if not rows:
                continue
            if part.site.index != coordinator:
                stage_log.ship(
                    coordinator,
                    part.site.index,
                    len(rows),
                    len(rows) * width,
                    tag=variable.source,
                )
            merged_rows.extend(rows)

        transfer = cluster.cost_model.transfer_time(
            stage_log.outgoing_by_source()
        )
        log.merge(stage_log)

        relation = Relation(schema, merged_rows, copy=False)
        report.merge(detect_variables(relation, [variable], collect_tuples=False))
        check = cluster.cost_model.check_time(
            cluster.cost_model.check_ops(len(merged_rows))
        )
        cost.stages.append(base.stage(scan, transfer, check))

    if not normalized.variables:
        # Constant-only CFD: a pure local pass, modelled as one scan stage.
        scan = max(
            (cluster.cost_model.scan_time(len(site.fragment)) for site in cluster.sites),
            default=0.0,
        )
        cost.stages.append(base.stage(scan, 0.0, 0.0))

    return DetectionOutcome(
        algorithm="CTRDETECT",
        report=report,
        shipments=log,
        cost=cost,
        details={"coordinators": coordinators_chosen},
    )
