"""Algorithm CTRDETECT (Section IV-B): a single coordinator per CFD.

Partition kind: horizontal.  Shipping strategy: every site counts its
tuples matching the LHS of any pattern tuple (``lstat_i``), the counts are
broadcast, and the site with the maximum count becomes the coordinator
(ties break to the smallest site, so all sites pick the same coordinator
independently).  All other sites ship the ``(X, A)`` projections of their
matching tuples to it — as shared-dictionary ``(x_code, y_code)`` pairs
(see :mod:`repro.relational.shareddict`) — where the violations are
detected with the centralized GROUP BY technique run on the code pairs.
Each tuple is shipped at most once.
"""

from __future__ import annotations

from ..core import CFD, Violation
from ..distributed import Cluster, DetectionOutcome, ShipmentLog
from . import base


def _pick_central_coordinator(totals: list[int]) -> int:
    """Site with the maximum matching count; ties to the smallest index."""
    best = 0
    for index, count in enumerate(totals):
        if count > totals[best]:
            best = index
    return best


def ctr_detect(cluster: Cluster, cfd: CFD) -> DetectionOutcome:
    """Detect ``Vioπ(φ, D)`` with a single coordinator site."""
    normalized = base.normalize_for_detection(cfd)
    log, cost = base.empty_outcome_parts()
    report = base.local_constant_checks(cluster, normalized.constants)
    coordinators_chosen: dict[str, int] = {}

    for variable in normalized.variables:
        partitions, _index = base.partition_cluster(cluster, variable)
        scan = base.scan_stage_time(cluster, partitions)
        base.exchange_statistics(cluster, log)

        totals = [sum(part.lstat) for part in partitions]
        coordinator = _pick_central_coordinator(totals)
        coordinators_chosen[variable.source] = coordinator

        schema = base.ship_projection_schema(cluster.schema, variable)
        width = len(schema)
        merged_pairs: list[tuple[int, int]] = []
        merged_rows = 0
        stage_log = ShipmentLog()
        for part in partitions:
            rows = sum(part.lstat)
            if not rows:
                continue
            if part.site.index != coordinator:
                stage_log.ship(
                    coordinator,
                    part.site.index,
                    rows,
                    rows * width,
                    tag=variable.source,
                    n_codes=2 * rows,
                )
            pairs = part.pairs
            for bucket in part.buckets:
                merged_pairs.extend(map(pairs.__getitem__, bucket.codes))
            merged_rows += rows

        transfer = cluster.cost_model.transfer_time(
            stage_log.outgoing_by_source()
        )
        log.merge(stage_log)

        # One X value never spans two σ buckets (σ is a function of X), so
        # the per-CFD GROUP BY collapses to one conflict scan of the codes.
        shared = partitions[0].shared
        for x_code in base.conflicting_x_codes(merged_pairs):
            report.add(
                Violation(
                    cfd=variable.source,
                    lhs_attributes=variable.lhs,
                    lhs_values=shared.x_values[x_code],
                )
            )
        check = cluster.cost_model.check_time(
            cluster.cost_model.check_ops(merged_rows)
        )
        cost.stages.append(base.stage(scan, transfer, check))

    if not normalized.variables:
        # Constant-only CFD: a pure local pass, modelled as one scan stage.
        scan = max(
            (cluster.cost_model.scan_time(len(site.fragment)) for site in cluster.sites),
            default=0.0,
        )
        cost.stages.append(base.stage(scan, 0.0, 0.0))

    return DetectionOutcome(
        algorithm="CTRDETECT",
        report=report,
        shipments=log,
        cost=cost,
        details={"coordinators": coordinators_chosen},
    )
