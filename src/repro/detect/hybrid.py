"""Detection under hybrid fragmentation (Section VIII future work).

Partition kind: hybrid — horizontal *regions*, each vertically partitioned
inside.  Paper section: VIII (future work).  Two phases compose the
existing machinery:

1. **Vertical gather (within each region).**  For each CFD, every region
   designates the vertical fragment covering most of the CFD's attributes
   as the *region gather site*; the other fragments ship the keyed columns
   of the missing attributes there (dictionary-coded, one int per cell —
   ``n_codes`` in the shipment log), where the region's
   ``π_{X ∪ A}(D_region[Tp[X]])`` projection is assembled by key join.
   Regions whose predicate contradicts every pattern (``F_i ∧ F_φ``) are
   skipped outright; the remaining gathers are independent and run
   concurrently under ``REPRO_WORKERS``, with shipment logs merged in
   region order so the outcome stays deterministic.

2. **Horizontal detection (across regions).**  The gather sites now hold a
   horizontal partition of the matching tuples, so the σ-based per-pattern
   coordination of PATDETECTS runs across them unchanged — we synthesize a
   horizontal :class:`~repro.distributed.Cluster` over the gathered
   projections (whose buckets then ship as shared-dictionary code pairs,
   like every horizontal algorithm) and remap the resulting shipments back
   to global site ids.

Each tuple attribute crosses the network at most twice (once into its
region's gather site, once to a pattern coordinator), and only when needed.
"""

from __future__ import annotations

from typing import Iterable

from ..core import (
    CFD,
    ViolationReport,
    detect_constants,
    normalize,
)
from ..core.parallel import parallel_map
from ..distributed import (
    Cluster,
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    Site,
)
from ..distributed.hybrid import HybridCluster
from ..relational import Relation, compatible_with_bindings
from . import base
from .pat import Strategy, make_select_min_response, select_max_stat


def _region_applicable(region, variable) -> bool:
    """The F_i ∧ F_φ test lifted to a region's predicate."""
    if region.predicate is None:
        return True
    from ..core import is_wildcard
    from ..core.epatterns import is_predicate

    for row in variable.patterns:
        bindings = {
            attr: value
            for attr, value in zip(variable.lhs, row)
            if not is_wildcard(value) and not is_predicate(value)
        }
        if compatible_with_bindings(region.predicate, bindings):
            return True
    return False


def _gather_region(
    cluster: HybridCluster,
    region_index: int,
    attributes: tuple[str, ...],
    tag: str,
) -> tuple[int, Relation, float, ShipmentLog]:
    """Phase 1 at one region: assemble π_{key ∪ attributes} at one site.

    Returns (global gather-site id, gathered relation, transfer time of
    this region's intra-region shipments, the shipment log of those
    shipments).  The log is returned rather than merged in place so the
    per-region gathers can run concurrently and still merge
    deterministically, in region order, at the caller.
    """
    region = cluster.regions[region_index]
    vertical = region.vertical
    key = vertical.original_schema.key

    coverage = [
        sum(1 for a in attributes if a in site.fragment.schema)
        for site in vertical.sites
    ]
    gather_fragment = max(range(len(coverage)), key=coverage.__getitem__)
    gather_site = cluster.site_id(region_index, gather_fragment)
    gather = vertical.sites[gather_fragment].fragment
    have = [a for a in attributes if a in gather.schema]
    missing = [a for a in attributes if a not in gather.schema]

    joined = gather.project(tuple(key) + tuple(have))
    stage_log = ShipmentLog()
    for attribute in missing:
        holders = [
            f
            for f, site in enumerate(vertical.sites)
            if attribute in site.fragment.schema
        ]
        holder = holders[0]
        column = vertical.sites[holder].fragment.project(
            tuple(key) + (attribute,)
        )
        stage_log.ship(
            gather_site,
            cluster.site_id(region_index, holder),
            len(column),
            len(column) * len(column.schema),
            tag=f"{tag}@{region.name}",
            # keyed columns ship dictionary-coded: one int per cell
            n_codes=len(column) * len(column.schema),
        )
        joined = joined.join(column, on=key)
    transfer = cluster.cost_model.transfer_time(stage_log.outgoing_by_source())
    ordered = joined.project(tuple(key) + tuple(attributes))
    return gather_site, ordered, transfer, stage_log


def hybrid_detect(
    cluster: HybridCluster,
    cfds: CFD | Iterable[CFD],
    strategy: str | Strategy = "s",
) -> DetectionOutcome:
    """Detect ``Vioπ(Σ, D)`` in a hybrid-fragmented relation."""
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if isinstance(strategy, str):
        if strategy not in {"s", "rt"}:
            raise ValueError(f"unknown strategy {strategy!r}; use 's' or 'rt'")

    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    plans: dict[str, dict] = {}
    model = cluster.cost_model

    for cfd in cfds:
        normalized = normalize(cfd)

        # Constant CFDs: check within each region (Prop. 5 lifted; the
        # region may still need an intra-region gather when the CFD's
        # attributes span vertical fragments).
        for constant in normalized.constants:
            needed = tuple(
                dict.fromkeys(constant.report_lhs + (constant.rhs_attr,))
            )
            for r, region in enumerate(cluster.regions):
                if region.predicate is not None and not compatible_with_bindings(
                    region.predicate, constant.condition()
                ):
                    continue
                local = region.vertical.sites_with_attributes(needed)
                if local:
                    gathered = local[0].fragment
                else:
                    _site, gathered, transfer, stage_log = _gather_region(
                        cluster, r, needed, constant.source
                    )
                    log.merge(stage_log)
                    stages.append(base.stage(0.0, transfer, 0.0))
                report.merge(
                    detect_constants(gathered, [constant], collect_tuples=False)
                )

        for variable in normalized.variables:
            # Phase 1: vertical gathers, region by region — independent, so
            # they run through the parallel scheduler; logs merge in region
            # order to keep the run deterministic.
            applicable_regions = [
                r
                for r, region in enumerate(cluster.regions)
                if _region_applicable(region, variable)
            ]
            gathers = parallel_map(
                lambda r: _gather_region(
                    cluster, r, variable.attributes, variable.source
                ),
                applicable_regions,
            )
            gathered_sites: list[int] = []
            gathered_fragments: list[Relation] = []
            transfers = []
            for site, fragment, transfer, stage_log in gathers:
                log.merge(stage_log)
                gathered_sites.append(site)
                gathered_fragments.append(
                    fragment.project(variable.attributes)
                )
                transfers.append(transfer)
            if not gathered_fragments:
                continue
            gather_transfer = max(transfers, default=0.0)
            join_check = max(
                (
                    model.check_time(model.check_ops(len(fragment)))
                    for fragment in gathered_fragments
                ),
                default=0.0,
            )
            stages.append(base.stage(0.0, gather_transfer, join_check))

            # Phase 2: horizontal σ detection across the gather sites.
            synthetic = Cluster(
                [
                    Site(i, fragment)
                    for i, fragment in enumerate(gathered_fragments)
                ],
                cost_model=model,
            )
            pick: Strategy
            if strategy == "s":
                pick = select_max_stat
            elif strategy == "rt":
                pick = make_select_min_response(synthetic)
            else:
                pick = strategy

            partitions, _ = base.partition_cluster(synthetic, variable)
            scan = base.scan_stage_time(synthetic, partitions)
            base.exchange_statistics(synthetic, log)
            lstat = [part.lstat for part in partitions]
            coordinators = pick(synthetic, lstat)
            plans[variable.source] = {
                "gather_sites": gathered_sites,
                "coordinators": [gathered_sites[c] for c in coordinators],
            }

            schema = base.ship_projection_schema(synthetic.schema, variable)
            stage_log = ShipmentLog()
            merged = base.ship_buckets(
                synthetic,
                partitions,
                coordinators,
                stage_log,
                variable.source,
                width=len(schema),
            )
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            # remap synthetic site indices to global ids before merging
            for event in stage_log.events:
                log.ship(
                    gathered_sites[event.dest],
                    gathered_sites[event.src],
                    event.n_tuples,
                    event.n_cells,
                    tag=event.tag,
                    n_codes=event.n_codes,
                )
            stage_report, check = base.coordinator_check(
                synthetic, variable, coordinators, merged, partitions[0].shared
            )
            report.merge(stage_report)
            stages.append(base.stage(scan, transfer, check))

    return DetectionOutcome(
        algorithm="HYBRIDDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"plans": plans},
    )
