"""Detection under hybrid fragmentation (Section VIII future work).

Partition kind: hybrid — horizontal *regions*, each vertically partitioned
inside.  Paper section: VIII (future work).  Two phases compose the
existing machinery:

1. **Vertical gather (within each region).**  For each CFD, every region
   designates the vertical fragment covering most of the CFD's attributes
   as the *region gather site*; the other fragments ship the keyed columns
   of the missing attributes there (dictionary-coded, one int per cell —
   ``n_codes`` in the shipment log), where the region's
   ``π_{X ∪ A}(D_region[Tp[X]])`` projection is assembled by key join.
   Regions whose predicate contradicts every pattern (``F_i ∧ F_φ``) are
   skipped outright; the remaining gathers are independent and run
   concurrently under ``REPRO_WORKERS``, with shipment logs merged in
   region order so the outcome stays deterministic.

2. **Horizontal detection (across regions).**  The gather sites now hold a
   horizontal partition of the matching tuples, so the σ-based per-pattern
   coordination of PATDETECTS runs across them unchanged — we synthesize a
   horizontal :class:`~repro.distributed.Cluster` over the gathered
   projections (whose buckets then ship as shared-dictionary code pairs,
   like every horizontal algorithm) and remap the resulting shipments back
   to global site ids.

Each tuple attribute crosses the network at most twice (once into its
region's gather site, once to a pattern coordinator), and only when needed.
"""

from __future__ import annotations

from typing import Iterable

from ..core import (
    CFD,
    ViolationReport,
    detect_constants,
    normalize,
)
from ..core.parallel import parallel_map
from ..distributed import (
    Cluster,
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    Site,
)
from ..distributed.hybrid import HybridCluster
from ..relational import Relation, compatible_with_bindings
from . import base
from .pat import Strategy, make_select_min_response, select_max_stat


def _region_applicable(region, variable) -> bool:
    """The F_i ∧ F_φ test lifted to a region's predicate."""
    if region.predicate is None:
        return True
    from ..core import is_wildcard
    from ..core.epatterns import is_predicate

    for row in variable.patterns:
        bindings = {
            attr: value
            for attr, value in zip(variable.lhs, row)
            if not is_wildcard(value) and not is_predicate(value)
        }
        if compatible_with_bindings(region.predicate, bindings):
            return True
    return False


def _gather_region(
    cluster: HybridCluster,
    region_index: int,
    attributes: tuple[str, ...],
    tag: str,
) -> tuple[int, Relation, float, ShipmentLog, dict]:
    """Phase 1 at one region: assemble π_{key ∪ attributes} at one site.

    Returns (global gather-site id, gathered relation, transfer time of
    this region's intra-region shipments, the shipment log of those
    shipments, and the gather *plan* — which holder fragment ships which
    attributes — which the incremental session replays per update batch).
    The log is returned rather than merged in place so the per-region
    gathers can run concurrently and still merge deterministically, in
    region order, at the caller.
    """
    region = cluster.regions[region_index]
    vertical = region.vertical
    key = vertical.original_schema.key

    coverage = [
        sum(1 for a in attributes if a in site.fragment.schema)
        for site in vertical.sites
    ]
    gather_fragment = max(range(len(coverage)), key=coverage.__getitem__)
    gather_site = cluster.site_id(region_index, gather_fragment)
    gather = vertical.sites[gather_fragment].fragment
    have = [a for a in attributes if a in gather.schema]
    missing = [a for a in attributes if a not in gather.schema]

    joined = gather.project(tuple(key) + tuple(have))
    stage_log = ShipmentLog()
    holders_plan: dict[int, list[str]] = {}
    for attribute in missing:
        holders = [
            f
            for f, site in enumerate(vertical.sites)
            if attribute in site.fragment.schema
        ]
        holder = holders[0]
        holders_plan.setdefault(holder, []).append(attribute)
        column = vertical.sites[holder].fragment.project(
            tuple(key) + (attribute,)
        )
        stage_log.ship(
            gather_site,
            cluster.site_id(region_index, holder),
            len(column),
            len(column) * len(column.schema),
            tag=f"{tag}@{region.name}",
            # keyed columns ship dictionary-coded: one int per cell
            n_codes=len(column) * len(column.schema),
        )
        joined = joined.join(column, on=key)
    transfer = cluster.cost_model.transfer_time(stage_log.outgoing_by_source())
    ordered = joined.project(tuple(key) + tuple(attributes))
    plan = {"gather_site": gather_site, "holders": holders_plan}
    return gather_site, ordered, transfer, stage_log, plan


def hybrid_detect(
    cluster: HybridCluster,
    cfds: CFD | Iterable[CFD],
    strategy: str | Strategy = "s",
) -> DetectionOutcome:
    """Detect ``Vioπ(Σ, D)`` in a hybrid-fragmented relation."""
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if isinstance(strategy, str):
        if strategy not in {"s", "rt"}:
            raise ValueError(f"unknown strategy {strategy!r}; use 's' or 'rt'")

    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    plans: dict[str, dict] = {}
    model = cluster.cost_model

    for cfd in cfds:
        normalized = normalize(cfd)

        # Constant CFDs: check within each region (Prop. 5 lifted; the
        # region may still need an intra-region gather when the CFD's
        # attributes span vertical fragments).
        for constant in normalized.constants:
            needed = tuple(
                dict.fromkeys(constant.report_lhs + (constant.rhs_attr,))
            )
            for r, region in enumerate(cluster.regions):
                if region.predicate is not None and not compatible_with_bindings(
                    region.predicate, constant.condition()
                ):
                    continue
                local = region.vertical.sites_with_attributes(needed)
                if local:
                    gathered = local[0].fragment
                else:
                    _site, gathered, transfer, stage_log, _plan = _gather_region(
                        cluster, r, needed, constant.source
                    )
                    log.merge(stage_log)
                    stages.append(base.stage(0.0, transfer, 0.0))
                report.merge(
                    detect_constants(gathered, [constant], collect_tuples=False)
                )

        for variable in normalized.variables:
            # Phase 1: vertical gathers, region by region — independent, so
            # they run through the parallel scheduler; logs merge in region
            # order to keep the run deterministic.
            applicable_regions = [
                r
                for r, region in enumerate(cluster.regions)
                if _region_applicable(region, variable)
            ]
            gathers = parallel_map(
                lambda r: _gather_region(
                    cluster, r, variable.attributes, variable.source
                ),
                applicable_regions,
            )
            gathered_sites: list[int] = []
            gathered_fragments: list[Relation] = []
            transfers = []
            for site, fragment, transfer, stage_log, _plan in gathers:
                log.merge(stage_log)
                gathered_sites.append(site)
                gathered_fragments.append(
                    fragment.project(variable.attributes)
                )
                transfers.append(transfer)
            if not gathered_fragments:
                continue
            gather_transfer = max(transfers, default=0.0)
            join_check = max(
                (
                    model.check_time(model.check_ops(len(fragment)))
                    for fragment in gathered_fragments
                ),
                default=0.0,
            )
            stages.append(base.stage(0.0, gather_transfer, join_check))

            # Phase 2: horizontal σ detection across the gather sites.
            synthetic = Cluster(
                [
                    Site(i, fragment)
                    for i, fragment in enumerate(gathered_fragments)
                ],
                cost_model=model,
            )
            pick: Strategy
            if strategy == "s":
                pick = select_max_stat
            elif strategy == "rt":
                pick = make_select_min_response(synthetic)
            else:
                pick = strategy

            partitions, _ = base.partition_cluster(synthetic, variable)
            scan = base.scan_stage_time(synthetic, partitions)
            base.exchange_statistics(synthetic, log)
            lstat = [part.lstat for part in partitions]
            coordinators = pick(synthetic, lstat)
            plans[variable.source] = {
                "gather_sites": gathered_sites,
                "coordinators": [gathered_sites[c] for c in coordinators],
            }

            schema = base.ship_projection_schema(synthetic.schema, variable)
            stage_log = ShipmentLog()
            merged = base.ship_buckets(
                synthetic,
                partitions,
                coordinators,
                stage_log,
                variable.source,
                width=len(schema),
            )
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            # remap synthetic site indices to global ids before merging
            for event in stage_log.events:
                log.ship(
                    gathered_sites[event.dest],
                    gathered_sites[event.src],
                    event.n_tuples,
                    event.n_cells,
                    tag=event.tag,
                    n_codes=event.n_codes,
                )
            stage_report, check = base.coordinator_check(
                synthetic, variable, coordinators, merged, partitions[0].shared
            )
            report.merge(stage_report)
            stages.append(base.stage(scan, transfer, check))

    return DetectionOutcome(
        algorithm="HYBRIDDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"plans": plans},
    )


# -- incremental sessions ------------------------------------------------------


class _HybridVariableState:
    """One variable CFD's resident phase-1 + phase-2 state."""

    __slots__ = (
        "variable",
        "regions",
        "gather_plans",
        "synthetic",
        "state",
        "gathered_sites",
        "schema",
    )

    def __init__(
        self, variable, regions, gather_plans, synthetic, state,
        gathered_sites, schema,
    ) -> None:
        self.variable = variable
        #: applicable region indices, in region order — a region's
        #: position here is its site index in the synthetic cluster
        self.regions = regions
        #: per applicable region: the recorded gather plan (which holder
        #: fragment ships which attributes to which gather site)
        self.gather_plans = gather_plans
        self.synthetic = synthetic
        self.state = state
        self.gathered_sites = gathered_sites
        self.schema = schema


class IncrementalHybridDetector:
    """A resident detection session over one hybrid cluster and Σ.

    :meth:`detect` runs the one-shot two-phase algorithm once and keeps,
    per variable CFD, both phases resident: the per-region gather plans
    (phase 1) and the pattern coordinators' merged GROUP-BY state over
    cluster-global code pairs (phase 2, the
    :class:`~repro.detect.incremental._VariableState` machinery of the
    horizontal sessions).  :meth:`update` absorbs a region's batch of
    whole-tuple inserts and key deletes in O(|ΔD|): the delta's vertical
    gather is just a projection (inserted tuples carry every attribute),
    so each holder fragment ships only its delta's keyed column codes to
    the region's gather site, which σ-scans the delta and forwards signed
    ``(x_code, y_code, count)`` triples to the resident coordinators.

    Sessions are *single-writer* (no internal lock): concurrent callers
    must serialize externally — the resident service does so with one
    lock per managed session (see :mod:`repro.serve`).
    """

    def __init__(
        self,
        cluster: HybridCluster,
        cfds: CFD | Iterable[CFD],
        strategy: str = "s",
    ) -> None:
        from ..core.incremental import ConstantFolds, TransitionCounter

        if isinstance(cfds, CFD):
            cfds = [cfds]
        self.cluster = cluster
        self.cfds = list(cfds)
        if strategy not in {"s", "rt"}:
            raise ValueError(f"unknown strategy {strategy!r}; use 's' or 'rt'")
        self._strategy = strategy
        #: per region: the current full-schema relation version
        self.regions_data: list[Relation] = [
            region.vertical.reconstruct() for region in cluster.regions
        ]
        self._violations = TransitionCounter()
        self._keys = TransitionCounter()
        constants = []
        self._variable_cfds = []
        for cfd in self.cfds:
            normalized = normalize(cfd)
            constants.extend(normalized.constants)
            self._variable_cfds.extend(normalized.variables)
        # constant forms check within each region (Prop. 5 lifted);
        # keys are not collected, matching the one-shot hybrid detector
        self._constants = [
            ConstantFolds(
                [
                    constant
                    for constant in constants
                    if region.predicate is None
                    or compatible_with_bindings(
                        region.predicate, constant.condition()
                    )
                ],
                collect_tuples=False,
            )
            for region in cluster.regions
        ]
        #: (constant tag, region index) -> gather plan, for delta traffic
        self._constant_gathers: list[tuple[str, int, dict]] = []
        self._variables: list[_HybridVariableState] = []
        self._log = ShipmentLog()
        self._cost = CostBreakdown()
        self._detected = False

    # -- initial run ------------------------------------------------------

    def detect(self) -> DetectionOutcome:
        """The full two-phase run; builds the resident state."""
        from ..core.fused import _resolve_vectorize
        from ..core.incremental import ConstantFolds  # noqa: F401 (doc aid)
        from . import base
        from .incremental import _VariableState

        if self._detected:
            raise ValueError(
                "detect() already ran for this session; updates are "
                "absorbed via update() — build a new "
                "IncrementalHybridDetector to re-detect from scratch"
            )
        cluster = self.cluster
        model = cluster.cost_model
        plans: dict[str, dict] = {}

        # constants: fold each region's rows through its resident folds;
        # account the same intra-region gathers as the one-shot run
        for r, (region, folds) in enumerate(
            zip(cluster.regions, self._constants)
        ):
            for constant in folds.constants:
                needed = tuple(
                    dict.fromkeys(constant.report_lhs + (constant.rhs_attr,))
                )
                local = region.vertical.sites_with_attributes(needed)
                if not local:
                    _site, _g, transfer, stage_log, plan = _gather_region(
                        cluster, r, needed, constant.source
                    )
                    self._log.merge(stage_log)
                    self._cost.stages.append(base.stage(0.0, transfer, 0.0))
                    self._constant_gathers.append((constant.source, r, plan))
            batch = self.regions_data[r]
            folds.fold(
                batch,
                1,
                self._violations,
                self._keys,
                _resolve_vectorize(None, batch),
            )

        for variable in self._variable_cfds:
            applicable = [
                r
                for r, region in enumerate(cluster.regions)
                if _region_applicable(region, variable)
            ]
            gathers = parallel_map(
                lambda r: _gather_region(
                    cluster, r, variable.attributes, variable.source
                ),
                applicable,
            )
            gathered_sites: list[int] = []
            gathered_fragments: list[Relation] = []
            gather_plans: list[dict] = []
            transfers = []
            for site, fragment, transfer, stage_log, plan in gathers:
                self._log.merge(stage_log)
                gathered_sites.append(site)
                gathered_fragments.append(
                    fragment.project(variable.attributes)
                )
                gather_plans.append(plan)
                transfers.append(transfer)
            if not gathered_fragments:
                continue
            gather_transfer = max(transfers, default=0.0)
            join_check = max(
                (
                    model.check_time(model.check_ops(len(fragment)))
                    for fragment in gathered_fragments
                ),
                default=0.0,
            )
            self._cost.stages.append(
                base.stage(0.0, gather_transfer, join_check)
            )

            synthetic = Cluster(
                [
                    Site(i, fragment)
                    for i, fragment in enumerate(gathered_fragments)
                ],
                cost_model=model,
            )
            pick: Strategy
            if self._strategy == "s":
                pick = select_max_stat
            else:
                pick = make_select_min_response(synthetic)

            partitions, _ = base.partition_cluster(synthetic, variable)
            scan = base.scan_stage_time(synthetic, partitions)
            base.exchange_statistics(synthetic, self._log)
            lstat = [part.lstat for part in partitions]
            coordinators = pick(synthetic, lstat)
            plans[variable.source] = {
                "gather_sites": gathered_sites,
                "coordinators": [gathered_sites[c] for c in coordinators],
            }

            schema = base.ship_projection_schema(synthetic.schema, variable)
            stage_log = ShipmentLog()
            base.ship_buckets(
                synthetic,
                partitions,
                coordinators,
                stage_log,
                variable.source,
                width=len(schema),
            )
            transfer = model.transfer_time(stage_log.outgoing_by_source())
            # remap synthetic site indices to global ids before merging
            for event in stage_log.events:
                self._log.ship(
                    gathered_sites[event.dest],
                    gathered_sites[event.src],
                    event.n_tuples,
                    event.n_cells,
                    tag=event.tag,
                    n_codes=event.n_codes,
                )

            state = _VariableState(
                variable, partitions[0].shared, coordinators, len(schema)
            )
            for part in partitions:
                if not part.participated:
                    continue
                fragment = part.site.fragment
                occupancy = base.group_occupancy(
                    fragment, variable.attributes
                )
                pairs = part.pairs
                for ordinal, bucket in enumerate(part.buckets):
                    for local_code in bucket.codes:
                        x_code, y_code = pairs[local_code]
                        state.add_rows(x_code, y_code, occupancy[local_code])
                    state.bucket_rows[ordinal] += bucket.count
            for x_code in list(state.pair_counts):
                state.settle(x_code, self._violations)
            check = max(
                (
                    model.check_time(model.check_ops(rows))
                    for rows in state.bucket_rows
                    if rows
                ),
                default=0.0,
            )
            self._cost.stages.append(base.stage(scan, transfer, check))
            self._variables.append(
                _HybridVariableState(
                    variable,
                    applicable,
                    gather_plans,
                    synthetic,
                    state,
                    gathered_sites,
                    schema,
                )
            )

        self._detected = True
        return DetectionOutcome(
            algorithm="HYBRIDDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"plans": plans, "incremental": True},
        )

    # -- updates ----------------------------------------------------------

    def update(self, region: int, inserted=(), deleted=()):
        """Absorb one region's batch of tuple inserts and key deletes.

        ``inserted`` rows are over the *original* schema and must satisfy
        the region's predicate (a row in the wrong region would corrupt
        the ``F_i ∧ F_φ`` pruning); ``deleted`` is an iterable of keys.
        Only the delta crosses the network: its keyed column codes into
        the gather sites, signed coded triples onward to the pattern
        coordinators.
        """
        from ..core.fused import _resolve_vectorize
        from . import base
        from .incremental import (
            IncrementalUpdate,
            apply_fragment_updates,
            scan_delta_summary,
        )

        if not self._detected:
            raise ValueError("run detect() before applying updates")
        if callable(deleted) or hasattr(deleted, "evaluate"):
            raise ValueError(
                "incremental hybrid sessions take key deletes, not "
                "predicates (a predicate needs a scan of the region)"
            )
        cluster = self.cluster
        model = cluster.cost_model
        region_obj = cluster.regions[region]
        schema = cluster.schema
        inserted = [tuple(row) for row in inserted]
        if region_obj.predicate is not None:
            for row in inserted:
                if not region_obj.predicate.evaluate(row, schema):
                    raise ValueError(
                        f"inserted row {row!r} does not satisfy region "
                        f"{region_obj.name}'s predicate"
                    )
        self._violations.begin()
        self._keys.begin()
        update_log = ShipmentLog()

        batches = apply_fragment_updates(
            self.regions_data, {region: (inserted, list(deleted))}
        )
        if not batches:
            return IncrementalUpdate(
                self._commit(), self.report, update_log, base.stage(0, 0, 0)
            )
        _index, inserted, removed = batches[0]
        delta_rows = len(inserted) + len(removed)

        # constants stay region-local; replay their gather plans' traffic
        folds = self._constants[region]
        for sign, rows in ((-1, removed), (1, inserted)):
            if rows:
                batch = Relation(schema, rows, copy=False)
                folds.fold(
                    batch,
                    sign,
                    self._violations,
                    self._keys,
                    _resolve_vectorize(None, batch),
                )
        key_width = len(schema.key)
        for _tag, r, plan in self._constant_gathers:
            if r != region:
                continue
            for holder, attributes in sorted(plan["holders"].items()):
                update_log.ship(
                    plan["gather_site"],
                    cluster.site_id(region, holder),
                    delta_rows,
                    delta_rows * (key_width + len(attributes)),
                    tag=f"{_tag}@{region_obj.name}Δ",
                    n_codes=delta_rows * (key_width + len(attributes)),
                )

        received_events: dict[int, int] = {}
        for entry in self._variables:
            if region not in entry.regions:
                continue  # F_i ∧ F_φ: the region never matches σ
            ordinal_site = entry.regions.index(region)
            variable = entry.variable
            positions = schema.positions(variable.attributes)
            ins_proj = [
                tuple(row[p] for p in positions) for row in inserted
            ]
            del_proj = [
                tuple(row[p] for p in positions) for row in removed
            ]
            # phase 1: holders ship the delta's keyed columns in
            gather_plan = entry.gather_plans[ordinal_site]
            for holder, attributes in sorted(gather_plan["holders"].items()):
                update_log.ship(
                    gather_plan["gather_site"],
                    cluster.site_id(region, holder),
                    delta_rows,
                    delta_rows * (key_width + len(attributes)),
                    tag=f"{variable.source}@{region_obj.name}Δ",
                    n_codes=delta_rows * (key_width + len(attributes)),
                )
            # phase 2: σ-scan the delta at the gather site, forward the
            # signed coded triples, patch the coordinator state in place
            fragment = entry.synthetic.sites[ordinal_site].fragment
            per_variable = scan_delta_summary(
                fragment, [variable], ins_proj, del_proj
            )
            pair_deltas, row_events, net_rows = per_variable[0]
            state = entry.state
            shared = state.shared
            touched: set[int] = set()
            for ordinal, deltas in enumerate(pair_deltas):
                if not deltas:
                    continue
                coordinator = state.coordinators[ordinal]
                coordinator_site = entry.gathered_sites[coordinator]
                if coordinator != ordinal_site:
                    update_log.ship(
                        coordinator_site,
                        gather_plan["gather_site"],
                        row_events[ordinal],
                        row_events[ordinal] * state.width,
                        tag=f"{variable.source}#p{ordinal}Δ",
                        n_codes=3 * len(deltas),
                    )
                received_events[coordinator_site] = (
                    received_events.get(coordinator_site, 0)
                    + row_events[ordinal]
                )
                for (x, y), count in deltas.items():
                    x_code = shared.intern_x(x)
                    y_code = shared.intern_y(y)
                    state.add_rows(x_code, y_code, count)
                    touched.add(x_code)
                state.bucket_rows[ordinal] += net_rows[ordinal]
            for x_code in touched:
                state.settle(x_code, self._violations)

        scan = model.scan_time(delta_rows)
        transfer = model.transfer_time(update_log.outgoing_by_source())
        check = max(
            (
                model.check_time(model.check_ops(events))
                for events in received_events.values()
            ),
            default=0.0,
        )
        stage = base.stage(scan, transfer, check)
        self._cost.stages.append(stage)
        self._log.merge(update_log)
        return IncrementalUpdate(self._commit(), self.report, update_log, stage)

    # -- results ----------------------------------------------------------

    def _commit(self):
        from ..core.incremental import commit_counters

        return commit_counters(self._violations, self._keys)

    @property
    def report(self) -> ViolationReport:
        """The full current report (fresh copy)."""
        from ..core.incremental import counters_report

        return counters_report(self._violations, self._keys)

    @property
    def shipments(self) -> ShipmentLog:
        return self._log

    def outcome(self) -> DetectionOutcome:
        return DetectionOutcome(
            algorithm="HYBRIDDETECT+Δ",
            report=self.report,
            shipments=self._log,
            cost=self._cost,
            details={"incremental": True},
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalHybridDetector({len(self.cfds)} CFDs, "
            f"{len(self.cluster.regions)} regions, "
            f"{self.cluster.n_sites} sites)"
        )


def incremental_hybrid(
    cluster: HybridCluster,
    cfds: CFD | Iterable[CFD],
    strategy: str = "s",
) -> IncrementalHybridDetector:
    """An attached incremental hybrid session (initial run included)."""
    detector = IncrementalHybridDetector(cluster, cfds, strategy)
    detector.detect()
    return detector
