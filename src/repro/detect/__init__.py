"""Distributed CFD violation detection algorithms (Sections IV–V)."""

from .clust import (
    CFDCluster,
    IncrementalClustDetector,
    cluster_cfds,
    clust_detect,
    incremental_clust,
    scan_clust_delta_summary,
)
from .ctr import ctr_detect
from .hybrid import IncrementalHybridDetector, hybrid_detect, incremental_hybrid
from .incremental import (
    IncrementalHorizontalDetector,
    IncrementalUpdate,
    apply_fragment_updates,
    incremental_ctr,
    incremental_pat_rt,
    incremental_pat_s,
    scan_delta_summary,
)
from .replicated import replicated_pat_detect
from .local import (
    applicable_patterns,
    applicable_sites,
    is_constant_cfd,
    locally_checkable,
    pattern_condition,
)
from .naive import naive_detect
from .pat import (
    Strategy,
    make_select_min_response,
    pat_detect_rt,
    pat_detect_s,
    pat_detect_with_strategy,
    select_balanced,
    select_max_stat,
    select_min_stat,
    select_random,
)
from .seq import seq_detect
from .vertical import (
    IncrementalVerticalDetector,
    incremental_vertical,
    locally_checkable_vertical,
    vertical_detect,
)

ALGORITHMS = {
    "CTRDETECT": ctr_detect,
    "PATDETECTS": pat_detect_s,
    "PATDETECTRT": pat_detect_rt,
}

__all__ = [
    "ALGORITHMS",
    "CFDCluster",
    "IncrementalClustDetector",
    "IncrementalHorizontalDetector",
    "IncrementalHybridDetector",
    "IncrementalUpdate",
    "IncrementalVerticalDetector",
    "apply_fragment_updates",
    "incremental_clust",
    "incremental_ctr",
    "incremental_hybrid",
    "incremental_pat_rt",
    "incremental_pat_s",
    "incremental_vertical",
    "scan_delta_summary",
    "scan_clust_delta_summary",
    "cluster_cfds",
    "clust_detect",
    "ctr_detect",
    "hybrid_detect",
    "replicated_pat_detect",
    "applicable_patterns",
    "applicable_sites",
    "is_constant_cfd",
    "locally_checkable",
    "pattern_condition",
    "naive_detect",
    "Strategy",
    "make_select_min_response",
    "pat_detect_rt",
    "pat_detect_s",
    "pat_detect_with_strategy",
    "select_balanced",
    "select_max_stat",
    "select_min_stat",
    "select_random",
    "seq_detect",
    "vertical_detect",
    "locally_checkable_vertical",
]
