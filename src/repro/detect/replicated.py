"""Replication-aware detection (Section VIII future work).

The per-pattern skeleton of PATDETECTS, upgraded to exploit replicas:

1. each fragment is scanned (σ-partitioned) at one replica, chosen to
   balance the per-site scan load — replication buys scan parallelism;
2. pattern coordinators are chosen by *availability*: the statistic of
   site ``s`` for pattern ``l`` counts the matching tuples of every
   fragment replicated at ``s``, so fragments co-located with the
   coordinator contribute without any shipment;
3. only fragments with no replica at the coordinator ship their bucket,
   each from the replica whose outgoing load is lowest.

With a single replica per fragment this degrades exactly to the
availability-blind PATDETECTS; with full replication nothing ships at all.
"""

from __future__ import annotations

from ..core import (
    CFD,
    PatternIndex,
    VariableCFD,
    ViolationReport,
    detect_constants,
    detect_variables,
    normalize,
)
from ..distributed import CostBreakdown, DetectionOutcome, ShipmentLog
from ..distributed.replication import ReplicatedCluster
from ..relational import Relation
from . import base


def replicated_pat_detect(
    cluster: ReplicatedCluster, cfd: CFD
) -> DetectionOutcome:
    """Detect ``Vioπ(φ, D)`` over replicated horizontal fragments."""
    normalized = normalize(cfd)
    model = cluster.cost_model
    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    details: dict[str, object] = {}

    # Constant CFDs: each fragment checked at one replica, no shipment —
    # one fused pass per fragment for the whole constant set.
    scan_sites = cluster.balanced_scan_assignment()
    if normalized.constants:
        for fragment in cluster.fragments:
            report.merge(
                detect_constants(
                    fragment, normalized.constants, collect_tuples=False
                )
            )

    for variable in normalized.variables:
        index = PatternIndex(variable.patterns)
        n_patterns = len(variable.patterns)

        # 1. balanced scans: per-site load = Σ sizes of fragments it scans
        fragment_buckets = [
            base.partition_fragment(fragment, variable, index)
            for fragment in cluster.fragments
        ]
        scan_load = [0] * cluster.n_sites
        for f, site in enumerate(scan_sites):
            scan_load[site] += len(cluster.fragments[f])
        scan = max(
            (model.scan_time(load) for load in scan_load if load), default=0.0
        )
        log.record_control(cluster.n_sites * (cluster.n_sites - 1))

        # 2. availability-aware coordinators
        available = [[0] * n_patterns for _ in range(cluster.n_sites)]
        for f, buckets in enumerate(fragment_buckets):
            for site in cluster.replicas_of(f):
                for l, bucket in enumerate(buckets):
                    available[site][l] += len(bucket)
        # pick by availability, spreading ties across sites so that full
        # replication yields per-pattern parallelism instead of one hot
        # coordinator
        pattern_totals = [
            sum(len(fragment_buckets[f][l]) for f in range(len(cluster.fragments)))
            for l in range(n_patterns)
        ]
        assigned_load = [0] * cluster.n_sites
        coordinators = []
        for l in sorted(range(n_patterns), key=lambda l: -pattern_totals[l]):
            best = max(
                range(cluster.n_sites),
                key=lambda s: (available[s][l], -assigned_load[s], -s),
            )
            coordinators.append((l, best))
            assigned_load[best] += pattern_totals[l]
        coordinators = [
            site for _l, site in sorted(coordinators)
        ]
        details[variable.source] = coordinators

        # 3. ship only what the coordinator lacks, from the laziest replica
        schema = base.ship_projection_schema(cluster.schema, variable)
        width = len(schema)
        outgoing = [0] * cluster.n_sites
        stage_log = ShipmentLog()
        merged: list[list[tuple]] = [[] for _ in range(n_patterns)]
        for f, buckets in enumerate(fragment_buckets):
            replicas = cluster.replicas_of(f)
            for l, bucket in enumerate(buckets):
                if not bucket:
                    continue
                dest = coordinators[l]
                merged[l].extend(bucket)
                if dest in replicas:
                    continue  # locally available at the coordinator
                source = min(replicas, key=lambda s: (outgoing[s], s))
                outgoing[source] += len(bucket)
                stage_log.ship(
                    dest,
                    source,
                    len(bucket),
                    len(bucket) * width,
                    tag=f"{variable.source}#p{l}",
                )
        transfer = model.transfer_time(stage_log.outgoing_by_source())
        log.merge(stage_log)

        # 4. per-coordinator checks, as in the unreplicated algorithms
        ops_per_site: dict[int, float] = {}
        for l, rows in enumerate(merged):
            if not rows:
                continue
            single = VariableCFD(
                source=variable.source,
                lhs=variable.lhs,
                rhs=variable.rhs,
                patterns=(variable.patterns[l],),
            )
            relation = Relation(schema, rows, copy=False)
            report.merge(detect_variables(relation, [single], collect_tuples=False))
            site = coordinators[l]
            ops_per_site[site] = ops_per_site.get(site, 0.0) + model.check_ops(
                len(rows)
            )
        check = max(
            (model.check_time(ops) for ops in ops_per_site.values()),
            default=0.0,
        )
        stages.append(base.stage(scan, transfer, check))

    if not normalized.variables:
        scan = max(
            (model.scan_time(len(f)) for f in cluster.fragments), default=0.0
        )
        stages.append(base.stage(scan, 0.0, 0.0))

    return DetectionOutcome(
        algorithm="REPLICATEDPATDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"coordinators": details, "scan_sites": scan_sites},
    )
